//! Offline stand-in for `criterion`: `bench_function`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Unlike the statistical upstream, this measures with a simple
//! calibrate-then-sample scheme — but the timing is real wall-clock time,
//! so relative comparisons (e.g. tracing on vs. off) remain meaningful.
//! Results print as `name  time: [min mean max]` per iteration.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = match size {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        };
        let mut total = Duration::ZERO;
        let mut done = 0u64;
        while done < self.iters {
            let n = (self.iters - done).min(batch);
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            total += start.elapsed();
            done += n;
        }
        self.elapsed = total;
    }
}

pub struct Criterion {
    sample_count: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 15, target_sample_time: Duration::from_millis(40) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_sample_time = t / self.sample_count.max(1) as u32;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibrate: grow the iteration count until one sample takes at
        // least ~target_sample_time (or a hard cap is reached).
        let mut iters = 1u64;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= self.target_sample_time || iters >= 1 << 24 {
                break;
            }
            // Aim directly at the target, at least doubling each round.
            let elapsed = b.elapsed.max(Duration::from_nanos(1));
            let scale = self.target_sample_time.as_nanos() / elapsed.as_nanos().max(1);
            iters = (iters * 2).max(iters.saturating_mul(scale as u64 + 1)).min(1 << 24);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter.first().copied().unwrap_or(0.0);
        let max = per_iter.last().copied().unwrap_or(0.0);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        println!(
            "{id:<40} time: [{} {} {}]  ({} iters/sample, {} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            iters,
            per_iter.len()
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().sample_size(3);
        c.target_sample_time = Duration::from_millis(2);
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            });
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        let mut made = 0;
        let mut used = 0;
        b.iter_batched(
            || {
                made += 1;
                vec![1, 2, 3]
            },
            |v| used += v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(made, 10);
        assert_eq!(used, 30);
        assert!(b.elapsed > Duration::ZERO || used > 0);
    }
}
