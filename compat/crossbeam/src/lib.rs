//! Offline stand-in for `crossbeam` providing the `channel` module subset
//! SI-Rep uses: MPMC bounded/unbounded channels with blocking, timeout and
//! deadline receives, and disconnect detection on both ends.

pub mod channel {
    use std::collections::VecDeque;
    use std::error::Error;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> Error for SendError<T> {}

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl Error for RecvError {}

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl Error for RecvTimeoutError {}

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl Error for TryRecvError {}

    /// Channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Channel holding at most `cap` in-flight messages. `cap == 0`
    /// (a rendezvous channel upstream) is approximated with capacity 1;
    /// SI-Rep never creates one.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .chan
                            .not_full
                            .wait(st)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st =
                    self.chan.not_empty.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = g;
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.lock();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_visible_on_both_ends() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
            let (tx, rx) = bounded::<u32>(1);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<u32>();
            let start = Instant::now();
            assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Err(RecvTimeoutError::Timeout));
            assert!(start.elapsed() >= Duration::from_millis(15));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap().unwrap();
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
