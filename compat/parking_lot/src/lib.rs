//! Offline stand-in for `parking_lot` built on `std::sync`.
//!
//! Poison-free semantics: a panic while holding a lock does not poison it
//! for other threads (matching parking_lot, unlike raw `std::sync`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, Condvar as StdCondvar};
use std::time::Duration;

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // while keeping the parking_lot-style `&mut MutexGuard` signature.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { guard: Some(e.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

// -------------------------------------------------------------- Condvar

pub struct Condvar {
    inner: StdCondvar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: StdCondvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard taken");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(sync::PoisonError::into_inner);
        guard.guard = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard taken");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.guard = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

// --------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.inner.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.inner.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = c.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let c = Arc::new(Condvar::new());
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                c2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
