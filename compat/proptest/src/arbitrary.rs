//! `any::<T>()` — default strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}
