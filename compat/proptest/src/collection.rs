//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicate draws shrink the set; retry a bounded number of times
        // (the element domain may hold fewer than `n` distinct values).
        for _ in 0..(n * 20 + 100) {
            if out.len() >= n {
                break;
            }
            out.insert(self.element.gen_value(rng));
        }
        out
    }
}

pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size: size.into() }
}

#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        for _ in 0..(n * 20 + 100) {
            if out.len() >= n {
                break;
            }
            out.insert(self.key.gen_value(rng), self.value.gen_value(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_sizes_respect_bounds() {
        let s = vec(0u8..10, 2..5);
        let mut r = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = s.gen_value(&mut r);
            assert!((2..=4).contains(&v.len()), "len = {}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_collections_hit_target_sizes() {
        let s = btree_set(0u8..6, 0..3);
        let m = btree_map(0i64..50, 0i64..100, 1..30);
        let mut r = TestRng::from_seed(2);
        for _ in 0..100 {
            assert!(s.gen_value(&mut r).len() <= 2);
            let map = m.gen_value(&mut r);
            assert!((1..=29).contains(&map.len()));
        }
    }
}
