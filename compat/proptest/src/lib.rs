//! Offline stand-in for `proptest`: random value generation with the same
//! strategy-combinator API surface, minus shrinking (a failing case panics
//! with the generated inputs printed via the assertion message instead of
//! a minimized counterexample).

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop` — module-style access to the
    /// strategy constructors (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Runs each `fn name(binding in strategy, ...) { body }` as a test over
/// `config.cases` generated inputs. No shrinking: the first failing case
/// reports its inputs through the failed assertion's message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(&config);
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $arg = $crate::strategy::Strategy::gen_value(
                                &($strat),
                                runner.rng(),
                            );
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

/// Chooses between strategies; optional `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
}
