//! `prop::option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match upstream's default: Some three times out of four.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.gen_value(rng))
        }
    }
}
