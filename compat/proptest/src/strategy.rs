//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Combinators mirror upstream proptest; generation is direct (no
/// intermediate `ValueTree`, hence no shrinking).
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), f }
    }

    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }

    /// Recursive strategies of bounded depth. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility; depth is
    /// what bounds generation here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth.max(1) {
            let deeper = recurse(strat).boxed();
            // Mix the leaf back in so generated depth varies 0..=depth
            // rather than always hitting the maximum.
            strat = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy {
    type Value;
    fn dyn_gen(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_gen(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values: {}", self.whence);
    }
}

#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        let v = self.inner.gen_value(rng);
        (self.f)(v, rng.fork())
    }
}

/// Weighted choice between strategies — what `prop_oneof!` builds.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

// ------------------------------------------------------ range strategies

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let off = rng.below(span);
                ((self.start as i64 as u64).wrapping_add(off)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = rng.below(span + 1);
                ((lo as i64 as u64).wrapping_add(off)) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, i8, i16, i32, i64, usize, u64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ------------------------------------------------------ tuple strategies

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0u8..4, (10i64..20).prop_map(|v| v * 2));
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = strat.gen_value(&mut r);
            assert!(a < 4);
            assert!((20..40).contains(&b) && b % 2 == 0);
        }
    }

    #[test]
    fn union_respects_weights() {
        let u = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let mut r = rng();
        let heads = (0..2_000).filter(|_| u.gen_value(&mut r)).count();
        assert!((1_600..2_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn filter_keeps_only_matching() {
        let s = (0u8..100).prop_filter("even", |v| v % 2 == 0);
        let mut r = rng();
        for _ in 0..200 {
            assert_eq!(s.gen_value(&mut r) % 2, 0);
        }
    }

    #[test]
    fn recursive_bounds_depth() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..300 {
            let t = strat.gen_value(&mut r);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never took a branch");
    }

    #[test]
    fn perturb_hands_out_usable_rng() {
        let s = Just(7u64).prop_perturb(|v, mut rng| v + (rng.random::<u64>() % 3));
        let mut r = rng();
        for _ in 0..50 {
            let v = s.gen_value(&mut r);
            assert!((7..10).contains(&v));
        }
    }
}
