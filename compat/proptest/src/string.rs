//! String strategies from regex-like patterns — `"[a-e][a-z0-9_]{0,6}"`
//! used directly as a `Strategy<Value = String>`, as in upstream proptest.
//!
//! Supported syntax: literal characters, character classes `[...]` with
//! ranges, escapes (`\d`, `\w`, `\\` etc.), and the quantifiers `{n}`,
//! `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let choices: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern `{pattern}`")
                    });
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            set.extend(lo..=hi);
                        }
                        '\\' => {
                            if let Some(p) = prev.take() {
                                set.push(p);
                            }
                            let esc = chars.next().expect("escape in class");
                            set.extend(escape_class(esc, pattern));
                            // Escapes can't start a range here.
                        }
                        other => {
                            if let Some(p) = prev.take() {
                                set.push(p);
                            }
                            prev = Some(other);
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty character class in pattern `{pattern}`");
                set
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern `{pattern}`"));
                escape_class(esc, pattern)
            }
            '.' => (' '..='~').collect(),
            other => vec![other],
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in pattern `{pattern}`");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn escape_class(esc: char, pattern: &str) -> Vec<char> {
    match esc {
        'd' => ('0'..='9').collect(),
        'w' => ('a'..='z').chain('A'..='Z').chain('0'..='9').chain(['_']).collect(),
        's' => vec![' ', '\t'],
        'n' => vec!['\n'],
        't' => vec!['\t'],
        '\\' | '.' | '[' | ']' | '{' | '}' | '?' | '*' | '+' | '(' | ')' | '-' | '|' => vec![esc],
        other => panic!("unsupported escape `\\{other}` in pattern `{pattern}`"),
    }
}

fn gen_from_atoms(atoms: &[Atom], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in atoms {
        let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        // Patterns in the workspace are short and generation is per-case;
        // re-parsing each time keeps this dependency-free and is cheap.
        gen_from_atoms(&parse_pattern(self), rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_atoms(&parse_pattern(self), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ident_like_pattern() {
        let s = "[a-e][a-z0-9_]{0,6}";
        let mut r = TestRng::from_seed(5);
        for _ in 0..500 {
            let v = s.gen_value(&mut r);
            assert!((1..=7).contains(&v.len()), "`{v}`");
            let mut cs = v.chars();
            assert!(('a'..='e').contains(&cs.next().unwrap()), "`{v}`");
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'), "`{v}`");
        }
    }

    #[test]
    fn class_with_space() {
        let s = "[a-z ]{0,6}";
        let mut r = TestRng::from_seed(6);
        let mut saw_space = false;
        for _ in 0..500 {
            let v = s.gen_value(&mut r);
            assert!(v.len() <= 6);
            assert!(v.chars().all(|c| c.is_ascii_lowercase() || c == ' '), "`{v}`");
            saw_space |= v.contains(' ');
        }
        assert!(saw_space);
    }

    #[test]
    fn fixed_and_open_quantifiers() {
        let mut r = TestRng::from_seed(7);
        assert_eq!("x{3}".gen_value(&mut r), "xxx");
        for _ in 0..100 {
            let v = r#"\d+"#.gen_value(&mut r);
            assert!((1..=8).contains(&v.len()));
            assert!(v.chars().all(|c| c.is_ascii_digit()));
        }
    }
}
