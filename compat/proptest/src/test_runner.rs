//! Config, RNG and the per-test driver used by the `proptest!` macro.

use std::error::Error;
use std::fmt;

/// Subset of upstream `ProptestConfig`. Construct with functional-record
/// update over `default()`, exactly as with the real crate.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; ignored.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 1024, max_global_rejects: 65_536 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for TestCaseError {}

/// xoshiro256++ with a splitmix64 seeder; good enough statistically for
/// test-input generation and cheap to fork.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub(crate) fn from_seed(mut seed: u64) -> Self {
        let s = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        TestRng { s }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `0..n` (`n > 0`).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Independent child generator (used by `prop_perturb`, which hands the
    /// rng to user code by value).
    pub(crate) fn fork(&mut self) -> TestRng {
        TestRng::from_seed(self.next_u64())
    }

    /// Upstream's `rng.random::<T>()` (rand 0.9 naming, used by
    /// `prop_perturb` callbacks).
    pub fn random<T: RandomValue>(&mut self) -> T {
        T::random_from(self)
    }
}

/// Types drawable via [`TestRng::random`].
pub trait RandomValue {
    fn random_from(rng: &mut TestRng) -> Self;
}

macro_rules! random_ints {
    ($($t:ty),*) => {$(
        impl RandomValue for $t {
            fn random_from(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

random_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandomValue for bool {
    fn random_from(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Drives one property: owns the RNG handed to strategies.
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    pub fn new(_config: &ProptestConfig) -> Self {
        // Fresh entropy per run (wall clock + a heap address) so repeated
        // invocations explore different inputs, like the upstream default.
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x5EED, |d| d.as_nanos() as u64);
        let here = &t as *const u64 as u64;
        TestRunner { rng: TestRng::from_seed(t ^ here.rotate_left(32)) }
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}
