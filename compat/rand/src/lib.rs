//! Offline stand-in for `rand` 0.8: `SmallRng` (xoshiro256++ seeded with
//! splitmix64, like the upstream implementation family), `SeedableRng`,
//! and the `Rng` extension methods SI-Rep uses (`gen_range`, `gen_bool`,
//! `gen`).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A value `gen_range` can draw from a range (stand-in for
/// `rand::distributions::uniform::SampleRange`). The blanket impls over
/// `Range<T>` / `RangeInclusive<T>` mirror upstream, which is what lets
/// type inference flow from the result type back into untyped literals
/// (`let x: i64 = rng.gen_range(0..9)`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can draw uniformly (stand-in for `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `lo..hi` (`inclusive` extends to `lo..=hi`).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// Types producible by `Rng::gen` (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as $wide as u64).wrapping_sub(lo as $wide as u64);
                let span = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    span + 1
                } else {
                    span
                };
                let off = mul_shift(rng.next_u64(), span);
                ((lo as $wide as u64).wrapping_add(off)) as $t
            }
        }
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_uniform! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

/// Unbiased-enough range reduction: high 64 bits of a 128-bit product.
fn mul_shift(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        lo + (unit_f64(rng) as f32) * (hi - lo)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

/// User-facing extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through splitmix64 — the same construction the
    /// upstream `SmallRng` family uses on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
