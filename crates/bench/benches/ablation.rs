//! Ablation benches for the design choices DESIGN.md calls out (no
//! counterpart figure in the paper — these quantify *why* the adjustments
//! matter on our substrate):
//!
//! - **applier concurrency** (adjustment 2): 1 applier = serial writeset
//!   application (the Fig. 1 regime); more appliers let non-conflicting
//!   writesets commit concurrently;
//! - **group-communication latency**: how the total-order delay (Spread's
//!   ~3 ms) shows up in update response times;
//! - **hole synchronization** (adjustment 3): SRCA-Rep vs SRCA-Opt at one
//!   saturating load point (the full sweep is Fig. 7).

use sirep_bench as bench;
use sirep_core::{Centralized, Cluster, ClusterConfig, ReplicationMode};
use sirep_gcs::GroupConfig;
use sirep_workloads::{
    run, setup_centralized, setup_cluster, InteractionStyle, LargeDb, RunConfig, UpdateIntensive,
};

fn point(load: f64, scale: sirep_common::TimeScale) -> RunConfig {
    RunConfig {
        clients: bench::clients_for(load),
        target_tps: load,
        duration_ms: bench::duration_ms() / 2.0,
        warmup_ms: bench::warmup_ms(),
        scale,
        link_ms: 0.3,
        style: InteractionStyle::PerStatement,
        max_retries: 5,
        seed: 0xAB1A,
    }
}

fn main() {
    let scale = bench::scale();
    let workload = UpdateIntensive::default();
    let load = if bench::quick() { 50.0 } else { 100.0 };
    let mut results = Vec::new();

    // --- applier concurrency ---------------------------------------------
    for appliers in [1usize, 2, 6] {
        let cluster = Cluster::new(
            ClusterConfig::builder()
                .replicas(5)
                .mode(ReplicationMode::SrcaRep)
                .cost(bench::updint_cost(scale))
                .gcs(bench::lan(scale))
                .appliers(appliers)
                .build(),
        );
        setup_cluster(&cluster, &workload).expect("setup");
        let mut r = run(&cluster, &workload, &point(load, scale));
        r.system = format!("SRCA-Rep appliers={appliers}");
        eprintln!("  appliers={appliers} done ({} committed)", r.committed);
        results.push(r);
    }

    // --- GCS total-order latency -------------------------------------------
    for delay_ms in [0.0, 3.0, 10.0] {
        let gcs = GroupConfig {
            total_order_delay_ms: delay_ms,
            fifo_delay_ms: delay_ms / 3.0,
            detection_delay_ms: 1000.0,
            scale,
            ..GroupConfig::instant()
        };
        let cluster = Cluster::new(
            ClusterConfig::builder()
                .replicas(5)
                .mode(ReplicationMode::SrcaRep)
                .cost(bench::updint_cost(scale))
                .gcs(gcs)
                .appliers(6)
                .build(),
        );
        setup_cluster(&cluster, &workload).expect("setup");
        let mut r = run(&cluster, &workload, &point(load, scale));
        r.system = format!("SRCA-Rep gcs={delay_ms}ms");
        eprintln!("  gcs delay={delay_ms}ms done ({} committed)", r.committed);
        results.push(r);
    }

    // --- hole synchronization (one point; the sweep is Fig. 7) --------------
    for mode in [ReplicationMode::SrcaRep, ReplicationMode::SrcaOpt] {
        let cluster = Cluster::new(
            ClusterConfig::builder()
                .replicas(5)
                .mode(mode)
                .cost(bench::updint_cost(scale))
                .gcs(bench::lan(scale))
                .appliers(6)
                .build(),
        );
        setup_cluster(&cluster, &workload).expect("setup");
        let hi = load * 1.5;
        let mut r = run(&cluster, &workload, &point(hi, scale));
        r.system = format!("{} @{hi}tps", r.system);
        eprintln!("  {} done ({} committed)", r.system, r.committed);
        results.push(r);
    }

    // --- secondary indexes (the paper ran §6.2 without any) -----------------
    // Equality-group queries on the large database, centralized, with and
    // without an index on `grp`: the no-index configuration is why the
    // paper's centralized system capped out around 4 tps.
    let ldb = LargeDb { equality_queries: true, ..LargeDb::default() };
    let idx_load = if bench::quick() { 6.0 } else { 10.0 };
    for with_index in [false, true] {
        let sys = Centralized::new(bench::largedb_cost(scale));
        setup_centralized(&sys, &ldb).expect("setup");
        if with_index {
            for ddl in ldb.index_ddl() {
                let db = sys.database();
                let t = db.begin().expect("begin");
                sirep_sql::execute_sql(db, &t, &ddl).expect("create index");
                t.commit().expect("commit");
            }
        }
        let mut cfg = point(idx_load, scale);
        cfg.clients = 32;
        let mut r = run(&sys, &ldb, &cfg);
        r.system = format!(
            "centralized largedb {}",
            if with_index { "with index" } else { "no index (paper)" }
        );
        eprintln!("  {} done ({} committed)", r.system, r.committed);
        results.push(r);
    }

    bench::print_table("Ablations: appliers / GCS latency / hole sync / indexes", &results);
    bench::write_csv("ablation", &results).expect("write csv");
    bench::write_json("ablation", &results).expect("write json");
}
