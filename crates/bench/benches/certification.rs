//! Certification micro-bench: key-indexed validation vs the paper's
//! reverse scan.
//!
//! Sweeps ws_list length × candidate writeset size and times
//! [`WsList::passes`] (last-certifier index, O(|ws|)) against
//! [`WsList::passes_scan`] (the paper's literal formulation,
//! O(list · |ws|)). Every timed probe uses `cert = 0` — the candidate is
//! certified against the *whole* window, the scan's worst case and exactly
//! the regime of a lagging replica — and non-conflicting keys, so the scan
//! can never exit early. Emits `results/BENCH_certification.json`; the
//! speedup at ws_list ≥ 1024 is the acceptance gate of the key-indexing PR.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirep_bench as bench;
use sirep_common::{GlobalTid, ReplicaId};
use sirep_core::validation::WsList;
use sirep_core::XactId;
use sirep_storage::{Key, WriteSet, WsOp};
use std::sync::Arc;
use std::time::Instant;

/// A writeset of `size` distinct keys drawn from `lo..hi`.
fn random_ws(rng: &mut SmallRng, size: usize, lo: i64, hi: i64) -> Arc<WriteSet> {
    let mut ws = WriteSet::new();
    let mut picked = 0;
    while picked < size {
        let k = rng.gen_range(lo..hi);
        if ws.contains("stock", &Key::single(k)) {
            continue;
        }
        ws.push(Arc::from("stock"), Key::single(k), WsOp::Delete);
        picked += 1;
    }
    Arc::new(ws)
}

/// Build a ws_list with `list_len` entries of `entry_ws` keys each, all in
/// the positive key range; candidates draw from the disjoint negative range
/// so the timed verdict is always "pass" and the scan never short-circuits.
fn build_list(rng: &mut SmallRng, list_len: usize, entry_ws: usize) -> WsList {
    let mut list = WsList::new();
    for seq in 0..list_len {
        let mut ws = WriteSet::new();
        for _ in 0..entry_ws {
            let k = rng.gen_range(1..1_000_000_i64);
            ws.push(Arc::from("stock"), Key::single(k), WsOp::Delete);
        }
        list.append(XactId { origin: ReplicaId::new(0), seq: seq as u64 }, Arc::new(ws));
    }
    list
}

/// Median nanoseconds per call of `f` over `iters` calls × `reps` samples.
fn time_ns(reps: usize, iters: usize, mut f: impl FnMut() -> bool) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let mut acc = true;
        for _ in 0..iters {
            acc &= std::hint::black_box(f());
        }
        assert!(acc, "bench candidates must all pass");
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let quick = bench::quick();
    let list_lens: &[usize] = if quick { &[256, 1024] } else { &[256, 1024, 4096] };
    let ws_sizes: &[usize] = if quick { &[10] } else { &[2, 10, 50] };
    let (reps, iters) = if quick { (3, 200) } else { (7, 1000) };
    let entry_ws = 10; // tuples per certified entry (≈ TPC-W update txn)

    let mut rng = SmallRng::seed_from_u64(0xCE47);
    let mut rows = Vec::new();
    let mut gate_speedup = f64::INFINITY;
    println!("== certification: last-certifier index vs reverse scan (cert = full window) ==");
    println!(
        "{:>9} {:>8} {:>14} {:>14} {:>9}",
        "ws_list", "|ws|", "indexed ns/op", "scan ns/op", "speedup"
    );
    for &list_len in list_lens {
        let list = build_list(&mut rng, list_len, entry_ws);
        for &ws_size in ws_sizes {
            // Pre-draw disjoint candidates (negative keys): never conflict.
            let cands: Vec<Arc<WriteSet>> =
                (0..32).map(|_| random_ws(&mut rng, ws_size, -1_000_000, 0)).collect();
            let mut i = 0;
            let mut next = || {
                i += 1;
                &cands[i % cands.len()]
            };
            let indexed = time_ns(reps, iters, || list.passes(GlobalTid::ZERO, next()));
            let mut j = 0;
            let mut next_s = || {
                j += 1;
                &cands[j % cands.len()]
            };
            let scan = time_ns(reps, iters, || list.passes_scan(GlobalTid::ZERO, next_s()));
            let speedup = scan / indexed;
            if list_len >= 1024 {
                gate_speedup = gate_speedup.min(speedup);
            }
            println!("{list_len:>9} {ws_size:>8} {indexed:>14.0} {scan:>14.0} {speedup:>8.1}x");
            rows.push(format!(
                "{{\"ws_list_len\":{list_len},\"ws_size\":{ws_size},\
                 \"entry_ws\":{entry_ws},\"indexed_ns\":{indexed:.1},\
                 \"scan_ns\":{scan:.1},\"speedup\":{speedup:.2}}}"
            ));
        }
    }
    bench::write_json_str(
        "certification",
        &format!(
            "{{\"bench\":\"certification\",\"quick\":{quick},\
             \"cert\":\"full window (0)\",\"rows\":[{}]}}",
            rows.join(",")
        ),
    )
    .expect("write json");
    println!("\nmin speedup at ws_list >= 1024: {gate_speedup:.1}x (acceptance gate: >= 5x)");
    assert!(
        gate_speedup >= 5.0,
        "indexed certification must be >= 5x the scan at ws_list >= 1024 (got {gate_speedup:.1}x)"
    );
}
