//! **Figure 5** — TPC-W ordering mix: mean response time of update and
//! read-only transactions vs. offered load, for a 5-replica SRCA-Rep
//! cluster and the centralized (single database, pass-through middleware)
//! baseline.
//!
//! Paper observations to reproduce (§6.1):
//! - at light load (25 tps) the two systems are comparable — the
//!   replication overhead (communication/validation) is compensated by
//!   spreading queries over 5 replicas;
//! - at 50 tps the centralized system is saturated while the replicated
//!   system handles up to ~100 tps with acceptable response times;
//! - abort rates stay far below 1 %.

use sirep_bench as bench;
use sirep_core::{Centralized, Cluster, ClusterConfig, ReplicationMode};
use sirep_workloads::{run, setup_centralized, setup_cluster, InteractionStyle, RunConfig, Tpcw};

fn main() {
    let scale = bench::scale();
    let loads = bench::thin(&[25.0, 50.0, 75.0, 100.0, 125.0, 150.0]);
    let workload = Tpcw::default();
    let mut results = Vec::new();

    // --- 5-replica SRCA-Rep -------------------------------------------------
    let cluster = Cluster::new(
        ClusterConfig::builder()
            .replicas(5)
            .mode(ReplicationMode::SrcaRep)
            .cost(bench::tpcw_cost(scale))
            .gcs(bench::lan(scale))
            .appliers(4)
            .build(),
    );
    setup_cluster(&cluster, &workload).expect("setup cluster");
    for &load in &loads {
        let cfg = RunConfig {
            clients: bench::clients_for(load),
            target_tps: load,
            duration_ms: bench::duration_ms(),
            warmup_ms: bench::warmup_ms(),
            scale,
            link_ms: 0.3,
            style: InteractionStyle::PerStatement,
            max_retries: 5,
            seed: 0xF165,
        };
        let r = run(&cluster, &workload, &cfg);
        eprintln!("  [SRCA-Rep x5] {load} tps done ({} committed)", r.committed);
        results.push(r);
    }
    let m = cluster.metrics();
    eprintln!("SRCA-Rep metrics: {}", m.summary());
    eprintln!("SRCA-Rep rates: {}", m.rates());
    println!(
        "\nSRCA-Rep per-stage latency breakdown (wall ms; 1 wall ms = {:.1} model ms):",
        scale.model_ms(std::time::Duration::from_millis(1))
    );
    print!("{}", m.breakdown_table());
    let abort_rate = m.rates().abort_rate;
    drop(cluster);

    // --- centralized ---------------------------------------------------------
    let central = Centralized::new(bench::tpcw_cost(scale));
    setup_centralized(&central, &workload).expect("setup centralized");
    for &load in &loads {
        let cfg = RunConfig {
            clients: bench::clients_for(load),
            target_tps: load,
            duration_ms: bench::duration_ms(),
            warmup_ms: bench::warmup_ms(),
            scale,
            link_ms: 0.3,
            style: InteractionStyle::PerStatement,
            max_retries: 5,
            seed: 0xF165,
        };
        let r = run(&central, &workload, &cfg);
        eprintln!("  [centralized] {load} tps done ({} committed)", r.committed);
        results.push(r);
    }

    bench::print_table("Figure 5: TPC-W ordering mix, 5 replicas vs centralized", &results);
    println!(
        "\nT-1 (paper: abort rate far below 1%): SRCA-Rep abort rate = {:.3}%",
        100.0 * abort_rate
    );
    bench::write_csv("fig5_tpcw", &results).expect("write csv");
    bench::write_json("fig5_tpcw", &results).expect("write json");
}
