//! **Figure 6** — the large, I/O-bound database (§6.2): mean update
//! response time vs. load for 5- and 10-replica SRCA-Rep clusters.
//!
//! Paper observations to reproduce:
//! - the centralized system maxes out around 4 tps with >300 ms update
//!   response times (reported in text, not plotted);
//! - a 5-replica cluster handles ~20 tps below 200 ms;
//! - a 10-replica cluster reaches ~35 tps below 200 ms — the read-intensive
//!   load scales out because queries spread across replicas.

use sirep_bench as bench;
use sirep_core::{Centralized, Cluster, ClusterConfig, ReplicationMode};
use sirep_workloads::{
    run, setup_centralized, setup_cluster, InteractionStyle, LargeDb, RunConfig,
};

fn main() {
    let scale = bench::scale();
    let workload = LargeDb::default();
    let loads = bench::thin(&[5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0]);
    let mut results = Vec::new();

    for &replicas in &[5usize, 10] {
        let cluster = Cluster::new(
            ClusterConfig::builder()
                .replicas(replicas)
                .mode(ReplicationMode::SrcaRep)
                .cost(bench::largedb_cost(scale))
                .gcs(bench::lan(scale))
                .appliers(4)
                .build(),
        );
        setup_cluster(&cluster, &workload).expect("setup");
        for &load in &loads {
            let cfg = RunConfig {
                clients: bench::clients_for(load * 8.0), // long txns need headroom
                target_tps: load,
                duration_ms: bench::duration_ms(),
                warmup_ms: bench::warmup_ms(),
                scale,
                link_ms: 0.3,
                style: InteractionStyle::PerStatement,
                max_retries: 5,
                seed: 0xF166,
            };
            let mut r = run(&cluster, &workload, &cfg);
            r.system = format!("SRCA-Rep x{replicas}");
            eprintln!("  [SRCA-Rep x{replicas}] {load} tps done ({} committed)", r.committed);
            results.push(r);
        }
        let m = cluster.metrics();
        println!(
            "\nSRCA-Rep x{replicas} per-stage latency breakdown \
             (wall ms; 1 wall ms = {:.1} model ms):",
            scale.model_ms(std::time::Duration::from_millis(1))
        );
        print!("{}", m.breakdown_table());
    }

    // Text claim: "the maximum achievable throughput [centralized] is
    // around 4 tps with a response time of over 300 ms".
    let central = Centralized::new(bench::largedb_cost(scale));
    setup_centralized(&central, &workload).expect("setup centralized");
    for &load in &bench::thin(&[2.0, 4.0, 6.0]) {
        let cfg = RunConfig {
            clients: 16,
            target_tps: load,
            duration_ms: bench::duration_ms(),
            warmup_ms: bench::warmup_ms(),
            scale,
            link_ms: 0.3,
            style: InteractionStyle::PerStatement,
            max_retries: 5,
            seed: 0xF166,
        };
        let r = run(&central, &workload, &cfg);
        eprintln!("  [centralized] {load} tps done ({} committed)", r.committed);
        results.push(r);
    }

    bench::print_table(
        "Figure 6: large I/O-bound DB, 5 vs 10 replicas (+centralized text claim)",
        &results,
    );
    bench::write_csv("fig6_largedb", &results).expect("write csv");
    bench::write_json("fig6_largedb", &results).expect("write json");
}
