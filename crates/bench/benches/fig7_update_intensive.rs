//! **Figure 7** — the update-intensive stress test (§6.3): mean update
//! response time vs. load for SRCA-Rep, SRCA-Opt, the centralized baseline
//! and the table-level-locking protocol of [20], 5 replicas, 100 % update
//! transactions of 10 updates each.
//!
//! Paper observations to reproduce:
//! - SRCA-Rep and SRCA-Opt are similar at low load; SRCA-Rep gets worse at
//!   high load (hole-synchronization overhead; holes at ~4–8 % of begins);
//! - both beat the centralized system's maximum throughput even with 100 %
//!   updates (applying a writeset ≈ 20 % of executing the transaction);
//! - the [20] protocol has similar response times at low load but saturates
//!   earlier because of table-level lock contention.

use sirep_bench as bench;
use sirep_core::{
    tablelock::{TableLockCluster, TableLockConfig},
    Centralized, Cluster, ClusterConfig, ReplicationMode,
};
use sirep_workloads::{
    run, setup_centralized, setup_cluster, setup_tablelock, InteractionStyle, RunConfig,
    UpdateIntensive,
};

fn cfg_for(load: f64, scale: sirep_common::TimeScale, style: InteractionStyle) -> RunConfig {
    RunConfig {
        clients: bench::clients_for(load),
        target_tps: load,
        duration_ms: bench::duration_ms(),
        warmup_ms: bench::warmup_ms(),
        scale,
        link_ms: 0.3,
        style,
        // No client retries: aborted transactions count and the client
        // moves on, so the offered load stays what the x-axis says even
        // past saturation.
        max_retries: 0,
        seed: 0xF167,
    }
}

fn main() {
    let scale = bench::scale();
    let workload = UpdateIntensive::default();
    let loads = bench::thin(&[25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0]);
    let mut results = Vec::new();
    let mut hole_rates: Vec<(f64, f64)> = Vec::new();

    // --- SRCA-Rep and SRCA-Opt ----------------------------------------------
    for mode in [ReplicationMode::SrcaRep, ReplicationMode::SrcaOpt] {
        let cluster = Cluster::new(
            ClusterConfig::builder()
                .replicas(5)
                .mode(mode)
                .cost(bench::updint_cost(scale))
                .gcs(bench::lan(scale))
                .appliers(6)
                .build(),
        );
        setup_cluster(&cluster, &workload).expect("setup");
        let mut prev = (0u64, 0u64);
        for &load in &loads {
            let r = run(&cluster, &workload, &cfg_for(load, scale, InteractionStyle::PerStatement));
            eprintln!("  [{}] {load} tps done ({} committed)", r.system, r.committed);
            if mode == ReplicationMode::SrcaRep {
                // Per-point hole rate (T-3): delta of the cumulative counters.
                let m = cluster.metrics();
                let delayed = sirep_common::Metrics::get(&m.begins_delayed_by_holes);
                let total = sirep_common::Metrics::get(&m.begins_total);
                let d = (delayed - prev.0) as f64 / (total - prev.1).max(1) as f64;
                hole_rates.push((load, d));
                prev = (delayed, total);
            }
            results.push(r);
        }
        let m = cluster.metrics();
        eprintln!("{:?} metrics: {}", mode, m.summary());
        eprintln!("{:?} rates: {}", mode, m.rates());
        println!(
            "\n{:?} per-stage latency breakdown (wall ms; 1 wall ms = {:.1} model ms):",
            mode,
            scale.model_ms(std::time::Duration::from_millis(1))
        );
        print!("{}", m.breakdown_table());
    }

    // --- centralized ----------------------------------------------------------
    let central = Centralized::new(bench::updint_cost(scale));
    setup_centralized(&central, &workload).expect("setup");
    for &load in &loads {
        let r = run(&central, &workload, &cfg_for(load, scale, InteractionStyle::PerStatement));
        eprintln!("  [centralized] {load} tps done ({} committed)", r.committed);
        results.push(r);
    }

    // --- protocol of [20] ------------------------------------------------------
    let tl = TableLockCluster::new(TableLockConfig {
        replicas: 5,
        cost: bench::updint_cost(scale),
        gcs: bench::lan(scale),
    });
    setup_tablelock(&tl, &workload).expect("setup");
    for &load in &loads {
        let r = run(&tl, &workload, &cfg_for(load, scale, InteractionStyle::PerTransaction));
        eprintln!("  [table-lock [20]] {load} tps done ({} committed)", r.committed);
        results.push(r);
    }

    bench::print_table(
        "Figure 7: update-intensive, SRCA-Rep vs SRCA-Opt vs centralized vs [20]",
        &results,
    );
    println!("\nT-3 (paper: holes at 4-8% of transaction starts), SRCA-Rep per load:");
    for (load, rate) in &hole_rates {
        println!("  {load:>5} tps: {:.1}% of begins delayed by holes", 100.0 * rate);
    }
    bench::write_csv("fig7_update_intensive", &results).expect("write csv");
    bench::write_json("fig7_update_intensive", &results).expect("write json");
}
