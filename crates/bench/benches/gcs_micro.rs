//! **T-4** (§5.2) — group communication latency/throughput: *"the delay for
//! a uniform reliable multicast does not exceed 3 ms in a LAN even for
//! message rates of several hundreds of messages per second."*
//!
//! Measures delivery latency of the simulated GCS at increasing message
//! rates, verifying the configured LAN latency holds under load (it is a
//! simulation parameter, but the queues and horizon bookkeeping around it
//! are real and could distort it).

use sirep_bench as bench;
use sirep_common::OnlineStats;
use sirep_gcs::{Delivery, GroupConfig, SimGroup};
use std::time::Instant;

fn main() {
    let scale = bench::scale();
    let cfg = GroupConfig::lan(scale);
    let latency_budget_ms = cfg.total_order_delay_ms;

    println!("\n== T-4: uniform reliable total order multicast (5 members) ==");
    println!("{:>12} {:>14} {:>14} {:>12}", "rate msg/s", "mean ms", "p99-ish ms", "delivered");
    for &rate in &bench::thin(&[100.0, 200.0, 400.0, 800.0]) {
        let group: SimGroup<u64> = SimGroup::new(cfg.clone());
        let members: Vec<_> = (0..5).map(|_| group.join()).collect();
        for m in &members {
            while let Some(Delivery::ViewChange(_)) = m.try_recv() {}
        }
        let n = if bench::quick() { 200 } else { 1000 };
        let sender = members[0].handle();
        let gap_ms = 1000.0 / rate;
        // Receive concurrently at a non-sender member, recording arrivals.
        let receiver = members.into_iter().nth(1).expect("5 members");
        let rx_thread = std::thread::spawn(move || {
            let mut arrivals = Vec::with_capacity(n);
            while arrivals.len() < n {
                match receiver.recv_timeout(std::time::Duration::from_secs(10)) {
                    Ok(Delivery::TotalOrder { .. }) => arrivals.push(Instant::now()),
                    Ok(_) => {}
                    Err(e) => panic!("delivery stalled: {e}"),
                }
            }
            arrivals
        });
        let mut send_times = Vec::with_capacity(n);
        for _ in 0..n {
            send_times.push(Instant::now());
            sender.multicast_total(0).unwrap();
            scale.sleep(gap_ms);
        }
        let arrivals = rx_thread.join().expect("receiver panicked");
        let mut stats = OnlineStats::new();
        for (sent, arrived) in send_times.iter().zip(&arrivals) {
            stats.record(scale.model_ms(arrived.saturating_duration_since(*sent)));
        }
        println!(
            "{:>12.0} {:>14.2} {:>14.2} {:>12}",
            rate,
            stats.mean(),
            stats.mean() + 2.0 * stats.std_dev(),
            stats.count()
        );
        assert!(
            stats.mean() < latency_budget_ms * 10.0,
            "delivery latency exploded at {rate} msg/s: {} ms",
            stats.mean()
        );
    }
    println!("(configured LAN latency: {latency_budget_ms} model ms, as in the paper's Spread)");
}
