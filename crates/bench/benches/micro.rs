//! Criterion micro-benchmarks of the building blocks (engineering
//! measurements — the paper has no corresponding table; these guard the
//! hot paths the protocol depends on).
//!
//! - writeset intersection (the certification inner loop);
//! - validation against a populated `ws_list`;
//! - storage point reads/writes and snapshot scans;
//! - SQL parsing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sirep_common::{Stage, StageStats, TxTrace};
use sirep_core::{WsList, XactId};
use sirep_sql::parse;
use sirep_storage::{Column, ColumnType, Database, Key, TableSchema, Value, WriteSet, WsOp};
use std::hint::black_box;
use std::sync::Arc;

fn ws_of(keys: std::ops::Range<i64>) -> WriteSet {
    let mut ws = WriteSet::new();
    for k in keys {
        ws.push(Arc::from("t"), Key::single(k), WsOp::Put(vec![Value::Int(k)]));
    }
    ws
}

fn bench_writeset_intersection(c: &mut Criterion) {
    let a = ws_of(0..10);
    let disjoint = ws_of(100..110);
    let overlapping = ws_of(5..15);
    c.bench_function("writeset/intersect_disjoint_10x10", |b| {
        b.iter(|| black_box(a.intersects(black_box(&disjoint))));
    });
    c.bench_function("writeset/intersect_overlap_10x10", |b| {
        b.iter(|| black_box(a.intersects(black_box(&overlapping))));
    });
}

/// ws_list with 1000 entries of 10 tuples each (validation benches check a
/// fresh writeset against the most recent 100).
fn populated_wslist() -> WsList {
    let mut list = WsList::new();
    for i in 0..1000i64 {
        let ws = ws_of(i * 10..i * 10 + 10);
        list.append(
            XactId { origin: sirep_common::ReplicaId::new(0), seq: i as u64 },
            Arc::new(ws),
        );
    }
    list
}

fn bench_validation(c: &mut Criterion) {
    let list = populated_wslist();
    let cert = sirep_common::GlobalTid::new(900);
    let candidate = ws_of(20_000..20_010);
    c.bench_function("validation/pass_window_100", |b| {
        b.iter(|| black_box(list.passes(black_box(cert), black_box(&candidate))));
    });
    let conflicting = ws_of(9_995..10_005);
    c.bench_function("validation/conflict_window_100", |b| {
        b.iter(|| black_box(list.passes(black_box(cert), black_box(&conflicting))));
    });
}

fn bench_trace_overhead(c: &mut Criterion) {
    // The full per-transaction tracing footprint in isolation: create,
    // mark every stage a committed update transaction passes through, and
    // absorb into the shared per-replica histogram registry.
    let stats = StageStats::new();
    c.bench_function("trace/lifecycle_record", |b| {
        b.iter(|| {
            let mut t = TxTrace::start();
            t.mark(Stage::BeginWait);
            t.mark(Stage::Execute);
            t.mark(Stage::WsExtract);
            t.mark(Stage::GcsDeliver);
            t.mark(Stage::ValidateQueue);
            t.mark(Stage::Commit);
            stats.absorb(&black_box(t.finish()));
        });
    });
    // The <5 % overhead claim, measured: the same certification inner loop
    // as validation/pass_window_100 with the whole tracing footprint added
    // per validation. The delta between the two bench lines is the tracing
    // tax on validation throughput (in practice far below 5 % — a trace is
    // a handful of monotonic-clock reads against a 100-entry scan).
    let list = populated_wslist();
    let cert = sirep_common::GlobalTid::new(900);
    let candidate = ws_of(20_000..20_010);
    c.bench_function("validation/pass_window_100_traced", |b| {
        b.iter(|| {
            let mut t = TxTrace::start();
            t.mark(Stage::Execute);
            let pass = black_box(list.passes(black_box(cert), black_box(&candidate)));
            t.mark(Stage::ValidateQueue);
            t.mark(Stage::Commit);
            stats.absorb(&t.finish());
            pass
        });
    });
}

fn kv_db(rows: i64) -> Database {
    let db = Database::in_memory();
    db.create_table(
        TableSchema::new(
            "kv",
            vec![Column::new("k", ColumnType::Int), Column::new("v", ColumnType::Int)],
            &["k"],
        )
        .unwrap(),
    )
    .unwrap();
    let t = db.begin().unwrap();
    for k in 0..rows {
        t.insert("kv", vec![Value::Int(k), Value::Int(k)]).unwrap();
    }
    t.commit().unwrap();
    db
}

fn bench_storage(c: &mut Criterion) {
    let db = kv_db(10_000);
    c.bench_function("storage/point_read", |b| {
        let t = db.begin().unwrap();
        let key = Key::single(4321);
        b.iter(|| black_box(t.read("kv", black_box(&key)).unwrap()));
    });
    c.bench_function("storage/update_commit", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 1) % 10_000;
            let t = db.begin().unwrap();
            t.update_key("kv", Key::single(k), vec![Value::Int(k), Value::Int(k + 1)]).unwrap();
            t.commit().unwrap();
        });
    });
    c.bench_function("storage/scan_10k", |b| {
        let t = db.begin().unwrap();
        b.iter(|| black_box(t.scan("kv", |r| r[1].as_int().unwrap() % 97 == 0).unwrap().len()));
    });
    c.bench_function("storage/writeset_extract_10", |b| {
        // Criterion pre-builds a whole batch of setup transactions before
        // running the routine, so every setup must touch DISJOINT keys —
        // otherwise the second setup blocks on the first's tuple locks.
        use std::sync::atomic::{AtomicI64, Ordering};
        static NEXT: AtomicI64 = AtomicI64::new(1_000_000);
        b.iter_batched(
            || {
                let base = NEXT.fetch_add(10, Ordering::Relaxed);
                let t = db.begin().unwrap();
                for k in base..base + 10 {
                    t.insert("kv", vec![Value::Int(k), Value::Int(0)]).unwrap();
                }
                t
            },
            |t| {
                black_box(t.writeset());
                t.abort(sirep_common::AbortReason::UserRequested);
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_sql(c: &mut Criterion) {
    let q = "SELECT i_id, i_title FROM item WHERE i_cost > 5 AND i_id <> 3 \
             ORDER BY i_cost DESC LIMIT 10";
    c.bench_function("sql/parse_select", |b| b.iter(|| black_box(parse(black_box(q)))));
    let u = "UPDATE item SET i_stock = i_stock - 3, i_total_sold = i_total_sold + 3 \
             WHERE i_id = 77";
    c.bench_function("sql/parse_update", |b| b.iter(|| black_box(parse(black_box(u)))));

    let db = kv_db(1_000);
    c.bench_function("sql/point_select_end_to_end", |b| {
        let t = db.begin().unwrap();
        b.iter(|| {
            black_box(sirep_sql::execute_sql(&db, &t, "SELECT v FROM kv WHERE k = 500").unwrap())
        });
    });
}

criterion_group!(
    benches,
    bench_writeset_intersection,
    bench_validation,
    bench_trace_overhead,
    bench_storage,
    bench_sql
);
criterion_main!(benches);
