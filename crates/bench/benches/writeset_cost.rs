//! **T-2** (§6.3 text claim) — *"Applying writesets takes only around 20 %
//! of the time it takes to execute the entire transaction."*
//!
//! Measures, on one database replica with the Fig. 7 cost model:
//! 1. executing the full update transaction through the SQL path
//!    (parse → plan → read → write), and
//! 2. applying its extracted writeset.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sirep_bench as bench;
use sirep_common::OnlineStats;
use sirep_storage::Database;
use sirep_workloads::{UpdateIntensive, Workload};
use std::time::Instant;

fn main() {
    let scale = bench::scale();
    let workload = UpdateIntensive::default();
    let db = Database::new(bench::updint_cost(scale));
    for ddl in workload.ddl() {
        let t = db.begin().unwrap();
        sirep_sql::execute_sql(&db, &t, &ddl).unwrap();
        t.commit().unwrap();
    }
    workload.populate(&db).unwrap();

    let iterations = if bench::quick() { 50 } else { 400 };
    let mut rng = SmallRng::seed_from_u64(0x715);
    let mut exec_ms = OnlineStats::new();
    let mut apply_ms = OnlineStats::new();

    for i in 0..iterations {
        let tmpl = workload.next(&mut rng, i);
        // Full execution through the SQL path.
        let t0 = Instant::now();
        let txn = db.begin().unwrap();
        for sql in &tmpl.statements {
            sirep_sql::execute_sql(&db, &txn, sql).unwrap();
        }
        let ws = txn.writeset();
        txn.commit().unwrap();
        exec_ms.record(scale.model_ms(t0.elapsed()));

        // Applying the extracted writeset (what a remote replica does).
        let t1 = Instant::now();
        let remote = db.begin().unwrap();
        remote.apply_writeset(&ws).unwrap();
        remote.commit().unwrap();
        apply_ms.record(scale.model_ms(t1.elapsed()));
    }

    let ratio = apply_ms.mean() / exec_ms.mean();
    println!("\n== T-2: writeset application vs full execution (update-intensive txn) ==");
    println!("full execution : {:>8.2} model ms (n={})", exec_ms.mean(), exec_ms.count());
    println!("writeset apply : {:>8.2} model ms (n={})", apply_ms.mean(), apply_ms.count());
    println!("ratio          : {:>8.1} %   (paper: \"around 20%\")", 100.0 * ratio);
    assert!(
        (0.10..0.45).contains(&ratio),
        "ratio {ratio} far outside the paper's regime — cost model drifted"
    );
}
