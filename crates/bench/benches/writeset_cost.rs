//! **T-2** (§6.3 text claim) — *"Applying writesets takes only around 20 %
//! of the time it takes to execute the entire transaction."*
//!
//! Measured from the transaction-lifecycle stage stats of a live 2-replica
//! SRCA-Rep cluster (not ad-hoc timers): update transactions run through
//! sessions on replica 0, whose `execute` stage captures the full SQL path
//! (parse → plan → read → write), while replica 1's `apply` stage captures
//! the remote writeset application. The ratio of the two stage medians is
//! the paper's claim.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sirep_bench as bench;
use sirep_common::Stage;
use sirep_core::{Cluster, ClusterConfig, Connection, ReplicationMode};
use sirep_workloads::{setup_cluster, UpdateIntensive, Workload};
use std::time::Duration;

fn main() {
    let scale = bench::scale();
    let workload = UpdateIntensive::default();
    let cluster = Cluster::new(
        ClusterConfig::builder()
            .replicas(2)
            .mode(ReplicationMode::SrcaRep)
            .cost(bench::updint_cost(scale))
            .gcs(bench::lan(scale))
            .appliers(2)
            .build(),
    );
    setup_cluster(&cluster, &workload).expect("setup cluster");

    let iterations = if bench::quick() { 50 } else { 400 };
    let mut rng = SmallRng::seed_from_u64(0x715);
    let mut session = cluster.session(0);
    for i in 0..iterations {
        let tmpl = workload.next(&mut rng, i);
        for sql in &tmpl.statements {
            session.execute(sql).unwrap();
        }
        session.commit().unwrap();
    }
    assert!(cluster.quiesce(Duration::from_secs(30)), "cluster failed to drain");

    // Replica 0 executed every transaction locally; replica 1 applied every
    // writeset remotely. Compare the stage medians.
    let report = cluster.metrics();
    let local = &report.per_node[0].stages;
    let remote = &report.per_node[1].stages;
    if local.is_empty() && remote.is_empty() {
        println!("T-2 skipped: tracing compiled out (build with the `trace` feature)");
        return;
    }
    let exec_ms = local.median(Stage::Execute);
    let apply_ms = remote.median(Stage::Apply);
    assert!(local.count(Stage::Execute) as usize >= iterations, "missing execute samples");
    assert!(remote.count(Stage::Apply) as usize >= iterations, "missing apply samples");

    let ratio = apply_ms / exec_ms;
    let model_per_wall = scale.model_ms(Duration::from_millis(1));
    println!("\n== T-2: writeset application vs full execution (update-intensive txn) ==");
    println!("(stage medians from the lifecycle trace; wall ms × {model_per_wall:.1} = model ms)");
    println!(
        "full execution : {:>8.2} wall ms = {:>8.2} model ms (n={})",
        exec_ms,
        exec_ms * model_per_wall,
        local.count(Stage::Execute)
    );
    println!(
        "writeset apply : {:>8.2} wall ms = {:>8.2} model ms (n={})",
        apply_ms,
        apply_ms * model_per_wall,
        remote.count(Stage::Apply)
    );
    println!("ratio          : {:>8.1} %   (paper: \"around 20%\")", 100.0 * ratio);
    println!("\nper-stage breakdown, local replica (wall ms):");
    print!("{}", local.breakdown_table());
    println!("\nper-stage breakdown, remote replica (wall ms):");
    print!("{}", remote.breakdown_table());
    bench::write_json_str(
        "writeset_cost",
        &format!(
            "{{\"bench\":\"writeset_cost\",\"iterations\":{iterations},\
             \"exec_median_wall_ms\":{exec_ms:.4},\"apply_median_wall_ms\":{apply_ms:.4},\
             \"apply_over_exec_ratio\":{ratio:.4},\"paper_claim\":0.20}}"
        ),
    )
    .expect("write json");
    assert!(
        (0.10..0.45).contains(&ratio),
        "ratio {ratio} far outside the paper's regime — cost model drifted"
    );
}
