//! # sirep-bench
//!
//! Harness utilities shared by the figure benchmarks. Each figure of the
//! paper's evaluation has its own bench target (`cargo bench -p sirep-bench
//! --bench fig5_tpcw`, `fig6_largedb`, `fig7_update_intensive`, plus
//! `writeset_cost` for the §6.3 writeset-application claim and `micro` /
//! `gcs_micro` criterion benches). Results are printed as a table and
//! written as CSV under `results/`.
//!
//! ## Calibration
//!
//! The cost models below translate the paper's 2005 testbed (Pentium-4
//! PCs, on-disk PostgreSQL, 100 Mbit LAN, Spread) into model-millisecond
//! service times. We do **not** attempt to match absolute milliseconds —
//! the claim being reproduced is the *shape* of each figure: who saturates
//! first, roughly where, and how the curves order. EXPERIMENTS.md records
//! paper-vs-measured values for every figure.
//!
//! Environment knobs:
//! - `SIREP_QUICK=1` — fewer load points, shorter windows (smoke run);
//! - `SIREP_SCALE=<factor>` — time compression (default 25×);
//! - `SIREP_DURATION_MS=<model ms>` — measurement window per point.

use sirep_common::TimeScale;
use sirep_gcs::GroupConfig;
use sirep_storage::CostModel;
use sirep_workloads::RunResult;
use std::io::Write;

/// Smoke-run mode (used by CI and the test suite).
pub fn quick() -> bool {
    std::env::var("SIREP_QUICK").is_ok_and(|v| v != "0")
}

/// The time compression factor for bench runs.
///
/// Default 2.5×: sleep-based service times on stock Linux carry ~80 µs of
/// jitter per operation, so the smallest model costs (~0.3 ms) must map to
/// ≥100 µs wall for the *mean* to stay faithful. Raise this only on
/// machines with many cores and a high-resolution tick.
pub fn scale() -> TimeScale {
    let factor =
        std::env::var("SIREP_SCALE").ok().and_then(|v| v.parse::<f64>().ok()).unwrap_or(2.5);
    TimeScale::compressed(factor)
}

/// Measurement window per load point, model milliseconds.
pub fn duration_ms() -> f64 {
    std::env::var("SIREP_DURATION_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(if quick() { 4_000.0 } else { 15_000.0 })
}

/// Warm-up per load point, model milliseconds.
pub fn warmup_ms() -> f64 {
    if quick() {
        500.0
    } else {
        2_000.0
    }
}

/// Pick load points, thinning in quick mode.
pub fn thin(points: &[f64]) -> Vec<f64> {
    if quick() && points.len() > 3 {
        vec![points[0], points[points.len() / 2], points[points.len() - 1]]
    } else {
        points.to_vec()
    }
}

/// The paper's LAN: ≤3 ms uniform total-order multicast (§5.2).
pub fn lan(scale: TimeScale) -> GroupConfig {
    GroupConfig::lan(scale)
}

// ---------------------------------------------------------------------------
// Cost models (see module docs; rationale in EXPERIMENTS.md)
// ---------------------------------------------------------------------------

/// Fig. 5 — TPC-W on a 200 MB database: short indexed statements, log-force
/// commits; a single replica saturates a bit above 50 tps.
pub fn tpcw_cost(scale: TimeScale) -> CostModel {
    CostModel {
        scale,
        servers: 1,
        begin_ms: 0.0,
        read_ms: 1.2,
        scan_row_ms: 0.02,
        write_ms: 2.0,
        apply_write_ms: 0.5,
        // Entry + flush = the old 4 ms commit; the flush dominates, so a
        // full group commit amortizes most of it.
        commit_entry_ms: 1.0,
        commit_flush_ms: 3.0,
        stmt_overhead_ms: 0.8,
    }
}

/// Fig. 6 — the 1.1 GB I/O-bound database, no indexes: queries are long
/// scans, updates are expensive; the paper's centralized system saturates
/// around 4 tps.
pub fn largedb_cost(scale: TimeScale) -> CostModel {
    // The paper ran without indexes, so the medium query is a full scan:
    // 5000 rows × 0.05 ms ≈ 250 ms. An update transaction is 10 indexed
    // row updates ≈ 115 ms. That yields (queueing math in EXPERIMENTS.md)
    // saturation at ≈4.5 tps centralized, ≈20 tps with 5 replicas and
    // ≈35 tps with 10 — the paper's reported points.
    CostModel {
        scale,
        servers: 1,
        begin_ms: 0.0,
        read_ms: 1.5,
        scan_row_ms: 0.05,
        write_ms: 9.0,
        apply_write_ms: 2.5,
        commit_entry_ms: 2.0,
        commit_flush_ms: 8.0,
        stmt_overhead_ms: 1.5,
    }
}

/// Fig. 7 — the small, update-intensive stress database: short statements;
/// applying a writeset costs ≈20 % of executing the transaction (§6.3).
pub fn updint_cost(scale: TimeScale) -> CostModel {
    CostModel {
        scale,
        servers: 1,
        begin_ms: 0.0,
        read_ms: 0.5,
        scan_row_ms: 0.01,
        write_ms: 1.0,
        apply_write_ms: 0.26,
        commit_entry_ms: 0.5,
        commit_flush_ms: 1.5,
        stmt_overhead_ms: 0.3,
    }
}

/// Clients needed to offer `tps` with headroom.
pub fn clients_for(tps: f64) -> usize {
    ((tps * 0.6).ceil() as usize).clamp(8, 400)
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

/// Print one figure's results as an aligned table.
pub fn print_table(title: &str, results: &[RunResult]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>8} {:>9} {:>12} {:>12} {:>12} {:>9}",
        "system", "load", "achieved", "upd RT ms", "ro RT ms", "upd p95", "aborts%"
    );
    for r in results {
        println!(
            "{:<28} {:>8.0} {:>9.1} {:>12.1} {:>12.1} {:>12.1} {:>8.2}%",
            r.system,
            r.target_tps,
            r.achieved_tps,
            r.update_rt.mean(),
            r.readonly_rt.mean(),
            r.update_hist.quantile(0.95),
            100.0 * r.abort_rate()
        );
    }
}

/// Append results as CSV under `results/<name>.csv` (header included).
pub fn write_csv(name: &str, results: &[RunResult]) -> std::io::Result<()> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", RunResult::csv_header())?;
    for r in results {
        writeln!(f, "{}", r.csv_row())?;
    }
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// A finite float for JSON, or `null` (JSON has no NaN/Infinity).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

/// One [`RunResult`] as a JSON object: identity, throughput, abort rates,
/// response-time quantiles, and the per-stage lifecycle latency breakdown
/// (p50/p95/p99 wall ms — empty object when tracing is compiled out).
pub fn result_json(r: &RunResult) -> String {
    use std::fmt::Write as _;
    let mut stages = String::new();
    for stage in sirep_common::Stage::ALL {
        let count = r.stages.count(stage);
        if count == 0 {
            continue;
        }
        if !stages.is_empty() {
            stages.push(',');
        }
        let _ = write!(
            stages,
            "\"{}\":{{\"count\":{count},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"overflow\":{}}}",
            stage.name(),
            json_num(r.stages.quantile(stage, 0.5)),
            json_num(r.stages.quantile(stage, 0.95)),
            json_num(r.stages.quantile(stage, 0.99)),
            r.stages.overflow(stage)
        );
    }
    format!(
        "{{\"system\":\"{}\",\"workload\":\"{}\",\"target_tps\":{},\"achieved_tps\":{},\
         \"committed\":{},\"forced_aborts\":{},\"given_up\":{},\"abort_rate\":{},\
         \"update_rt_ms\":{{\"mean\":{},\"p95\":{},\"p99\":{}}},\
         \"readonly_rt_ms\":{{\"mean\":{},\"p95\":{},\"p99\":{}}},\
         \"stages\":{{{stages}}}}}",
        r.system,
        r.workload,
        json_num(r.target_tps),
        json_num(r.achieved_tps),
        r.committed,
        r.forced_aborts,
        r.given_up,
        json_num(r.abort_rate()),
        json_num(r.update_rt.mean()),
        json_num(r.update_hist.quantile(0.95)),
        json_num(r.update_hist.quantile(0.99)),
        json_num(r.readonly_rt.mean()),
        json_num(r.readonly_hist.quantile(0.95)),
        json_num(r.readonly_hist.quantile(0.99)),
    )
}

/// Write a machine-readable summary of a figure run to
/// `results/BENCH_<name>.json`.
pub fn write_json(name: &str, results: &[RunResult]) -> std::io::Result<()> {
    let rows: Vec<String> = results.iter().map(result_json).collect();
    write_json_str(name, &format!("{{\"bench\":\"{name}\",\"results\":[{}]}}", rows.join(",")))
}

/// Write an arbitrary pre-rendered JSON document to
/// `results/BENCH_<name>.json` (for benches whose shape doesn't fit
/// [`write_json`], e.g. the T-2 writeset-cost ratio).
pub fn write_json_str(name: &str, json: &str) -> std::io::Result<()> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_models_have_sane_ratios() {
        let c = updint_cost(TimeScale::REAL_TIME);
        // §6.3: applying a writeset ≈ 20 % of executing the transaction.
        let exec_per_row = c.stmt_overhead_ms + c.write_ms;
        let apply_per_row = c.apply_write_ms;
        let ratio = apply_per_row / exec_per_row;
        assert!((0.15..0.30).contains(&ratio), "apply/exec ratio {ratio}");
    }

    #[test]
    fn thinning_keeps_endpoints() {
        std::env::set_var("SIREP_QUICK", "1");
        let t = thin(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.first(), Some(&1.0));
        assert_eq!(t.last(), Some(&5.0));
        std::env::remove_var("SIREP_QUICK");
    }

    #[test]
    fn result_json_is_well_formed() {
        let mut update_rt = sirep_common::OnlineStats::new();
        update_rt.record(12.0);
        let r = RunResult {
            system: "srca-rep-5".into(),
            workload: "tpcw".into(),
            target_tps: 50.0,
            achieved_tps: 48.7,
            update_rt,
            readonly_rt: sirep_common::OnlineStats::new(),
            update_hist: sirep_common::Histogram::new(),
            readonly_hist: sirep_common::Histogram::new(),
            committed: 100,
            forced_aborts: 3,
            given_up: 0,
            metrics: sirep_common::Metrics::new(),
            stages: Default::default(),
        };
        let json = result_json(&r);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"system\":\"srca-rep-5\""));
        assert!(json.contains("\"achieved_tps\":48.7000"));
        assert!(json.contains("\"update_rt_ms\":{\"mean\":12.0000"));
        // NaN quantiles of the empty read-only histogram must become null.
        assert!(!json.contains("NaN"));
        assert!(json.contains("\"stages\":{"));
    }

    #[test]
    fn clients_scale_with_load() {
        assert!(clients_for(25.0) >= 8);
        assert!(clients_for(150.0) >= 60);
        assert!(clients_for(10_000.0) <= 400);
    }
}
