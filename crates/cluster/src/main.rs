//! `sirep-cluster` — a real multi-process SI-Rep deployment.
//!
//! One binary, three roles, wired together by `scripts/multinode.sh`:
//!
//! - `seq`: the total-order sequencer service every middleware process
//!   connects to (the TCP transport's analogue of the GCS daemon);
//! - `node`: one middleware replica — an SI database plus the SRCA-Rep
//!   protocol — joined to the group over TCP and serving clients through
//!   the remote driver protocol, with a telemetry scrape endpoint on a
//!   second port (DESIGN.md §15);
//! - `workload` / `check`: a client that drives money-transfer
//!   transactions through the remote driver (tolerating the §5.4 failover
//!   errors), then proves the deployment converged: every node returns the
//!   identical table contents, balances conserve, and no 1-copy-SI audit
//!   violation was recorded anywhere;
//! - `report` / `audit`: scrape every node's telemetry endpoint and merge
//!   the results across processes — one cluster-wide report (JSON +
//!   Prometheus text), one clock-aligned Perfetto trace, and a re-run of
//!   the 1-copy-SI checks over the union of the scraped journals.
//!
//! Schema is deployment configuration: every `node` executes the same
//! `--schema` DDL locally at startup (DDL is not replicated through the
//! writeset path). A restarted node re-runs it against its empty database
//! and then recovers all data by replaying the sequencer's history.

use sirep_core::cluster::Transport;
use sirep_core::{
    audit_scraped_journals, perfetto_trace_json, shift_events, Cluster, ClusterConfig,
    ClusterReport,
};
use sirep_driver::remote::{NodeServer, RemoteConn, RemoteDriver, RemoteStatus};
use sirep_driver::telemetry::{
    scrape_clock_offset, scrape_journal, scrape_report, TelemetryServer,
};
use sirep_gcs::{query_seq_stats, Sequencer};
use sirep_sql::ExecResult;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: sirep-cluster <role> [flags]

roles:
  seq       --bind <addr>
  node      --seq <addr> --replica <k> --bind <addr> [--telemetry <addr>]
            [--schema <sql>]...
  workload  --nodes <a,b,c> [--ops <n>] [--accounts <n>] [--seed <n>] [--init]
            [--bench-json <path>] [--clients <c1,c2,..>] [--bench-secs <n>]
            [--read-mix <p1,p2,..>] [--bench-warmup-ms <n>]
  check     --nodes <a,b,c> [--accounts <n>] [--timeout-secs <n>]
  report    --telemetry <a,b,c> [--seq <addr>] --out <dir>
  audit     --telemetry <a,b,c>
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("seq") => cmd_seq(&args[1..]),
        Some("node") => cmd_node(&args[1..]),
        Some("workload") => cmd_workload(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// Flag parsing (tiny, dependency-free)
// ---------------------------------------------------------------------------

struct Flags {
    /// `(name, value)` pairs in order; boolean flags carry an empty value.
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String], booleans: &[&str]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            if booleans.contains(&name) {
                pairs.push((name.to_string(), String::new()));
            } else {
                let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                pairs.push((name.to_string(), v.clone()));
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn all(&self, name: &str) -> Vec<&str> {
        self.pairs.iter().filter(|(n, _)| n == name).map(|(_, v)| v.as_str()).collect()
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} expects a number, got {v:?}")),
        }
    }
}

fn fail(msg: &str) -> i32 {
    eprintln!("sirep-cluster: {msg}");
    1
}

fn park_forever() -> ! {
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

// ---------------------------------------------------------------------------
// seq / node
// ---------------------------------------------------------------------------

fn cmd_seq(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let bind = flags.get("bind").unwrap_or("127.0.0.1:0");
    let seq = match Sequencer::spawn(bind) {
        Ok(s) => s,
        Err(e) => return fail(&format!("sequencer bind {bind} failed: {e}")),
    };
    println!("READY {}", seq.addr());
    park_forever();
}

fn cmd_node(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let Some(seq) = flags.get("seq") else { return fail("node needs --seq <addr>") };
    let replica = match flags.num("replica", 0) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let bind = flags.get("bind").unwrap_or("127.0.0.1:0");

    let config = ClusterConfig::builder()
        .replicas(1)
        .transport(Transport::Tcp { sequencer: seq.to_string() })
        .first_replica(replica)
        .build();
    let cluster = match Cluster::try_new(config) {
        Ok(c) => Arc::new(c),
        Err(e) => return fail(&format!("joining the group via {seq} failed: {e}")),
    };
    for ddl in flags.all("schema") {
        if let Err(e) = cluster.execute_ddl(ddl) {
            return fail(&format!("schema statement {ddl:?} failed: {e}"));
        }
    }
    // Telemetry goes up before the READY line so a supervisor that has seen
    // READY can rely on the TELEMETRY line already being in the log.
    let tbind = flags.get("telemetry").unwrap_or("127.0.0.1:0");
    let telemetry = match TelemetryServer::spawn(tbind, Arc::clone(&cluster)) {
        Ok(s) => s,
        Err(e) => return fail(&format!("telemetry bind {tbind} failed: {e}")),
    };
    println!("TELEMETRY {}", telemetry.addr());
    let server = match NodeServer::spawn(bind, cluster, 0) {
        Ok(s) => s,
        Err(e) => return fail(&format!("client listener bind {bind} failed: {e}")),
    };
    println!("READY {}", server.addr());
    // Keep both servers alive for the life of the process.
    std::mem::forget(telemetry);
    park_forever();
}

// ---------------------------------------------------------------------------
// workload / check
// ---------------------------------------------------------------------------

/// splitmix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const INITIAL_BALANCE: i64 = 1_000;

fn split_nodes(flags: &Flags) -> Result<Vec<String>, String> {
    let Some(nodes) = flags.get("nodes") else { return Err("--nodes <a,b,c> is required".into()) };
    let list: Vec<String> =
        nodes.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
    if list.is_empty() {
        Err("--nodes is empty".into())
    } else {
        Ok(list)
    }
}

fn retryable(e: &sirep_common::DbError) -> bool {
    use sirep_common::DbError;
    match e {
        DbError::Aborted(r) => r.is_retryable(),
        // An in-doubt loss must NOT be blindly retried — the work may have
        // committed. Callers decide what an unknown outcome means for them.
        DbError::ConnectionLost { in_doubt } => !in_doubt,
        DbError::Unavailable => true,
        _ => false,
    }
}

/// Run `f` until it succeeds or fails non-retryably; rolls back between
/// attempts so a half-done transaction never leaks into the next one.
fn with_retries<T>(
    conn: &mut RemoteConn<'_>,
    attempts: usize,
    mut f: impl FnMut(&mut RemoteConn<'_>) -> Result<T, sirep_common::DbError>,
) -> Result<T, sirep_common::DbError> {
    let mut last = sirep_common::DbError::Unavailable;
    for _ in 0..attempts {
        match f(conn) {
            Ok(v) => return Ok(v),
            Err(e) if retryable(&e) => {
                last = e;
                let _ = conn.rollback();
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

fn cmd_workload(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["init"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let nodes = match split_nodes(&flags) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let (Ok(ops), Ok(accounts), Ok(seed)) =
        (flags.num("ops", 200), flags.num("accounts", 32), flags.num("seed", 1))
    else {
        return fail("bad numeric flag");
    };

    let driver = RemoteDriver::new(nodes.clone());
    let mut conn = match driver.connect() {
        Ok(c) => c,
        Err(e) => return fail(&format!("no node reachable: {e}")),
    };

    if flags.has("init") {
        if let Err(e) = conn.set_autocommit(true) {
            return fail(&format!("autocommit: {e}"));
        }
        for id in 0..accounts {
            let sql = format!("INSERT INTO accounts VALUES ({id}, {INITIAL_BALANCE})");
            let r = with_retries(&mut conn, 50, |c| match c.execute(&sql) {
                // The row is keyed, so a seed whose outcome was lost can be
                // resent: a duplicate means it did land the first time.
                Err(sirep_common::DbError::DuplicateKey(_)) => Ok(ExecResult::Affected(0)),
                Err(sirep_common::DbError::ConnectionLost { in_doubt: true }) => {
                    Err(sirep_common::DbError::ConnectionLost { in_doubt: false })
                }
                other => other,
            });
            if let Err(e) = r {
                return fail(&format!("seeding account {id}: {e}"));
            }
        }
        println!("seeded {accounts} accounts");
    }

    if let Err(e) = conn.set_autocommit(false) {
        return fail(&format!("autocommit off: {e}"));
    }
    let mut rng = Rng(seed);
    let mut committed = 0u64;
    let mut in_doubt = 0u64;
    for op in 0..ops {
        let from = rng.below(accounts);
        let to = (from + 1 + rng.below(accounts - 1)) % accounts;
        let amount = 1 + rng.below(20);
        let transfer = |c: &mut RemoteConn<'_>| {
            c.execute(&format!(
                "UPDATE accounts SET balance = balance - {amount} WHERE id = {from}"
            ))?;
            c.execute(&format!(
                "UPDATE accounts SET balance = balance + {amount} WHERE id = {to}"
            ))?;
            c.commit()
        };
        match with_retries(&mut conn, 50, transfer) {
            Ok(()) => committed += 1,
            // A transfer conserves the total whether or not it committed,
            // so an unresolved outcome skews nothing the check measures.
            Err(sirep_common::DbError::ConnectionLost { in_doubt: true }) => in_doubt += 1,
            Err(e) => return fail(&format!("transfer {op} failed: {e}")),
        }
    }
    println!(
        "workload done: {committed}/{ops} transfers committed, {in_doubt} in doubt, {} failovers",
        conn.failovers()
    );

    // Optional e2e bench sweep: committed-transfers/sec over client counts,
    // emitted as a BENCH_*.json row set (results/BENCH_e2e.json).
    if let Some(path) = flags.get("bench-json") {
        let clients_spec = flags.get("clients").unwrap_or("1,2,4");
        let Ok(secs) = flags.num("bench-secs", 2) else { return fail("bad --bench-secs") };
        let Ok(warmup_ms) = flags.num("bench-warmup-ms", 500) else {
            return fail("bad --bench-warmup-ms");
        };
        let client_counts: Result<Vec<usize>, _> = clients_spec
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::parse::<usize>)
            .collect();
        let Ok(client_counts) = client_counts else {
            return fail(&format!("--clients expects numbers, got {clients_spec:?}"));
        };
        let mix_spec = flags.get("read-mix").unwrap_or("0");
        let read_mixes: Result<Vec<u64>, _> = mix_spec
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::parse::<u64>)
            .collect();
        let read_mixes = match read_mixes {
            Ok(m) if m.iter().all(|&p| p <= 100) => m,
            _ => return fail(&format!("--read-mix expects percentages 0..=100, got {mix_spec:?}")),
        };
        drop(conn);
        match run_bench(&nodes, &client_counts, &read_mixes, secs, warmup_ms, accounts, seed) {
            Ok(rows) => {
                let json = bench_json(&rows, accounts, seed);
                if let Err(e) = json_lint(&json) {
                    return fail(&format!("internal: bench JSON does not parse: {e}"));
                }
                if let Err(e) = std::fs::write(path, json + "\n") {
                    return fail(&format!("writing {path}: {e}"));
                }
                println!("bench written to {path}");
            }
            Err(e) => return fail(&format!("bench: {e}")),
        }
    }
    0
}

// ---------------------------------------------------------------------------
// e2e bench (workload --bench-json)
// ---------------------------------------------------------------------------

/// Per-client result: (committed writes, committed reads, in_doubt,
/// per-commit latencies in ms). Only transactions started after the warmup
/// window are counted.
type ClientResult = Result<(u64, u64, u64, Vec<f64>), String>;

struct BenchRow {
    replicas: usize,
    clients: usize,
    read_pct: u64,
    secs: f64,
    committed: u64,
    reads: u64,
    in_doubt: u64,
    tps: f64,
    p50_ms: f64,
    p95_ms: f64,
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive money transfers (and, at nonzero read mix, single-row balance
/// lookups committed through the read-only fast path) from `clients`
/// concurrent connections for `secs` seconds per (client count, read mix)
/// pair; measures whole-transaction latency (statements + replicated or
/// local commit) and committed throughput. The first `warmup_ms` of each
/// round are driven but discarded, so connection setup, cache warming, and
/// the sequencer's batching ramp don't dilute the steady-state numbers.
fn run_bench(
    nodes: &[String],
    client_counts: &[usize],
    read_mixes: &[u64],
    secs: u64,
    warmup_ms: u64,
    accounts: u64,
    seed: u64,
) -> Result<Vec<BenchRow>, String> {
    let mut rows = Vec::new();
    for &clients in client_counts {
        if clients == 0 {
            return Err("--clients entries must be positive".into());
        }
        for &read_pct in read_mixes {
            let run = Duration::from_secs(secs.max(1));
            let warmup = Duration::from_millis(warmup_ms);
            // One shared clock for every client: measurement starts at
            // `measure_from` regardless of how long each connect took.
            let started = Instant::now();
            let measure_from = started + warmup;
            let deadline = measure_from + run;
            let results: Vec<ClientResult> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        scope.spawn(move || -> ClientResult {
                            let driver = RemoteDriver::new(nodes.to_vec());
                            let mut conn =
                                driver.connect().map_err(|e| format!("client {c}: {e}"))?;
                            conn.set_autocommit(false).map_err(|e| format!("client {c}: {e}"))?;
                            let mut rng = Rng(seed ^ (c as u64 + 1).wrapping_mul(0x9e37_79b9));
                            let (mut writes, mut reads, mut in_doubt) = (0u64, 0u64, 0u64);
                            let mut lat_ms = Vec::new();
                            while Instant::now() < deadline {
                                let from = rng.below(accounts);
                                let is_read = rng.below(100) < read_pct;
                                let t0 = Instant::now();
                                let outcome = if is_read {
                                    let read = |conn: &mut RemoteConn<'_>| {
                                        conn.execute(&format!(
                                            "SELECT balance FROM accounts WHERE id = {from}"
                                        ))?;
                                        conn.commit()
                                    };
                                    with_retries(&mut conn, 50, read)
                                } else {
                                    let to = (from + 1 + rng.below(accounts - 1)) % accounts;
                                    let amount = 1 + rng.below(20);
                                    let transfer = |conn: &mut RemoteConn<'_>| {
                                        conn.execute(&format!(
                                            "UPDATE accounts SET balance = balance - {amount} \
                                             WHERE id = {from}"
                                        ))?;
                                        conn.execute(&format!(
                                            "UPDATE accounts SET balance = balance + {amount} \
                                             WHERE id = {to}"
                                        ))?;
                                        conn.commit()
                                    };
                                    with_retries(&mut conn, 50, transfer)
                                };
                                let measured = t0 >= measure_from;
                                match outcome {
                                    Ok(()) if measured => {
                                        if is_read {
                                            reads += 1;
                                        } else {
                                            writes += 1;
                                        }
                                        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                                    }
                                    Ok(()) => {}
                                    Err(sirep_common::DbError::ConnectionLost {
                                        in_doubt: true,
                                    }) => {
                                        if measured {
                                            in_doubt += 1;
                                        }
                                    }
                                    Err(e) => return Err(format!("client {c}: {e}")),
                                }
                            }
                            Ok((writes, reads, in_doubt, lat_ms))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|_| Err("bench client panicked".into())))
                    .collect()
            });
            let elapsed = (started.elapsed().as_secs_f64() - warmup.as_secs_f64()).max(1e-9);
            let (mut writes, mut reads, mut in_doubt, mut lat_ms) = (0u64, 0u64, 0u64, Vec::new());
            for r in results {
                let (w, rd, d, mut l) = r?;
                writes += w;
                reads += rd;
                in_doubt += d;
                lat_ms.append(&mut l);
            }
            lat_ms.sort_by(f64::total_cmp);
            let committed = writes + reads;
            rows.push(BenchRow {
                replicas: nodes.len(),
                clients,
                read_pct,
                secs: elapsed,
                committed,
                reads,
                in_doubt,
                tps: committed as f64 / elapsed,
                p50_ms: quantile_ms(&lat_ms, 0.50),
                p95_ms: quantile_ms(&lat_ms, 0.95),
            });
            let last = rows.last().expect("just pushed");
            println!(
                "bench: {} clients x {} replicas, {}% reads: {} committed ({} reads) \
                 in {:.1}s = {:.1} tps (p50 {:.2} ms, p95 {:.2} ms, {} in doubt)",
                last.clients,
                last.replicas,
                last.read_pct,
                last.committed,
                last.reads,
                last.secs,
                last.tps,
                last.p50_ms,
                last.p95_ms,
                last.in_doubt
            );
        }
    }
    Ok(rows)
}

fn bench_json(rows: &[BenchRow], accounts: u64, seed: u64) -> String {
    let mut out = format!(
        "{{\"bench\":\"e2e_tcp\",\"quick\":false,\"accounts\":{accounts},\"seed\":{seed},\
         \"rows\":["
    );
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"replicas\":{},\"clients\":{},\"read_pct\":{},\"secs\":{:.2},\
             \"committed\":{},\"reads\":{},\"in_doubt\":{},\"tps\":{:.2},\
             \"p50_ms\":{:.3},\"p95_ms\":{:.3}}}",
            r.replicas,
            r.clients,
            r.read_pct,
            r.secs,
            r.committed,
            r.reads,
            r.in_doubt,
            r.tps,
            r.p50_ms,
            r.p95_ms
        ));
    }
    out.push_str("]}");
    out
}

fn node_status(addr: &str) -> Result<RemoteStatus, String> {
    let driver = RemoteDriver::new(vec![addr.to_string()]).connect_sweeps(1);
    let mut conn = driver.connect().map_err(|e| format!("{addr}: {e}"))?;
    conn.status().map_err(|e| format!("{addr}: {e}"))
}

fn read_table(addr: &str) -> Result<Vec<sirep_storage::Row>, String> {
    let driver = RemoteDriver::new(vec![addr.to_string()]).connect_sweeps(1);
    let mut conn = driver.connect().map_err(|e| format!("{addr}: {e}"))?;
    conn.set_autocommit(true).map_err(|e| format!("{addr}: {e}"))?;
    let r = conn
        .execute("SELECT id, balance FROM accounts ORDER BY id")
        .map_err(|e| format!("{addr}: {e}"))?;
    let ExecResult::Rows { rows, .. } = r else { return Err(format!("{addr}: not rows")) };
    Ok(rows)
}

fn cmd_check(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let nodes = match split_nodes(&flags) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let (Ok(accounts), Ok(timeout)) = (flags.num("accounts", 32), flags.num("timeout-secs", 60))
    else {
        return fail("bad numeric flag");
    };

    // Phase 1: convergence. Every node drains its queues and reaches the
    // same certification watermark.
    let deadline = Instant::now() + Duration::from_secs(timeout);
    let statuses = loop {
        let polled: Result<Vec<RemoteStatus>, String> =
            nodes.iter().map(|a| node_status(a)).collect();
        match polled {
            Ok(list) => {
                let drained = list.iter().all(|s| s.alive && s.queued == 0 && s.pending_local == 0);
                let watermark = list.iter().all(|s| s.last_validated == list[0].last_validated);
                if drained && watermark {
                    break list;
                }
            }
            Err(e) if Instant::now() >= deadline => return fail(&format!("unreachable: {e}")),
            Err(_) => {}
        }
        if Instant::now() >= deadline {
            return fail("nodes did not converge within the timeout");
        }
        std::thread::sleep(Duration::from_millis(100));
    };

    // Phase 2: zero 1-copy-SI audit violations anywhere.
    for (addr, s) in nodes.iter().zip(&statuses) {
        if s.audit_violations != 0 {
            return fail(&format!("{addr}: {} audit violations", s.audit_violations));
        }
    }

    // Phase 3: identical contents on every node, balances conserved.
    let tables: Result<Vec<Vec<sirep_storage::Row>>, String> =
        nodes.iter().map(|a| read_table(a)).collect();
    let tables = match tables {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    for (addr, t) in nodes.iter().zip(&tables) {
        if t.len() != accounts as usize {
            return fail(&format!("{addr}: {} rows, expected {accounts}", t.len()));
        }
        if *t != tables[0] {
            return fail(&format!("{addr} diverges from {}", nodes[0]));
        }
    }
    let sum: i64 = tables[0]
        .iter()
        .map(|row| match row.get(1) {
            Some(sirep_storage::Value::Int(n)) => *n,
            _ => 0,
        })
        .sum();
    let expected = accounts as i64 * INITIAL_BALANCE;
    if sum != expected {
        return fail(&format!("balance sum {sum} != {expected}: transfers lost or duplicated"));
    }

    println!(
        "check ok: {} nodes converged at watermark {}, {} rows identical, sum {}",
        nodes.len(),
        statuses[0].last_validated,
        accounts,
        sum
    );
    0
}

// ---------------------------------------------------------------------------
// report / audit — cross-process observability (DESIGN.md §15)
// ---------------------------------------------------------------------------

fn split_telemetry(flags: &Flags) -> Result<Vec<String>, String> {
    let Some(list) = flags.get("telemetry") else {
        return Err("--telemetry <a,b,c> is required".into());
    };
    let out: Vec<String> =
        list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
    if out.is_empty() {
        Err("--telemetry is empty".into())
    } else {
        Ok(out)
    }
}

/// Scrape journals from every node and audit the union. Restart journals
/// (same replica id twice) are separate entries and are checked per-journal;
/// the cross-journal verdict-agreement check still spans all of them.
fn cmd_audit(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let addrs = match split_telemetry(&flags) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let mut union = Vec::new();
    for addr in &addrs {
        match scrape_journal(addr) {
            Ok(journals) => union.extend(journals),
            Err(e) => return fail(&format!("scraping {addr}: {e}")),
        }
    }
    let events: usize = union.iter().map(|(_, ev)| ev.len()).sum();
    let violations = audit_scraped_journals(&union);
    if violations.is_empty() {
        println!("audit clean: {} journals, {events} events", union.len());
        0
    } else {
        for v in &violations {
            eprintln!("sirep-cluster: scraped-journal violation: {v}");
        }
        1
    }
}

/// One merged view of a live cluster: scrape every node's report, journal
/// and clock offset; write `<out>/report.json`, `<out>/report.prom` and a
/// single clock-aligned `<out>/trace.json` Perfetto trace.
fn cmd_report(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let addrs = match split_telemetry(&flags) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let Some(out_dir) = flags.get("out") else { return fail("report needs --out <dir>") };
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        return fail(&format!("creating {out_dir}: {e}"));
    }

    let mut merged: Option<ClusterReport> = None;
    let mut union = Vec::new();
    let mut offsets: Vec<(String, i64)> = Vec::new();
    for addr in &addrs {
        let report = match scrape_report(addr) {
            Ok(r) => r,
            Err(e) => return fail(&format!("scraping report from {addr}: {e}")),
        };
        merged = Some(match merged.take() {
            None => report,
            Some(mut m) => {
                m.absorb(report);
                m
            }
        });
        let offset_ns = match scrape_clock_offset(addr) {
            Ok(o) => o,
            Err(e) => return fail(&format!("clock probe via {addr}: {e}")),
        };
        offsets.push((addr.clone(), offset_ns));
        match scrape_journal(addr) {
            // Shift each journal into the sequencer's clock domain so one
            // trace file lines events from all processes up on one axis.
            Ok(journals) => {
                for (replica, mut events) in journals {
                    shift_events(&mut events, offset_ns);
                    union.push((replica, events));
                }
            }
            Err(e) => return fail(&format!("scraping journal from {addr}: {e}")),
        }
    }
    let merged = merged.expect("at least one telemetry addr");

    let scraped_violations = audit_scraped_journals(&union);
    let seq_stats = match flags.get("seq") {
        None => None,
        Some(seq) => match query_seq_stats(seq) {
            Ok(s) => Some(s),
            Err(e) => return fail(&format!("sequencer stats from {seq}: {e}")),
        },
    };

    let trace = perfetto_trace_json(&union);
    let prom = sirep_core::prometheus_text(&merged);
    let json = report_json(&addrs, &merged, &offsets, &scraped_violations, &seq_stats, &union);
    for (name, text) in [("report.json", &json), ("trace.json", &trace)] {
        if let Err(e) = json_lint(text) {
            return fail(&format!("internal: {name} does not parse: {e}"));
        }
    }
    for (name, text) in
        [("report.json", json.as_str()), ("trace.json", trace.as_str()), ("report.prom", &prom)]
    {
        let path = format!("{out_dir}/{name}");
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            return fail(&format!("writing {path}: {e}"));
        }
    }

    let events: usize = union.iter().map(|(_, ev)| ev.len()).sum();
    println!(
        "report ok: {} nodes merged, {} journals ({events} events), \
         {} online + {} scraped-audit violations -> {out_dir}",
        addrs.len(),
        union.len(),
        merged.violations.len(),
        scraped_violations.len()
    );
    0
}

fn report_json(
    addrs: &[String],
    merged: &ClusterReport,
    offsets: &[(String, i64)],
    scraped: &[sirep_core::AuditViolation],
    seq: &Option<sirep_gcs::SeqStats>,
    union: &[(sirep_common::ReplicaId, Vec<sirep_common::journal::Event>)],
) -> String {
    let mut out = String::from("{\"report\":\"cluster\"");
    out.push_str(&format!(",\"nodes\":{}", addrs.len()));

    out.push_str(",\"clock_offsets_ns\":[");
    for (i, (addr, off)) in offsets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"telemetry\":{},\"offset_ns\":{off}}}", json_string(addr)));
    }
    out.push(']');

    out.push_str(",\"counters\":{");
    for (i, (name, value)) in merged.metrics.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push('}');

    out.push_str(",\"transport\":{");
    for (i, (name, value)) in merged.transport.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    for (name, reading) in merged.transport.gauges() {
        out.push_str(&format!(
            ",\"{name}\":{},\"{name}_high_water\":{}",
            reading.current, reading.high_water
        ));
    }
    out.push('}');

    let journal_events: usize = union.iter().map(|(_, ev)| ev.len()).sum();
    out.push_str(&format!(",\"journals\":{},\"journal_events\":{journal_events}", union.len()));

    out.push_str(",\"online_violations\":[");
    for (i, v) in merged.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(&v.to_string()));
    }
    out.push(']');
    out.push_str(",\"scraped_audit_violations\":[");
    for (i, v) in scraped.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(&v.to_string()));
    }
    out.push(']');

    if let Some(s) = seq {
        let backlog: u64 = s.members.iter().map(|(_, depth)| *depth).sum();
        out.push_str(&format!(
            ",\"seq\":{{\"log_len\":{},\"next_seq\":{},\"view_id\":{},\"members\":{},\
             \"send_backlog\":{backlog}}}",
            s.log_len,
            s.next_seq,
            s.view_id,
            s.members.len()
        ));
    }

    out.push_str(",\"per_node\":[");
    for (i, n) in merged.per_node.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"replica\":{},\"alive\":{},\"queued\":{},\"pending_local\":{},\
             \"holes_open\":{}}}",
            n.replica.raw(),
            n.alive,
            n.queued,
            n.pending_local,
            n.holes_open
        ));
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON emit/validate helpers (dependency-free)
// ---------------------------------------------------------------------------

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recursive-descent JSON well-formedness check, so `report.json`,
/// `trace.json` and the bench output are guaranteed to parse before they are
/// written (check.sh asserts on this role's exit code, not on a JSON parser
/// it would have to ship).
fn json_lint(text: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", c as char, self.i))
            }
        }
        fn value(&mut self, depth: usize) -> Result<(), String> {
            if depth > 128 {
                return Err("nesting too deep".into());
            }
            self.ws();
            match self.peek() {
                Some(b'{') => {
                    self.i += 1;
                    self.ws();
                    if self.peek() == Some(b'}') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        self.ws();
                        self.string()?;
                        self.ws();
                        self.eat(b':')?;
                        self.value(depth + 1)?;
                        self.ws();
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b'}') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
                        }
                    }
                }
                Some(b'[') => {
                    self.i += 1;
                    self.ws();
                    if self.peek() == Some(b']') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        self.value(depth + 1)?;
                        self.ws();
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b']') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
                        }
                    }
                }
                Some(b'"') => self.string(),
                Some(b't') => self.lit("true"),
                Some(b'f') => self.lit("false"),
                Some(b'n') => self.lit("null"),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(format!("unexpected byte {} in value position", self.i)),
            }
        }
        fn lit(&mut self, word: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(())
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"')?;
            while let Some(c) = self.peek() {
                self.i += 1;
                match c {
                    b'"' => return Ok(()),
                    b'\\' => {
                        let esc = self.peek().ok_or("truncated escape")?;
                        self.i += 1;
                        match esc {
                            b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                            b'u' => {
                                for _ in 0..4 {
                                    let h = self.peek().ok_or("truncated \\u escape")?;
                                    if !h.is_ascii_hexdigit() {
                                        return Err(format!("bad \\u escape at byte {}", self.i));
                                    }
                                    self.i += 1;
                                }
                            }
                            _ => return Err(format!("bad escape at byte {}", self.i)),
                        }
                    }
                    c if c < 0x20 => {
                        return Err(format!("raw control byte in string at {}", self.i))
                    }
                    _ => {}
                }
            }
            Err("unterminated string".into())
        }
        fn number(&mut self) -> Result<(), String> {
            let start = self.i;
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            let mut digits = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                digits += 1;
            }
            if digits == 0 {
                return Err(format!("bad number at byte {start}"));
            }
            if self.peek() == Some(b'.') {
                self.i += 1;
                let mut frac = 0;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                    frac += 1;
                }
                if frac == 0 {
                    return Err(format!("bad fraction at byte {start}"));
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                self.i += 1;
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.i += 1;
                }
                let mut exp = 0;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                    exp += 1;
                }
                if exp == 0 {
                    return Err(format!("bad exponent at byte {start}"));
                }
            }
            Ok(())
        }
    }
    let mut p = P { b: text.as_bytes(), i: 0 };
    p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes after value at byte {}", p.i));
    }
    Ok(())
}
