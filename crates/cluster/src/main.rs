//! `sirep-cluster` — a real multi-process SI-Rep deployment.
//!
//! One binary, three roles, wired together by `scripts/multinode.sh`:
//!
//! - `seq`: the total-order sequencer service every middleware process
//!   connects to (the TCP transport's analogue of the GCS daemon);
//! - `node`: one middleware replica — an SI database plus the SRCA-Rep
//!   protocol — joined to the group over TCP and serving clients through
//!   the remote driver protocol;
//! - `workload` / `check`: a client that drives money-transfer
//!   transactions through the remote driver (tolerating the §5.4 failover
//!   errors), then proves the deployment converged: every node returns the
//!   identical table contents, balances conserve, and no 1-copy-SI audit
//!   violation was recorded anywhere.
//!
//! Schema is deployment configuration: every `node` executes the same
//! `--schema` DDL locally at startup (DDL is not replicated through the
//! writeset path). A restarted node re-runs it against its empty database
//! and then recovers all data by replaying the sequencer's history.

use sirep_core::cluster::Transport;
use sirep_core::{Cluster, ClusterConfig};
use sirep_driver::remote::{NodeServer, RemoteConn, RemoteDriver, RemoteStatus};
use sirep_gcs::Sequencer;
use sirep_sql::ExecResult;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: sirep-cluster <role> [flags]

roles:
  seq       --bind <addr>
  node      --seq <addr> --replica <k> --bind <addr> [--schema <sql>]...
  workload  --nodes <a,b,c> [--ops <n>] [--accounts <n>] [--seed <n>] [--init]
  check     --nodes <a,b,c> [--accounts <n>] [--timeout-secs <n>]
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("seq") => cmd_seq(&args[1..]),
        Some("node") => cmd_node(&args[1..]),
        Some("workload") => cmd_workload(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// Flag parsing (tiny, dependency-free)
// ---------------------------------------------------------------------------

struct Flags {
    /// `(name, value)` pairs in order; boolean flags carry an empty value.
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String], booleans: &[&str]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            if booleans.contains(&name) {
                pairs.push((name.to_string(), String::new()));
            } else {
                let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                pairs.push((name.to_string(), v.clone()));
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn all(&self, name: &str) -> Vec<&str> {
        self.pairs.iter().filter(|(n, _)| n == name).map(|(_, v)| v.as_str()).collect()
    }

    fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} expects a number, got {v:?}")),
        }
    }
}

fn fail(msg: &str) -> i32 {
    eprintln!("sirep-cluster: {msg}");
    1
}

fn park_forever() -> ! {
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

// ---------------------------------------------------------------------------
// seq / node
// ---------------------------------------------------------------------------

fn cmd_seq(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let bind = flags.get("bind").unwrap_or("127.0.0.1:0");
    let seq = match Sequencer::spawn(bind) {
        Ok(s) => s,
        Err(e) => return fail(&format!("sequencer bind {bind} failed: {e}")),
    };
    println!("READY {}", seq.addr());
    park_forever();
}

fn cmd_node(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let Some(seq) = flags.get("seq") else { return fail("node needs --seq <addr>") };
    let replica = match flags.num("replica", 0) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let bind = flags.get("bind").unwrap_or("127.0.0.1:0");

    let config = ClusterConfig::builder()
        .replicas(1)
        .transport(Transport::Tcp { sequencer: seq.to_string() })
        .first_replica(replica)
        .build();
    let cluster = match Cluster::try_new(config) {
        Ok(c) => Arc::new(c),
        Err(e) => return fail(&format!("joining the group via {seq} failed: {e}")),
    };
    for ddl in flags.all("schema") {
        if let Err(e) = cluster.execute_ddl(ddl) {
            return fail(&format!("schema statement {ddl:?} failed: {e}"));
        }
    }
    let server = match NodeServer::spawn(bind, cluster, 0) {
        Ok(s) => s,
        Err(e) => return fail(&format!("client listener bind {bind} failed: {e}")),
    };
    println!("READY {}", server.addr());
    park_forever();
}

// ---------------------------------------------------------------------------
// workload / check
// ---------------------------------------------------------------------------

/// splitmix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const INITIAL_BALANCE: i64 = 1_000;

fn split_nodes(flags: &Flags) -> Result<Vec<String>, String> {
    let Some(nodes) = flags.get("nodes") else { return Err("--nodes <a,b,c> is required".into()) };
    let list: Vec<String> =
        nodes.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
    if list.is_empty() {
        Err("--nodes is empty".into())
    } else {
        Ok(list)
    }
}

fn retryable(e: &sirep_common::DbError) -> bool {
    use sirep_common::DbError;
    match e {
        DbError::Aborted(r) => r.is_retryable(),
        // An in-doubt loss must NOT be blindly retried — the work may have
        // committed. Callers decide what an unknown outcome means for them.
        DbError::ConnectionLost { in_doubt } => !in_doubt,
        DbError::Unavailable => true,
        _ => false,
    }
}

/// Run `f` until it succeeds or fails non-retryably; rolls back between
/// attempts so a half-done transaction never leaks into the next one.
fn with_retries<T>(
    conn: &mut RemoteConn<'_>,
    attempts: usize,
    mut f: impl FnMut(&mut RemoteConn<'_>) -> Result<T, sirep_common::DbError>,
) -> Result<T, sirep_common::DbError> {
    let mut last = sirep_common::DbError::Unavailable;
    for _ in 0..attempts {
        match f(conn) {
            Ok(v) => return Ok(v),
            Err(e) if retryable(&e) => {
                last = e;
                let _ = conn.rollback();
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

fn cmd_workload(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["init"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let nodes = match split_nodes(&flags) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let (Ok(ops), Ok(accounts), Ok(seed)) =
        (flags.num("ops", 200), flags.num("accounts", 32), flags.num("seed", 1))
    else {
        return fail("bad numeric flag");
    };

    let driver = RemoteDriver::new(nodes);
    let mut conn = match driver.connect() {
        Ok(c) => c,
        Err(e) => return fail(&format!("no node reachable: {e}")),
    };

    if flags.has("init") {
        if let Err(e) = conn.set_autocommit(true) {
            return fail(&format!("autocommit: {e}"));
        }
        for id in 0..accounts {
            let sql = format!("INSERT INTO accounts VALUES ({id}, {INITIAL_BALANCE})");
            let r = with_retries(&mut conn, 50, |c| match c.execute(&sql) {
                // The row is keyed, so a seed whose outcome was lost can be
                // resent: a duplicate means it did land the first time.
                Err(sirep_common::DbError::DuplicateKey(_)) => Ok(ExecResult::Affected(0)),
                Err(sirep_common::DbError::ConnectionLost { in_doubt: true }) => {
                    Err(sirep_common::DbError::ConnectionLost { in_doubt: false })
                }
                other => other,
            });
            if let Err(e) = r {
                return fail(&format!("seeding account {id}: {e}"));
            }
        }
        println!("seeded {accounts} accounts");
    }

    if let Err(e) = conn.set_autocommit(false) {
        return fail(&format!("autocommit off: {e}"));
    }
    let mut rng = Rng(seed);
    let mut committed = 0u64;
    let mut in_doubt = 0u64;
    for op in 0..ops {
        let from = rng.below(accounts);
        let to = (from + 1 + rng.below(accounts - 1)) % accounts;
        let amount = 1 + rng.below(20);
        let transfer = |c: &mut RemoteConn<'_>| {
            c.execute(&format!(
                "UPDATE accounts SET balance = balance - {amount} WHERE id = {from}"
            ))?;
            c.execute(&format!(
                "UPDATE accounts SET balance = balance + {amount} WHERE id = {to}"
            ))?;
            c.commit()
        };
        match with_retries(&mut conn, 50, transfer) {
            Ok(()) => committed += 1,
            // A transfer conserves the total whether or not it committed,
            // so an unresolved outcome skews nothing the check measures.
            Err(sirep_common::DbError::ConnectionLost { in_doubt: true }) => in_doubt += 1,
            Err(e) => return fail(&format!("transfer {op} failed: {e}")),
        }
    }
    println!(
        "workload done: {committed}/{ops} transfers committed, {in_doubt} in doubt, {} failovers",
        conn.failovers()
    );
    0
}

fn node_status(addr: &str) -> Result<RemoteStatus, String> {
    let driver = RemoteDriver::new(vec![addr.to_string()]).connect_sweeps(1);
    let mut conn = driver.connect().map_err(|e| format!("{addr}: {e}"))?;
    conn.status().map_err(|e| format!("{addr}: {e}"))
}

fn read_table(addr: &str) -> Result<Vec<sirep_storage::Row>, String> {
    let driver = RemoteDriver::new(vec![addr.to_string()]).connect_sweeps(1);
    let mut conn = driver.connect().map_err(|e| format!("{addr}: {e}"))?;
    conn.set_autocommit(true).map_err(|e| format!("{addr}: {e}"))?;
    let r = conn
        .execute("SELECT id, balance FROM accounts ORDER BY id")
        .map_err(|e| format!("{addr}: {e}"))?;
    let ExecResult::Rows { rows, .. } = r else { return Err(format!("{addr}: not rows")) };
    Ok(rows)
}

fn cmd_check(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let nodes = match split_nodes(&flags) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let (Ok(accounts), Ok(timeout)) = (flags.num("accounts", 32), flags.num("timeout-secs", 60))
    else {
        return fail("bad numeric flag");
    };

    // Phase 1: convergence. Every node drains its queues and reaches the
    // same certification watermark.
    let deadline = Instant::now() + Duration::from_secs(timeout);
    let statuses = loop {
        let polled: Result<Vec<RemoteStatus>, String> =
            nodes.iter().map(|a| node_status(a)).collect();
        match polled {
            Ok(list) => {
                let drained = list.iter().all(|s| s.alive && s.queued == 0 && s.pending_local == 0);
                let watermark = list.iter().all(|s| s.last_validated == list[0].last_validated);
                if drained && watermark {
                    break list;
                }
            }
            Err(e) if Instant::now() >= deadline => return fail(&format!("unreachable: {e}")),
            Err(_) => {}
        }
        if Instant::now() >= deadline {
            return fail("nodes did not converge within the timeout");
        }
        std::thread::sleep(Duration::from_millis(100));
    };

    // Phase 2: zero 1-copy-SI audit violations anywhere.
    for (addr, s) in nodes.iter().zip(&statuses) {
        if s.audit_violations != 0 {
            return fail(&format!("{addr}: {} audit violations", s.audit_violations));
        }
    }

    // Phase 3: identical contents on every node, balances conserved.
    let tables: Result<Vec<Vec<sirep_storage::Row>>, String> =
        nodes.iter().map(|a| read_table(a)).collect();
    let tables = match tables {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    for (addr, t) in nodes.iter().zip(&tables) {
        if t.len() != accounts as usize {
            return fail(&format!("{addr}: {} rows, expected {accounts}", t.len()));
        }
        if *t != tables[0] {
            return fail(&format!("{addr} diverges from {}", nodes[0]));
        }
    }
    let sum: i64 = tables[0]
        .iter()
        .map(|row| match row.get(1) {
            Some(sirep_storage::Value::Int(n)) => *n,
            _ => 0,
        })
        .sum();
    let expected = accounts as i64 * INITIAL_BALANCE;
    if sum != expected {
        return fail(&format!("balance sum {sum} != {expected}: transfers lost or duplicated"));
    }

    println!(
        "check ok: {} nodes converged at watermark {}, {} rows identical, sum {}",
        nodes.len(),
        statuses[0].last_validated,
        accounts,
        sum
    );
    0
}
