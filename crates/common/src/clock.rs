//! Model-time scaling.
//!
//! The paper's experiments ran against PostgreSQL on 2005-era disks: typical
//! transaction service times of 5–300 ms and offered loads of 5–200
//! transactions per second. Re-running those sweeps in real time would take
//! hours. Instead, every injected service time in this workspace (storage
//! cost model, network links, client think times) flows through a
//! [`TimeScale`], which maps *model milliseconds* to wall-clock time with a
//! configurable compression factor.
//!
//! Queueing behaviour — utilization, saturation points, relative response
//! times — is invariant under uniform time scaling as long as every duration
//! in the system is scaled by the same factor, which is what routing them all
//! through one `TimeScale` guarantees.

use std::time::{Duration, Instant};

/// Maps model time (the paper's milliseconds) to wall time.
#[derive(Debug, Clone, Copy)]
pub struct TimeScale {
    /// Wall nanoseconds per model millisecond.
    wall_ns_per_model_ms: u64,
}

impl TimeScale {
    /// Real time: 1 model ms = 1 wall ms.
    pub const REAL_TIME: TimeScale = TimeScale { wall_ns_per_model_ms: 1_000_000 };

    /// The default used by the figure harnesses: 20x compression
    /// (1 model ms = 50 µs wall).
    pub const BENCH_DEFAULT: TimeScale = TimeScale { wall_ns_per_model_ms: 50_000 };

    /// A very aggressive compression for unit tests (1 model ms = 2 µs).
    pub const TEST_FAST: TimeScale = TimeScale { wall_ns_per_model_ms: 2_000 };

    /// Custom compression factor: `factor` model milliseconds elapse per
    /// wall millisecond. `TimeScale::compressed(20.0)` is 20x faster than
    /// real time.
    pub fn compressed(factor: f64) -> TimeScale {
        assert!(factor > 0.0, "compression factor must be positive");
        TimeScale { wall_ns_per_model_ms: (1_000_000.0 / factor).max(1.0) as u64 }
    }

    /// Convert a model duration in (fractional) milliseconds to wall time.
    pub fn wall(&self, model_ms: f64) -> Duration {
        debug_assert!(model_ms >= 0.0);
        Duration::from_nanos((model_ms * self.wall_ns_per_model_ms as f64) as u64)
    }

    /// Convert an elapsed wall duration back to model milliseconds (used
    /// when reporting measured response times in the paper's units).
    pub fn model_ms(&self, wall: Duration) -> f64 {
        wall.as_nanos() as f64 / self.wall_ns_per_model_ms as f64
    }

    /// Sleep for `model_ms` model milliseconds of simulated work.
    pub fn sleep(&self, model_ms: f64) {
        precise_sleep(self.wall(model_ms));
    }
}

impl Default for TimeScale {
    fn default() -> Self {
        TimeScale::BENCH_DEFAULT
    }
}

/// Sleep with good *mean* accuracy and without burning CPU.
///
/// `thread::sleep` on Linux overshoots by ~60–110 µs. Spinning away the
/// error would be precise but monopolizes CPUs when hundreds of simulated
/// clients sleep concurrently (benchmarks routinely run on small machines —
/// CI boxes with one core). Instead we *compensate*: sleep for the target
/// minus the typical overshoot. Individual sleeps jitter by tens of
/// microseconds, but the mean service time — which is what determines
/// utilization and queueing, and therefore the shape of every figure —
/// matches the request. Only very short waits (≤25 µs) spin.
pub fn precise_sleep(d: Duration) {
    /// Typical `thread::sleep` overshoot on Linux (measured 60–110 µs).
    const OVERSHOOT: Duration = Duration::from_micros(80);
    const SPIN_MAX: Duration = Duration::from_micros(25);
    if d.is_zero() {
        return;
    }
    if d <= SPIN_MAX {
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
        return;
    }
    match d.checked_sub(OVERSHOOT) {
        Some(target) if !target.is_zero() => std::thread::sleep(target),
        // 25 µs < d ≤ 80 µs: a zero-length sleep undershoots and a real one
        // overshoots; yield once, splitting the difference cheaply.
        _ => std::thread::yield_now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_roundtrip() {
        let ts = TimeScale::compressed(20.0);
        let wall = ts.wall(100.0); // 100 model ms at 20x = 5 wall ms
        assert_eq!(wall, Duration::from_millis(5));
        let back = ts.model_ms(wall);
        assert!((back - 100.0).abs() < 1e-6, "got {back}");
    }

    #[test]
    fn real_time_is_identity() {
        let ts = TimeScale::REAL_TIME;
        assert_eq!(ts.wall(3.0), Duration::from_millis(3));
    }

    #[test]
    fn precise_sleep_mean_is_accurate() {
        // Individual sleeps jitter; the mean must land near the target.
        let d = Duration::from_micros(400);
        let start = Instant::now();
        const N: u32 = 50;
        for _ in 0..N {
            precise_sleep(d);
        }
        let mean = start.elapsed() / N;
        assert!(mean >= d / 2, "mean sleep far too short: {mean:?}");
        assert!(mean < d * 3, "mean sleep far too long: {mean:?}");
    }

    #[test]
    fn zero_sleep_returns_immediately() {
        precise_sleep(Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_rejected() {
        let _ = TimeScale::compressed(0.0);
    }
}
