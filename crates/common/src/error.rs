//! The failure taxonomy shared by the storage engine, the replication
//! middleware and the client driver.
//!
//! The paper distinguishes several abort causes that have different protocol
//! consequences:
//!
//! - a **version-check failure** inside the database (first-updater-wins,
//!   §4: "If the last committed version of x was created by a concurrent
//!   transaction, Ti aborts immediately") — surfaced to the client as a
//!   serialization failure, just like PostgreSQL's error 40001;
//! - a **database deadlock** between a local transaction and an applying
//!   writeset (§4.2) — remote writesets are *retried* by the middleware,
//!   local transactions are aborted;
//! - a **validation failure** at the middleware (local or global
//!   certification, Fig. 4 steps I.2.d and II.2);
//! - a **crash** of the middleware/database pair a client was connected to
//!   (§5.4), which the driver either masks (failover) or surfaces as a
//!   "transaction lost, safe to retry" exception.

use std::fmt;

/// Why a transaction was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The database-internal version check failed: a concurrent transaction
    /// committed a newer version of a tuple this transaction wrote.
    SerializationFailure,
    /// The database lock manager found a wait-for cycle and chose this
    /// transaction as the victim.
    Deadlock,
    /// Middleware certification failed: the writeset intersects the writeset
    /// of a concurrent transaction that validated first.
    ValidationFailure,
    /// The client asked for a rollback.
    UserRequested,
    /// The replica executing the transaction crashed before the commit
    /// request was processed; the transaction is lost but the connection
    /// failed over (paper §5.4 case 2).
    ReplicaCrashed,
    /// The middleware shut the transaction down (e.g. replica shutdown).
    Shutdown,
}

impl AbortReason {
    /// Whether a client can safely resubmit the same transaction.
    ///
    /// Everything except an explicit user rollback is transient from the
    /// application's point of view.
    pub fn is_retryable(self) -> bool {
        !matches!(self, AbortReason::UserRequested)
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::SerializationFailure => {
                "could not serialize access due to concurrent update"
            }
            AbortReason::Deadlock => "deadlock detected",
            AbortReason::ValidationFailure => "writeset validation failed",
            AbortReason::UserRequested => "transaction rolled back by user",
            AbortReason::ReplicaCrashed => "replica crashed before commit",
            AbortReason::Shutdown => "replica shutting down",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the storage engine and everything stacked on top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The transaction was aborted; it no longer exists in the engine.
    Aborted(AbortReason),
    /// A statement referenced an unknown table.
    UnknownTable(String),
    /// A statement referenced an unknown column.
    UnknownColumn(String),
    /// A value had the wrong type for its column.
    TypeMismatch { column: String, expected: &'static str },
    /// An INSERT collided with an existing visible row with the same key.
    DuplicateKey(String),
    /// The transaction handle is unknown (already terminated, or bogus).
    NoSuchTransaction,
    /// SQL text failed to parse.
    Parse(String),
    /// The operation is not supported by this engine.
    Unsupported(String),
    /// The connection to the middleware is gone and failover could not mask
    /// the failure transparently; `committed` reports the resolved outcome
    /// of an in-doubt commit when it is known.
    ConnectionLost { in_doubt: bool },
    /// Every replica is unreachable (or kept dying) and bounded failover
    /// retries were exhausted while an in-doubt outcome was unresolved.
    /// Unlike [`DbError::ConnectionLost`] this is terminal for the driver:
    /// the commit may or may not have happened and nobody is left to ask.
    Unavailable,
    /// Internal invariant violation — always a bug, never expected.
    Internal(String),
}

impl DbError {
    /// Shorthand for the common "aborted due to write-write conflict" error.
    pub fn serialization_failure() -> Self {
        DbError::Aborted(AbortReason::SerializationFailure)
    }

    /// True if this error means the transaction was aborted (as opposed to a
    /// statement-level error that leaves the transaction usable).
    pub fn is_abort(&self) -> bool {
        matches!(self, DbError::Aborted(_))
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Aborted(r) => write!(f, "transaction aborted: {r}"),
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::TypeMismatch { column, expected } => {
                write!(f, "type mismatch for column {column}: expected {expected}")
            }
            DbError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            DbError::NoSuchTransaction => f.write_str("no such transaction"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DbError::ConnectionLost { in_doubt } => {
                write!(f, "connection lost (in-doubt: {in_doubt})")
            }
            DbError::Unavailable => {
                f.write_str("service unavailable: all replicas down, retries exhausted")
            }
            DbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability() {
        assert!(AbortReason::SerializationFailure.is_retryable());
        assert!(AbortReason::Deadlock.is_retryable());
        assert!(AbortReason::ValidationFailure.is_retryable());
        assert!(AbortReason::ReplicaCrashed.is_retryable());
        assert!(!AbortReason::UserRequested.is_retryable());
    }

    #[test]
    fn abort_classification() {
        assert!(DbError::serialization_failure().is_abort());
        assert!(!DbError::UnknownTable("t".into()).is_abort());
    }

    #[test]
    fn display_is_informative() {
        let e = DbError::Aborted(AbortReason::Deadlock);
        assert!(e.to_string().contains("deadlock"));
        let e = DbError::TypeMismatch { column: "price".into(), expected: "float" };
        assert!(e.to_string().contains("price"));
    }
}
