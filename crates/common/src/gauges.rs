//! Gauge telemetry: point-in-time protocol state with high-water marks.
//!
//! Counters ([`crate::metrics`]) only ever go up; the quantities that drive
//! the paper's §4 adjustments — `tocommit` queue depth, `ws_list` length,
//! open commit-order holes, applier backlog, GCS in-flight messages — go up
//! *and down*, and what matters for capacity planning is both the current
//! value and the worst it ever got.  A [`Gauge`] tracks exactly that pair
//! with two relaxed atomics; [`GaugeReading`] is the plain `Copy` snapshot
//! that reports embed, and [`GaugeSnapshot`] bundles one reading per
//! protocol gauge for `NodeStatus`.
//!
//! Like the rest of the observability layer this is feature-gated: without
//! the default-on `trace` feature [`Gauge`] is a zero-sized no-op and every
//! update site compiles away, while the snapshot types (plain data) stay
//! real so report structures keep their shape.

#[cfg(feature = "trace")]
use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time reading: the current value and the high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeReading {
    pub current: u64,
    pub high_water: u64,
}

/// One reading per protocol gauge, as embedded in `NodeStatus`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Validated writesets waiting in the `tocommit` queue.
    pub tocommit_depth: GaugeReading,
    /// Entries retained in the certification `ws_list`.
    pub ws_list_len: GaugeReading,
    /// Open commit-order holes (validated-but-uncommitted below the commit
    /// frontier — what adjustment 3 makes local begins wait out).
    pub open_holes: GaugeReading,
    /// Queued writesets not yet picked up by an applier thread.
    pub applier_backlog: GaugeReading,
    /// Queued writesets that are *eligible* (no conflicting predecessor)
    /// but not yet claimed by an applier — the tocommit queue's ready set.
    pub ready_len: GaugeReading,
    /// Distinct (table, key) pairs in the certification last-certifier
    /// index — the memory footprint of key-indexed validation.
    pub cert_index_keys: GaugeReading,
    /// Messages enqueued in the GCS but not yet received by their member.
    pub gcs_in_flight: GaugeReading,
    /// Faults injected by the seeded chaos plan (monotone: current equals
    /// the total injected, high-water mirrors it).
    pub faults_injected: GaugeReading,
    /// Members currently isolated by a network partition (current), and the
    /// widest partition ever induced (high-water).
    pub partitioned: GaugeReading,
}

impl GaugeSnapshot {
    /// Stable (name, reading) pairs for renderers (Prometheus, tables).
    pub fn fields(&self) -> [(&'static str, GaugeReading); 9] {
        [
            ("tocommit_depth", self.tocommit_depth),
            ("ws_list_len", self.ws_list_len),
            ("open_holes", self.open_holes),
            ("applier_backlog", self.applier_backlog),
            ("ready_len", self.ready_len),
            ("cert_index_keys", self.cert_index_keys),
            ("gcs_in_flight", self.gcs_in_flight),
            ("faults_injected", self.faults_injected),
            ("partitioned", self.partitioned),
        ]
    }

    /// Fold another snapshot in: currents add, high-waters take the max —
    /// the cluster-wide rollup used by `ClusterReport`.
    pub fn absorb(&mut self, other: &GaugeSnapshot) {
        for (mine, theirs) in [
            (&mut self.tocommit_depth, other.tocommit_depth),
            (&mut self.ws_list_len, other.ws_list_len),
            (&mut self.open_holes, other.open_holes),
            (&mut self.applier_backlog, other.applier_backlog),
            (&mut self.ready_len, other.ready_len),
            (&mut self.cert_index_keys, other.cert_index_keys),
            (&mut self.gcs_in_flight, other.gcs_in_flight),
            (&mut self.faults_injected, other.faults_injected),
            (&mut self.partitioned, other.partitioned),
        ] {
            mine.current += theirs.current;
            mine.high_water = mine.high_water.max(theirs.high_water);
        }
    }
}

// ======================================================================
// Wire forms (telemetry scrapes). Snapshot types are plain data in both
// feature configurations, so these impls are unconditional.
// ======================================================================

use crate::wire::{Wire, WireError, WireReader};

impl Wire for GaugeReading {
    fn encode(&self, out: &mut Vec<u8>) {
        self.current.encode(out);
        self.high_water.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(GaugeReading { current: u64::decode(r)?, high_water: u64::decode(r)? })
    }
}

/// Fixed-arity encoding in `fields()` order — adding a gauge changes the
/// frame layout, which the telemetry round-trip tests pin on purpose.
impl Wire for GaugeSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        for (_, reading) in self.fields() {
            reading.encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(GaugeSnapshot {
            tocommit_depth: GaugeReading::decode(r)?,
            ws_list_len: GaugeReading::decode(r)?,
            open_holes: GaugeReading::decode(r)?,
            applier_backlog: GaugeReading::decode(r)?,
            ready_len: GaugeReading::decode(r)?,
            cert_index_keys: GaugeReading::decode(r)?,
            gcs_in_flight: GaugeReading::decode(r)?,
            faults_injected: GaugeReading::decode(r)?,
            partitioned: GaugeReading::decode(r)?,
        })
    }
}

// ======================================================================
// Real implementation (`trace` feature on — the default).
// ======================================================================

/// A current-value gauge that remembers its high-water mark.
#[cfg(feature = "trace")]
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high: AtomicU64,
}

#[cfg(feature = "trace")]
impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the current value (and bump the high-water mark if exceeded).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Add `n` to the current value.
    #[inline]
    pub fn add(&self, n: u64) {
        let v = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at zero (concurrent decrements may race a
    /// reset; a gauge must never wrap).
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }

    #[inline]
    pub fn read(&self) -> GaugeReading {
        GaugeReading {
            current: self.value.load(Ordering::Relaxed),
            high_water: self.high.load(Ordering::Relaxed),
        }
    }
}

// ======================================================================
// No-op implementation (`trace` feature off): same API, zero cost.
// ======================================================================

/// No-op gauge: the `trace` feature is off, updates compile away.
#[cfg(not(feature = "trace"))]
#[derive(Debug, Default)]
pub struct Gauge;

#[cfg(not(feature = "trace"))]
impl Gauge {
    #[inline(always)]
    pub fn new() -> Gauge {
        Gauge
    }
    #[inline(always)]
    pub fn set(&self, _v: u64) {}
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    #[inline(always)]
    pub fn sub(&self, _n: u64) {}
    #[inline(always)]
    pub fn read(&self) -> GaugeReading {
        GaugeReading::default()
    }
}

/// The per-replica protocol gauges, updated at mutation sites in the
/// replication core and snapshotted into `NodeStatus`.
#[derive(Debug, Default)]
pub struct ProtocolGauges {
    pub tocommit_depth: Gauge,
    pub ws_list_len: Gauge,
    pub open_holes: Gauge,
    pub applier_backlog: Gauge,
    pub ready_len: Gauge,
    pub cert_index_keys: Gauge,
}

impl ProtocolGauges {
    pub fn new() -> ProtocolGauges {
        ProtocolGauges::default()
    }

    /// Snapshot all six local gauges plus the externally-tracked GCS
    /// in-flight reading into one bundle.  The fault gauges are group-wide
    /// (owned by the GCS fault plan, not the node) and default to zero here;
    /// the cluster rollup fills them in from the group.
    pub fn snapshot(&self, gcs_in_flight: GaugeReading) -> GaugeSnapshot {
        GaugeSnapshot {
            tocommit_depth: self.tocommit_depth.read(),
            ws_list_len: self.ws_list_len.read(),
            open_holes: self.open_holes.read(),
            applier_backlog: self.applier_backlog.read(),
            ready_len: self.ready_len.read(),
            cert_index_keys: self.cert_index_keys.read(),
            gcs_in_flight,
            ..GaugeSnapshot::default()
        }
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_current_and_high_water() {
        let g = Gauge::new();
        g.set(5);
        g.set(2);
        assert_eq!(g.read(), GaugeReading { current: 2, high_water: 5 });
        g.add(10);
        assert_eq!(g.read(), GaugeReading { current: 12, high_water: 12 });
        g.sub(7);
        assert_eq!(g.read(), GaugeReading { current: 5, high_water: 12 });
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::new();
        g.add(1);
        g.sub(5);
        assert_eq!(g.read().current, 0);
    }

    #[test]
    fn snapshot_absorb_sums_currents_and_maxes_high_water() {
        let gauges = ProtocolGauges::new();
        gauges.tocommit_depth.set(3);
        gauges.open_holes.set(1);
        let mut a = gauges.snapshot(GaugeReading { current: 2, high_water: 9 });
        let b = gauges.snapshot(GaugeReading { current: 4, high_water: 4 });
        a.absorb(&b);
        assert_eq!(a.tocommit_depth, GaugeReading { current: 6, high_water: 3 });
        assert_eq!(a.gcs_in_flight, GaugeReading { current: 6, high_water: 9 });
        assert_eq!(a.fields()[2].0, "open_holes");
    }

    #[test]
    fn wire_round_trips() {
        let gauges = ProtocolGauges::new();
        gauges.tocommit_depth.set(3);
        gauges.ws_list_len.set(77);
        gauges.open_holes.set(1);
        let snap = gauges.snapshot(GaugeReading { current: 2, high_water: 9 });
        let bytes = snap.to_wire();
        let back = GaugeSnapshot::from_wire(&bytes).expect("decode");
        assert_eq!(back, snap);
        assert_eq!(back.to_wire(), bytes);
        let r = GaugeReading { current: 4, high_water: 1 << 40 };
        assert_eq!(GaugeReading::from_wire(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn wire_truncation_rejected() {
        let bytes = GaugeSnapshot::default().to_wire();
        for cut in 0..bytes.len() {
            assert!(GaugeSnapshot::from_wire(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
