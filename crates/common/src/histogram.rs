//! A log-bucketed latency histogram.
//!
//! Used by the load generator to report percentiles alongside the mean
//! response times the paper plots. Buckets grow geometrically (~7.2 % per
//! bucket, 64 buckets per decade), bounding the relative quantile error to
//! under one bucket width while keeping the footprint fixed.

/// Fixed-footprint histogram over positive values (e.g. milliseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// bucket i covers [BASE * GROWTH^i, BASE * GROWTH^(i+1))
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

const BASE: f64 = 1e-3; // smallest tracked value
const BUCKETS: usize = 448; // covers 1e-3 .. ~1e4 with 64 buckets/decade
const GROWTH: f64 = 1.0366329284377976; // 10^(1/64)

enum Bucket {
    Under,
    In(usize),
    Over,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], underflow: 0, overflow: 0, total: 0 }
    }

    fn bucket_of(value: f64) -> Bucket {
        if value < BASE {
            return Bucket::Under;
        }
        let idx = (value / BASE).log(GROWTH).floor() as usize;
        if idx >= BUCKETS {
            Bucket::Over
        } else {
            Bucket::In(idx)
        }
    }

    /// Lower bound of bucket `i`.
    fn bucket_low(i: usize) -> f64 {
        BASE * GROWTH.powi(i as i32)
    }

    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite() && value >= 0.0);
        self.total += 1;
        match Self::bucket_of(value) {
            Bucket::In(i) => self.counts[i] += 1,
            Bucket::Under => self.underflow += 1,
            Bucket::Over => self.overflow += 1,
        }
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples below [`BASE`] (reported as 0 by quantiles).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the tracked range (~1e4). Quantiles landing here
    /// report the range's upper edge — check this counter to know a tail
    /// quantile is a lower bound rather than an estimate.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile `q` in [0, 1]; returns the lower edge of the
    /// bucket containing the q-th sample. NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return f64::NAN;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= target {
            return 0.0;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_low(i);
            }
        }
        // The target lands among overflow samples: report the upper edge of
        // the tracked range (the true value is at least this large).
        Self::bucket_low(BUCKETS)
    }

    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

// ======================================================================
// Wire form (telemetry scrapes).
// ======================================================================

use crate::wire::{Wire, WireError, WireReader};

/// Sparse canonical encoding: `(bucket, count)` pairs for the non-zero
/// buckets in strictly increasing bucket order, then the underflow,
/// overflow and total counters. Decode re-derives the dense bucket array
/// and rejects anything non-canonical (out-of-range or unordered buckets,
/// zero-count pairs, a total that disagrees with the parts), so a decoded
/// histogram re-encodes bit-identically and its quantile math can trust
/// `total` without re-summing.
impl Wire for Histogram {
    fn encode(&self, out: &mut Vec<u8>) {
        let nonzero: Vec<(u32, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        nonzero.encode(out);
        self.underflow.encode(out);
        self.overflow.encode(out);
        self.total.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let pairs = Vec::<(u32, u64)>::decode(r)?;
        let underflow = u64::decode(r)?;
        let overflow = u64::decode(r)?;
        let total = u64::decode(r)?;
        let mut h = Histogram::new();
        let mut last: Option<u32> = None;
        let mut in_range: u64 = 0;
        for (idx, count) in pairs {
            if idx as usize >= BUCKETS {
                return Err(WireError::Corrupt("histogram bucket index"));
            }
            if last.is_some_and(|l| idx <= l) {
                return Err(WireError::Corrupt("histogram bucket order"));
            }
            if count == 0 {
                return Err(WireError::Corrupt("histogram empty bucket"));
            }
            last = Some(idx);
            h.counts[idx as usize] = count;
            in_range = in_range
                .checked_add(count)
                .ok_or(WireError::Corrupt("histogram count overflow"))?;
        }
        let sum = in_range
            .checked_add(underflow)
            .and_then(|s| s.checked_add(overflow))
            .ok_or(WireError::Corrupt("histogram count overflow"))?;
        if sum != total {
            return Err(WireError::Corrupt("histogram total mismatch"));
        }
        h.underflow = underflow;
        h.overflow = overflow;
        h.total = total;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_within_bucket_error() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64); // uniform 1..1000
        }
        assert_eq!(h.count(), 1000);
        let med = h.median();
        assert!((med - 500.0).abs() / 500.0 < 0.08, "median {med}");
        let p99 = h.p99();
        assert!((p99 - 990.0).abs() / 990.0 < 0.08, "p99 {p99}");
    }

    #[test]
    fn empty_histogram_reports_nan() {
        let h = Histogram::new();
        assert!(h.median().is_nan());
    }

    #[test]
    fn underflow_counts_toward_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(0.0);
        }
        h.record(100.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.quantile(1.0) > 0.0);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10.0);
        b.record(20.0);
        b.record(30.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn huge_values_count_as_overflow() {
        let mut h = Histogram::new();
        h.record(1e12);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.count(), 1);
        // The quantile is still finite — the upper edge of the tracked
        // range, flagged as a lower bound by the overflow counter.
        let q = h.quantile(1.0);
        assert!(q.is_finite() && q >= 9e3, "q = {q}");
    }

    #[test]
    fn overflow_does_not_distort_in_range_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=99 {
            h.record(i as f64);
        }
        h.record(1e9); // one stray overflow sample
        let med = h.median();
        assert!((med - 50.0).abs() / 50.0 < 0.08, "median {med}");
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn merge_sums_overflow() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1e11);
        b.record(1e11);
        b.record(0.0);
        a.merge(&b);
        assert_eq!(a.overflow(), 2);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_quantile_panics() {
        let h = Histogram::new();
        let _ = h.quantile(1.5);
    }

    fn round_trip(h: &Histogram) {
        let bytes = h.to_wire();
        let back = Histogram::from_wire(&bytes).expect("decode");
        assert_eq!(&back, h);
        assert_eq!(back.to_wire(), bytes, "re-encode must be bit-identical");
    }

    #[test]
    fn wire_round_trips() {
        round_trip(&Histogram::new());
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(f64::from(i));
        }
        h.record(0.0); // underflow
        h.record(1e12); // overflow
        round_trip(&h);
        // Quantiles survive the trip.
        let back = Histogram::from_wire(&h.to_wire()).unwrap();
        assert_eq!(back.median().to_bits(), h.median().to_bits());
        assert_eq!(back.count(), h.count());
    }

    #[test]
    fn wire_truncation_rejected() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(250.0);
        let bytes = h.to_wire();
        for cut in 0..bytes.len() {
            assert!(Histogram::from_wire(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    /// Hand-build a frame from parts: `pairs` + underflow/overflow/total.
    fn frame(pairs: &[(u32, u64)], under: u64, over: u64, total: u64) -> Vec<u8> {
        let mut out = Vec::new();
        pairs.to_vec().encode(&mut out);
        under.encode(&mut out);
        over.encode(&mut out);
        total.encode(&mut out);
        out
    }

    #[test]
    fn wire_non_canonical_rejected() {
        use crate::wire::WireError;
        type Case = (&'static [(u32, u64)], u64, u64, u64, &'static str);
        let cases: [Case; 5] = [
            (&[(BUCKETS as u32, 1)], 0, 0, 1, "histogram bucket index"),
            (&[(5, 1), (5, 1)], 0, 0, 2, "histogram bucket order"),
            (&[(9, 2), (3, 1)], 0, 0, 3, "histogram bucket order"),
            (&[(4, 0)], 0, 0, 0, "histogram empty bucket"),
            (&[(4, 1)], 1, 1, 2, "histogram total mismatch"),
        ];
        for (pairs, under, over, total, why) in cases {
            let got = Histogram::from_wire(&frame(pairs, under, over, total));
            assert_eq!(got.unwrap_err(), WireError::Corrupt(why));
        }
    }

    #[test]
    fn wire_count_overflow_rejected() {
        let got = Histogram::from_wire(&frame(&[(0, u64::MAX), (1, 1)], 0, 0, u64::MAX));
        assert!(got.is_err());
    }
}
