//! Strongly-typed identifiers used across the system.
//!
//! The paper uses several distinct id spaces which are easy to confuse when
//! they are all bare integers:
//!
//! - a **replica** (a middleware/database pair, `R^k` / `M^k` in the paper),
//! - a **local transaction id** assigned by a database replica,
//! - a **global transaction id** (`T.tid`) assigned at validation time, which
//!   is identical at every replica because validation runs in total order,
//! - a **client** and its **session** (one JDBC connection).
//!
//! Each gets its own newtype so the compiler keeps them apart.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Construct from a raw integer.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw integer value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// A middleware/database replica pair (`R^k` in the paper).
    ReplicaId,
    "R"
);
id_type!(
    /// A transaction id local to one database replica; assigned at `begin`.
    TxnId,
    "T"
);
id_type!(
    /// The global transaction id `T.tid`, assigned in validation (total)
    /// order. Identical at every replica for the same transaction.
    GlobalTid,
    "G"
);
id_type!(
    /// A client program (one emulated browser / terminal).
    ClientId,
    "C"
);
id_type!(
    /// One client connection to a middleware replica. A client that fails
    /// over to another replica keeps its `ClientId` but gets a new session.
    SessionId,
    "S"
);
id_type!(
    /// A member endpoint inside the group communication system.
    MemberId,
    "M"
);

impl GlobalTid {
    /// The sentinel "no transaction validated yet" value; `T.cert` starts
    /// here (the paper initializes `lastvalidated_tid := 0`).
    pub const ZERO: GlobalTid = GlobalTid(0);

    /// The next tid in validation order.
    #[must_use]
    pub fn next(self) -> GlobalTid {
        GlobalTid(self.0 + 1)
    }
}

impl ReplicaId {
    /// Convenience for indexing `Vec`s keyed by replica.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The unique, client-visible transaction identifier a middleware replica
/// assigns when a transaction starts. The paper: *"the replica assigns a
/// unique transaction identifier and returns it to the driver [...] the
/// identifier is forwarded to the remote middleware replicas together with
/// the writeset"*.
///
/// This is the one canonical transaction identity: core's protocol
/// messages, the journal, and the wire codec all carry this same type (it
/// lives here because the journal crate cannot depend on core).
///
/// The sequence number's top bits carry the origin's **incarnation** (how
/// many times that replica id has re-joined after a crash — an extension
/// needed once online recovery exists): in-doubt resolution must be able to
/// tell "this transaction's origin incarnation has departed, and uniform
/// delivery says its writeset would already be here" apart from "the origin
/// crashed once long ago but this transaction belongs to its current, live
/// incarnation".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XactId {
    /// The replica the transaction was local at.
    pub origin: ReplicaId,
    /// Incarnation (top [`XactId::INCARNATION_SHIFT`] bits) + per-origin
    /// sequence number.
    pub seq: u64,
}

impl XactId {
    pub const INCARNATION_SHIFT: u32 = 48;

    pub const fn new(origin: ReplicaId, seq: u64) -> XactId {
        XactId { origin, seq }
    }

    /// The origin incarnation this transaction was created under.
    pub fn incarnation(&self) -> u64 {
        self.seq >> Self::INCARNATION_SHIFT
    }

    /// First sequence value for an incarnation.
    pub fn seq_base(incarnation: u64) -> u64 {
        incarnation << Self::INCARNATION_SHIFT
    }
}

impl fmt::Display for XactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}#{}",
            self.origin,
            self.incarnation(),
            self.seq & ((1 << Self::INCARNATION_SHIFT) - 1)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_ordering() {
        let a = GlobalTid::new(1);
        let b = GlobalTid::new(2);
        assert!(a < b);
        assert_eq!(a.next(), b);
        assert_eq!(GlobalTid::ZERO.raw(), 0);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ReplicaId::new(3).to_string(), "R3");
        assert_eq!(format!("{:?}", TxnId::new(7)), "T7");
        assert_eq!(GlobalTid::from(9).to_string(), "G9");
        assert_eq!(ClientId::new(1).to_string(), "C1");
        assert_eq!(SessionId::new(2).to_string(), "S2");
        assert_eq!(MemberId::new(4).to_string(), "M4");
    }

    #[test]
    fn replica_index_roundtrip() {
        assert_eq!(ReplicaId::new(5).index(), 5);
    }

    #[test]
    fn xact_id_ordering_and_display() {
        let a = XactId::new(ReplicaId::new(0), 5);
        let b = XactId::new(ReplicaId::new(1), 1);
        assert!(a < b);
        assert_eq!(a.to_string(), "R0.0#5");
        assert_eq!(a.incarnation(), 0);
    }

    #[test]
    fn incarnation_encoding() {
        let seq = XactId::seq_base(3) + 42;
        let x = XactId::new(ReplicaId::new(2), seq);
        assert_eq!(x.incarnation(), 3);
        assert_eq!(x.to_string(), "R2.3#42");
        // Incarnations don't collide across sequence growth.
        assert!(XactId::seq_base(1) > XactId::seq_base(0) + 1_000_000_000);
    }
}
