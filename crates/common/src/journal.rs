//! Protocol event journal: a bounded, append-only ring of typed events.
//!
//! Where [`crate::trace`] answers *"where did this transaction's time go?"*,
//! the journal answers *"what did the protocol do, in what order?"* — every
//! replica keeps a fixed-capacity ring of [`Event`]s (begin, certification
//! capture, multicast, total-order delivery, validation verdict, hole
//! open/close, ws_list prune, commit/abort, apply, view change), each stamped
//! with the source replica, a per-replica sequence number, and a nanosecond
//! offset from a shared epoch so timelines from different replicas align.
//!
//! The ring is deliberately lossy: once `capacity` events are held, the
//! oldest is dropped and [`Journal::dropped`] counts it.  Recording is one
//! short mutex hold with no allocation ([`Event`] is `Copy`), cheap enough
//! for the hot commit path; consumers take a point-in-time [`snapshot`]
//! (oldest first) and render it — see the Perfetto exporter in
//! `sirep_core::export` — or feed it to the online auditor.
//!
//! Like the rest of the observability layer, the whole module is gated on
//! the default-on `trace` feature: with `--no-default-features` the journal
//! becomes a no-op with the same API and every call site compiles away.
//!
//! [`snapshot`]: Journal::snapshot

use crate::ids::{GlobalTid, ReplicaId, XactId};
#[cfg(feature = "trace")]
use parking_lot::Mutex;
#[cfg(feature = "trace")]
use std::collections::VecDeque;
use std::time::Instant;

/// What a seeded fault injector did to one delivery copy.  Recorded in
/// [`EventKind::FaultInjected`] and in the GCS fault log that the chaos
/// harness fingerprints for seed-replay determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// First delivery attempt dropped; the copy arrives later via the
    /// simulated retransmission (uniform delivery is preserved).
    Drop,
    /// A second copy of the same total-order message was enqueued; the
    /// receive path dedups it by sequence number.
    Duplicate,
    /// The copy was delayed beyond the configured network latency.
    ExtraDelay,
}

impl FaultKind {
    /// Stable lowercase name (journal rendering, fingerprint files).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::ExtraDelay => "extra_delay",
        }
    }
}

/// A named crash-point: a place in the protocol where the chaos plan can
/// make a replica crash-stop the instant execution reaches it.  The names
/// follow the failover cases of the paper's §5.4.  `Ord` so crash-plan
/// containers can be deterministic `BTreeMap`s (declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CrashPoint {
    /// In `commit_local`, before the writeset is handed to the multicast:
    /// the transaction dies with its origin (§5.4 case 1/2).
    BeforeMulticast,
    /// In `commit_local`, after the writeset was multicast but before the
    /// origin commits or acks — the classic in-doubt window (§5.4 case 3).
    AfterMulticastBeforeLocalCommit,
    /// In the applier, after a remote writeset was delivered and validated
    /// but before it commits locally.
    AfterDeliverBeforeCommit,
    /// In `Cluster::recover`, after the donor produced its state-transfer
    /// snapshot but before the joiner installs it — the donor dies and
    /// recovery must restart with another donor.
    MidStateTransfer,
}

impl CrashPoint {
    /// Stable lowercase name (journal rendering, chaos plan display).
    pub fn name(&self) -> &'static str {
        match self {
            CrashPoint::BeforeMulticast => "before_multicast",
            CrashPoint::AfterMulticastBeforeLocalCommit => "after_multicast_before_local_commit",
            CrashPoint::AfterDeliverBeforeCommit => "after_deliver_before_commit",
            CrashPoint::MidStateTransfer => "mid_state_transfer",
        }
    }
}

/// A typed protocol event. Variants follow one writeset through the SRCA-Rep
/// pipeline, plus the protocol-state events (holes, pruning, membership)
/// that the paper's §4 adjustments revolve around.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A local transaction began (after any hole wait — adjustment 3).
    TxBegin { xact: XactId },
    /// Commit requested: the certification watermark (`ws_list.last_tid`)
    /// was captured under the state lock.
    CertCapture { xact: XactId, cert: GlobalTid },
    /// The writeset was handed to the total-order multicast.
    Multicast { xact: XactId },
    /// The writeset came back in total order.
    TotalOrderDeliver { xact: XactId, cert: GlobalTid },
    /// Certification outcome: `tid` is the dense global commit id assigned
    /// on a pass, `None` on a validation abort.
    ValidationVerdict { xact: XactId, tid: Option<GlobalTid>, passed: bool },
    /// A commit-order hole opened: `tid` committed ahead of a smaller
    /// validated-but-uncommitted tid.
    HoleOpened { tid: GlobalTid },
    /// The last open hole drained; local begins may proceed again.
    HoleClosed { tid: GlobalTid },
    /// The certification list was pruned up to `watermark`.
    WsListPruned { watermark: GlobalTid, removed: u64 },
    /// The transaction committed at this replica with global id `tid`.
    Commit { xact: XactId, tid: GlobalTid },
    /// The transaction aborted at this replica (validation or local).
    Abort { xact: XactId },
    /// A remote writeset started applying at this replica.
    ApplyStart { xact: XactId, tid: GlobalTid },
    /// A remote writeset finished applying at this replica.
    ApplyDone { xact: XactId, tid: GlobalTid },
    /// Membership changed; `members` live replicas remain.
    ViewChange { members: u64 },
    /// A driver connection failed over to this replica after `from`
    /// crashed (§5.4 automatic failover).
    ClientFailover { from: ReplicaId },
    /// The seeded fault injector perturbed delivery copy `msg` (the global
    /// fault-plan message index) bound for member `member`.
    FaultInjected { fault: FaultKind, msg: u64, member: u64 },
    /// A network partition started; `isolated` members are cut off.
    PartitionStarted { isolated: u64 },
    /// The partition healed; `flushed` held delivery copies were released.
    PartitionHealed { flushed: u64 },
    /// An armed crash-point fired and this replica crash-stopped there.
    CrashPointFired { point: CrashPoint },
    /// A read-only transaction ran entirely against the local snapshot
    /// (`snapshot` = the begin-time commit watermark): no multicast, no
    /// certification, no sequencer round-trip.
    LocalReadOnly { xact: XactId, snapshot: GlobalTid },
}

impl EventKind {
    /// Stable lowercase name (Perfetto event names, Prometheus labels).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TxBegin { .. } => "tx_begin",
            EventKind::CertCapture { .. } => "cert_capture",
            EventKind::Multicast { .. } => "multicast",
            EventKind::TotalOrderDeliver { .. } => "total_order_deliver",
            EventKind::ValidationVerdict { .. } => "validation_verdict",
            EventKind::HoleOpened { .. } => "hole_opened",
            EventKind::HoleClosed { .. } => "hole_closed",
            EventKind::WsListPruned { .. } => "ws_list_pruned",
            EventKind::Commit { .. } => "commit",
            EventKind::Abort { .. } => "abort",
            EventKind::ApplyStart { .. } => "apply_start",
            EventKind::ApplyDone { .. } => "apply_done",
            EventKind::ViewChange { .. } => "view_change",
            EventKind::ClientFailover { .. } => "client_failover",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::PartitionStarted { .. } => "partition_started",
            EventKind::PartitionHealed { .. } => "partition_healed",
            EventKind::CrashPointFired { .. } => "crash_point_fired",
            EventKind::LocalReadOnly { .. } => "local_read_only",
        }
    }

    /// The transaction this event concerns, when it concerns one.
    pub fn xact(&self) -> Option<XactId> {
        match *self {
            EventKind::TxBegin { xact }
            | EventKind::CertCapture { xact, .. }
            | EventKind::Multicast { xact }
            | EventKind::TotalOrderDeliver { xact, .. }
            | EventKind::ValidationVerdict { xact, .. }
            | EventKind::Commit { xact, .. }
            | EventKind::Abort { xact }
            | EventKind::ApplyStart { xact, .. }
            | EventKind::ApplyDone { xact, .. }
            | EventKind::LocalReadOnly { xact, .. } => Some(xact),
            EventKind::HoleOpened { .. }
            | EventKind::HoleClosed { .. }
            | EventKind::WsListPruned { .. }
            | EventKind::ViewChange { .. }
            | EventKind::ClientFailover { .. }
            | EventKind::FaultInjected { .. }
            | EventKind::PartitionStarted { .. }
            | EventKind::PartitionHealed { .. }
            | EventKind::CrashPointFired { .. } => None,
        }
    }
}

/// One journal record: what happened, where, and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Per-replica sequence number, dense from 0 (gaps only via `dropped`).
    pub seq: u64,
    /// Nanoseconds since the journal's epoch (shared cluster-wide so events
    /// from different replicas sort onto one timeline).
    pub at_ns: u64,
    /// The replica that recorded the event.
    pub replica: ReplicaId,
    pub kind: EventKind,
}

/// Default ring capacity: enough for ~1k transactions' worth of events.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 8192;

// ======================================================================
// Wire forms (telemetry journal export). `Event` and its kinds are plain
// data in both feature configurations, so these impls are unconditional.
// ======================================================================

use crate::wire::{Wire, WireError, WireReader};

impl Wire for FaultKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            FaultKind::Drop => 0,
            FaultKind::Duplicate => 1,
            FaultKind::ExtraDelay => 2,
        };
        tag.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => FaultKind::Drop,
            1 => FaultKind::Duplicate,
            2 => FaultKind::ExtraDelay,
            _ => return Err(WireError::Corrupt("fault kind tag")),
        })
    }
}

impl Wire for CrashPoint {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            CrashPoint::BeforeMulticast => 0,
            CrashPoint::AfterMulticastBeforeLocalCommit => 1,
            CrashPoint::AfterDeliverBeforeCommit => 2,
            CrashPoint::MidStateTransfer => 3,
        };
        tag.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => CrashPoint::BeforeMulticast,
            1 => CrashPoint::AfterMulticastBeforeLocalCommit,
            2 => CrashPoint::AfterDeliverBeforeCommit,
            3 => CrashPoint::MidStateTransfer,
            _ => return Err(WireError::Corrupt("crash point tag")),
        })
    }
}

impl Wire for EventKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            EventKind::TxBegin { xact } => {
                0u8.encode(out);
                xact.encode(out);
            }
            EventKind::CertCapture { xact, cert } => {
                1u8.encode(out);
                xact.encode(out);
                cert.encode(out);
            }
            EventKind::Multicast { xact } => {
                2u8.encode(out);
                xact.encode(out);
            }
            EventKind::TotalOrderDeliver { xact, cert } => {
                3u8.encode(out);
                xact.encode(out);
                cert.encode(out);
            }
            EventKind::ValidationVerdict { xact, tid, passed } => {
                4u8.encode(out);
                xact.encode(out);
                tid.encode(out);
                passed.encode(out);
            }
            EventKind::HoleOpened { tid } => {
                5u8.encode(out);
                tid.encode(out);
            }
            EventKind::HoleClosed { tid } => {
                6u8.encode(out);
                tid.encode(out);
            }
            EventKind::WsListPruned { watermark, removed } => {
                7u8.encode(out);
                watermark.encode(out);
                removed.encode(out);
            }
            EventKind::Commit { xact, tid } => {
                8u8.encode(out);
                xact.encode(out);
                tid.encode(out);
            }
            EventKind::Abort { xact } => {
                9u8.encode(out);
                xact.encode(out);
            }
            EventKind::ApplyStart { xact, tid } => {
                10u8.encode(out);
                xact.encode(out);
                tid.encode(out);
            }
            EventKind::ApplyDone { xact, tid } => {
                11u8.encode(out);
                xact.encode(out);
                tid.encode(out);
            }
            EventKind::ViewChange { members } => {
                12u8.encode(out);
                members.encode(out);
            }
            EventKind::ClientFailover { from } => {
                13u8.encode(out);
                from.encode(out);
            }
            EventKind::FaultInjected { fault, msg, member } => {
                14u8.encode(out);
                fault.encode(out);
                msg.encode(out);
                member.encode(out);
            }
            EventKind::PartitionStarted { isolated } => {
                15u8.encode(out);
                isolated.encode(out);
            }
            EventKind::PartitionHealed { flushed } => {
                16u8.encode(out);
                flushed.encode(out);
            }
            EventKind::CrashPointFired { point } => {
                17u8.encode(out);
                point.encode(out);
            }
            EventKind::LocalReadOnly { xact, snapshot } => {
                18u8.encode(out);
                xact.encode(out);
                snapshot.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => EventKind::TxBegin { xact: XactId::decode(r)? },
            1 => EventKind::CertCapture { xact: XactId::decode(r)?, cert: GlobalTid::decode(r)? },
            2 => EventKind::Multicast { xact: XactId::decode(r)? },
            3 => EventKind::TotalOrderDeliver {
                xact: XactId::decode(r)?,
                cert: GlobalTid::decode(r)?,
            },
            4 => EventKind::ValidationVerdict {
                xact: XactId::decode(r)?,
                tid: Option::<GlobalTid>::decode(r)?,
                passed: bool::decode(r)?,
            },
            5 => EventKind::HoleOpened { tid: GlobalTid::decode(r)? },
            6 => EventKind::HoleClosed { tid: GlobalTid::decode(r)? },
            7 => EventKind::WsListPruned {
                watermark: GlobalTid::decode(r)?,
                removed: u64::decode(r)?,
            },
            8 => EventKind::Commit { xact: XactId::decode(r)?, tid: GlobalTid::decode(r)? },
            9 => EventKind::Abort { xact: XactId::decode(r)? },
            10 => EventKind::ApplyStart { xact: XactId::decode(r)?, tid: GlobalTid::decode(r)? },
            11 => EventKind::ApplyDone { xact: XactId::decode(r)?, tid: GlobalTid::decode(r)? },
            12 => EventKind::ViewChange { members: u64::decode(r)? },
            13 => EventKind::ClientFailover { from: ReplicaId::decode(r)? },
            14 => EventKind::FaultInjected {
                fault: FaultKind::decode(r)?,
                msg: u64::decode(r)?,
                member: u64::decode(r)?,
            },
            15 => EventKind::PartitionStarted { isolated: u64::decode(r)? },
            16 => EventKind::PartitionHealed { flushed: u64::decode(r)? },
            17 => EventKind::CrashPointFired { point: CrashPoint::decode(r)? },
            18 => EventKind::LocalReadOnly {
                xact: XactId::decode(r)?,
                snapshot: GlobalTid::decode(r)?,
            },
            _ => return Err(WireError::Corrupt("event kind tag")),
        })
    }
}

impl Wire for Event {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seq.encode(out);
        self.at_ns.encode(out);
        self.replica.encode(out);
        self.kind.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Event {
            seq: u64::decode(r)?,
            at_ns: u64::decode(r)?,
            replica: ReplicaId::decode(r)?,
            kind: EventKind::decode(r)?,
        })
    }
}

// ======================================================================
// Real implementation (`trace` feature on — the default).
// ======================================================================

/// Bounded append-only ring of protocol [`Event`]s for one replica.
#[cfg(feature = "trace")]
#[derive(Debug)]
pub struct Journal {
    replica: ReplicaId,
    epoch: Instant,
    inner: Mutex<Ring>,
}

#[cfg(feature = "trace")]
#[derive(Debug)]
struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
    next_seq: u64,
    dropped: u64,
}

#[cfg(feature = "trace")]
impl Journal {
    /// A journal with its own epoch (= now) and the default capacity.
    pub fn new(replica: ReplicaId) -> Journal {
        Journal::with_epoch(replica, Instant::now(), DEFAULT_JOURNAL_CAPACITY)
    }

    /// A journal stamping events relative to a shared `epoch` — pass the
    /// same instant to every replica's journal and their snapshots merge
    /// onto one timeline.
    pub fn with_epoch(replica: ReplicaId, epoch: Instant, capacity: usize) -> Journal {
        let cap = capacity.max(1);
        Journal {
            replica,
            epoch,
            inner: Mutex::new(Ring {
                buf: VecDeque::with_capacity(cap),
                cap,
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Append an event stamped now.
    pub fn record(&self, kind: EventKind) {
        let at_ns = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut ring = self.inner.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(Event { seq, at_ns, replica: self.replica, kind });
    }

    /// Point-in-time copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().buf.iter().copied().collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().cap
    }

    /// The replica this journal records for.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }
}

// ======================================================================
// No-op implementation (`trace` feature off): same API, zero cost.
// ======================================================================

/// No-op journal: the `trace` feature is off, recording compiles away.
#[cfg(not(feature = "trace"))]
#[derive(Debug)]
pub struct Journal {
    replica: ReplicaId,
}

#[cfg(not(feature = "trace"))]
impl Journal {
    #[inline(always)]
    pub fn new(replica: ReplicaId) -> Journal {
        Journal { replica }
    }
    #[inline(always)]
    pub fn with_epoch(replica: ReplicaId, _epoch: Instant, _capacity: usize) -> Journal {
        Journal { replica }
    }
    #[inline(always)]
    pub fn record(&self, _kind: EventKind) {}
    #[inline(always)]
    pub fn snapshot(&self) -> Vec<Event> {
        Vec::new()
    }
    #[inline(always)]
    pub fn len(&self) -> usize {
        0
    }
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        true
    }
    #[inline(always)]
    pub fn dropped(&self) -> u64 {
        0
    }
    #[inline(always)]
    pub fn capacity(&self) -> usize {
        0
    }
    #[inline(always)]
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    fn r(k: u64) -> ReplicaId {
        ReplicaId::new(k)
    }

    #[test]
    fn events_are_sequenced_and_stamped() {
        let j = Journal::new(r(3));
        let a = XactId::new(r(3), 1);
        j.record(EventKind::TxBegin { xact: a });
        j.record(EventKind::CertCapture { xact: a, cert: GlobalTid::ZERO });
        j.record(EventKind::Commit { xact: a, tid: GlobalTid::new(1) });
        let snap = j.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[2].seq, 2);
        assert!(snap.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(snap.iter().all(|e| e.replica == r(3)));
        assert_eq!(snap[0].kind.xact(), Some(a));
        assert_eq!(snap[0].kind.name(), "tx_begin");
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let j = Journal::with_epoch(r(0), Instant::now(), 4);
        for seq in 0..10 {
            j.record(EventKind::TxBegin { xact: XactId::new(r(0), seq) });
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 6);
        let snap = j.snapshot();
        // The survivors are the newest four, sequence numbers intact.
        assert_eq!(snap.first().unwrap().seq, 6);
        assert_eq!(snap.last().unwrap().seq, 9);
    }

    #[test]
    fn shared_epoch_aligns_replicas() {
        let epoch = Instant::now();
        let j0 = Journal::with_epoch(r(0), epoch, 16);
        let j1 = Journal::with_epoch(r(1), epoch, 16);
        j0.record(EventKind::ViewChange { members: 2 });
        j1.record(EventKind::ViewChange { members: 2 });
        let a = j0.snapshot()[0].at_ns;
        let b = j1.snapshot()[0].at_ns;
        // Recorded back-to-back against one epoch: within a second for sure.
        assert!(a.abs_diff(b) < 1_000_000_000, "{a} vs {b}");
    }

    #[test]
    fn state_events_carry_no_xact() {
        let e = EventKind::WsListPruned { watermark: GlobalTid::new(7), removed: 3 };
        assert_eq!(e.xact(), None);
        assert_eq!(e.name(), "ws_list_pruned");
    }

    #[test]
    fn fault_events_are_named_and_carry_no_xact() {
        let cases = [
            (
                EventKind::FaultInjected { fault: FaultKind::Drop, msg: 3, member: 1 },
                "fault_injected",
            ),
            (EventKind::PartitionStarted { isolated: 2 }, "partition_started"),
            (EventKind::PartitionHealed { flushed: 5 }, "partition_healed"),
            (
                EventKind::CrashPointFired { point: CrashPoint::MidStateTransfer },
                "crash_point_fired",
            ),
        ];
        for (kind, name) in cases {
            assert_eq!(kind.name(), name);
            assert_eq!(kind.xact(), None);
        }
        assert_eq!(FaultKind::Duplicate.name(), "duplicate");
        assert_eq!(
            CrashPoint::AfterMulticastBeforeLocalCommit.name(),
            "after_multicast_before_local_commit"
        );
    }

    use crate::wire::{Wire, WireError};
    use proptest::prelude::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(back.to_wire(), bytes, "re-encode must be bit-identical");
    }

    /// One instance of every `EventKind` variant, for exhaustive wire tests.
    fn all_kinds() -> Vec<EventKind> {
        let x = XactId::new(r(2), 9);
        let t = GlobalTid::new(41);
        vec![
            EventKind::TxBegin { xact: x },
            EventKind::CertCapture { xact: x, cert: t },
            EventKind::Multicast { xact: x },
            EventKind::TotalOrderDeliver { xact: x, cert: t },
            EventKind::ValidationVerdict { xact: x, tid: Some(t), passed: true },
            EventKind::ValidationVerdict { xact: x, tid: None, passed: false },
            EventKind::HoleOpened { tid: t },
            EventKind::HoleClosed { tid: t },
            EventKind::WsListPruned { watermark: t, removed: 3 },
            EventKind::Commit { xact: x, tid: t },
            EventKind::Abort { xact: x },
            EventKind::ApplyStart { xact: x, tid: t },
            EventKind::ApplyDone { xact: x, tid: t },
            EventKind::ViewChange { members: 3 },
            EventKind::ClientFailover { from: r(1) },
            EventKind::FaultInjected { fault: FaultKind::ExtraDelay, msg: 17, member: 2 },
            EventKind::PartitionStarted { isolated: 1 },
            EventKind::PartitionHealed { flushed: 8 },
            EventKind::CrashPointFired { point: CrashPoint::AfterDeliverBeforeCommit },
            EventKind::LocalReadOnly { xact: x, snapshot: t },
        ]
    }

    #[test]
    fn wire_round_trips_every_event_kind() {
        for kind in all_kinds() {
            round_trip(&kind);
            round_trip(&Event { seq: 7, at_ns: 123_456_789, replica: r(2), kind });
        }
        round_trip(&vec![
            Event { seq: 0, at_ns: 1, replica: r(0), kind: EventKind::ViewChange { members: 1 } },
            Event {
                seq: 1,
                at_ns: 2,
                replica: r(0),
                kind: EventKind::TxBegin { xact: XactId::new(r(0), 0) },
            },
        ]);
    }

    #[test]
    fn wire_corrupt_tags_rejected() {
        assert_eq!(EventKind::from_wire(&[19]), Err(WireError::Corrupt("event kind tag")));
        assert_eq!(FaultKind::from_wire(&[3]), Err(WireError::Corrupt("fault kind tag")));
        assert_eq!(CrashPoint::from_wire(&[4]), Err(WireError::Corrupt("crash point tag")));
    }

    #[test]
    fn wire_truncation_rejected() {
        for kind in all_kinds() {
            let bytes = Event { seq: 1, at_ns: 2, replica: r(1), kind }.to_wire();
            for cut in 0..bytes.len() {
                assert!(Event::from_wire(&bytes[..cut]).is_err(), "{kind:?} cut at {cut}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_event_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Event::from_wire(&bytes);
            let _ = EventKind::from_wire(&bytes);
            let _ = Vec::<Event>::from_wire(&bytes);
        }
    }
}
