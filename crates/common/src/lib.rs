//! Shared infrastructure for the SI-Rep reproduction.
//!
//! This crate holds the small, dependency-light building blocks used by every
//! other crate in the workspace:
//!
//! - [`ids`]: strongly-typed identifiers (replicas, transactions, clients).
//! - [`error`]: the abort/failure taxonomy shared by the storage engine,
//!   the replication middleware and the client driver.
//! - [`clock`]: model-time scaling and precise sleeping, so benchmark sweeps
//!   reproduce the paper's queueing behaviour in a fraction of wall time.
//! - [`stats`]: online statistics with the 95/5 confidence-interval stopping
//!   rule used by the paper ("all tests were run until a 95/5 confidence
//!   interval was achieved").
//! - [`histogram`]: log-bucketed latency histograms.
//! - [`metrics`]: cheap atomic counters for protocol events (commits, aborts
//!   by reason, commit-order holes, ...).
//! - [`trace`]: transaction-lifecycle tracing — per-stage latency
//!   breakdowns across the replication pipeline (compiled out when the
//!   `trace` cargo feature is disabled).
//! - [`journal`]: bounded ring of typed protocol events per replica
//!   (feature-gated like [`trace`]).
//! - [`gauges`]: current-value telemetry with high-water marks for the
//!   protocol's queue depths (feature-gated like [`trace`]).
//! - [`wire`]: the dependency-free length-prefixed binary codec everything
//!   crossing a process boundary encodes through.

pub mod clock;
pub mod error;
pub mod gauges;
pub mod histogram;
pub mod ids;
pub mod journal;
pub mod metrics;
pub mod stats;
pub mod sync;
pub mod trace;
pub mod transport;
pub mod wire;

pub use clock::{precise_sleep, TimeScale};
pub use error::{AbortReason, DbError};
pub use gauges::{Gauge, GaugeReading, GaugeSnapshot, ProtocolGauges};
pub use histogram::Histogram;
pub use ids::{ClientId, GlobalTid, MemberId, ReplicaId, SessionId, TxnId, XactId};
pub use journal::{CrashPoint, Event, EventKind, FaultKind, Journal, DEFAULT_JOURNAL_CAPACITY};
pub use metrics::{Metrics, Rates};
pub use stats::{ConfidenceInterval, OnlineStats};
pub use sync::Semaphore;
pub use trace::{Stage, StageSnapshot, StageStats, TxTrace, STAGE_COUNT};
pub use transport::TransportSnapshot;
pub use wire::{
    read_frame, read_frame_counted, write_frame, write_frame_counted, Wire, WireError, WireReader,
    MAX_FRAME,
};
