//! Cheap atomic event counters for protocol instrumentation.
//!
//! The evaluation section quotes several event-rate figures that don't show
//! up in any plot: TPC-W abort rates "far below 1 %" (§6.1), holes present at
//! "around 4–8 % of the times a transaction wants to start" (§6.3), and
//! writeset-application retries after database deadlocks (§4.2). The
//! middleware increments these counters on the hot path (relaxed atomics,
//! no locks) and the harnesses read them at the end of a run.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters shared by one middleware replica (or the centralized middleware).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Update transactions committed (writesets validated and applied).
    pub commits_update: AtomicU64,
    /// Read-only transactions committed (empty writeset fast path).
    pub commits_readonly: AtomicU64,
    /// Aborts due to middleware validation (local or global certification).
    pub aborts_validation: AtomicU64,
    /// Aborts due to the database-internal version check.
    pub aborts_serialization: AtomicU64,
    /// Aborts due to database deadlock (local transactions only; remote
    /// writesets are retried instead).
    pub aborts_deadlock: AtomicU64,
    /// Client-requested rollbacks.
    pub aborts_user: AtomicU64,
    /// Remote writeset applications retried after a deadlock abort.
    pub ws_apply_retries: AtomicU64,
    /// Transaction begins that found holes in the commit order and waited
    /// (adjustment 3).
    pub begins_delayed_by_holes: AtomicU64,
    /// Total transaction begins (denominator for the hole rate).
    pub begins_total: AtomicU64,
    /// Commits throttled because locals were waiting to start (adjustment 3
    /// liveness rule).
    pub commits_delayed_for_holes: AtomicU64,
    /// Writesets received via total-order multicast (remote + own).
    pub ws_delivered: AtomicU64,
    /// Writesets discarded at global validation.
    pub ws_discarded: AtomicU64,
}

impl Clone for Metrics {
    /// Snapshot clone: copies the current counter values.
    fn clone(&self) -> Self {
        let m = Metrics::new();
        m.merge(self);
        m
    }
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Relaxed increment; all counters are independent event counts.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Total committed transactions.
    pub fn commits(&self) -> u64 {
        Self::get(&self.commits_update) + Self::get(&self.commits_readonly)
    }

    /// Total aborted transactions (all causes except user rollback).
    pub fn forced_aborts(&self) -> u64 {
        Self::get(&self.aborts_validation)
            + Self::get(&self.aborts_serialization)
            + Self::get(&self.aborts_deadlock)
    }

    /// Abort rate over completed transactions, in [0, 1]. NaN if nothing ran.
    pub fn abort_rate(&self) -> f64 {
        let aborts = self.forced_aborts() as f64;
        let total = aborts + self.commits() as f64;
        aborts / total
    }

    /// Fraction of transaction begins that had to wait for holes to close.
    pub fn hole_rate(&self) -> f64 {
        Self::get(&self.begins_delayed_by_holes) as f64 / Self::get(&self.begins_total) as f64
    }

    /// Fraction of delivered writesets discarded at global validation.
    pub fn ws_discard_rate(&self) -> f64 {
        Self::get(&self.ws_discarded) as f64 / Self::get(&self.ws_delivered) as f64
    }

    /// The derived event rates the evaluation section quotes, in one
    /// [`Copy`] bundle — what the fig5/fig7 harnesses print next to the
    /// latency curves. Each rate is in [0, 1], or NaN when its denominator
    /// is zero.
    pub fn rates(&self) -> Rates {
        Rates {
            abort_rate: self.abort_rate(),
            hole_rate: self.hole_rate(),
            ws_discard_rate: self.ws_discard_rate(),
        }
    }

    /// Fold another replica's counters into this one (fleet-wide totals).
    pub fn merge(&self, other: &Metrics) {
        macro_rules! fold {
            ($($f:ident),*) => {
                $(self.$f.fetch_add(Self::get(&other.$f), Ordering::Relaxed);)*
            };
        }
        fold!(
            commits_update,
            commits_readonly,
            aborts_validation,
            aborts_serialization,
            aborts_deadlock,
            aborts_user,
            ws_apply_retries,
            begins_delayed_by_holes,
            begins_total,
            commits_delayed_for_holes,
            ws_delivered,
            ws_discarded
        );
    }

    /// All counters as stable (name, value) pairs, in declaration order —
    /// the single source of truth for renderers (Prometheus, JSON) so a new
    /// counter can't be silently missing from exports.
    pub fn counters(&self) -> [(&'static str, u64); 12] {
        [
            ("commits_update", Self::get(&self.commits_update)),
            ("commits_readonly", Self::get(&self.commits_readonly)),
            ("aborts_validation", Self::get(&self.aborts_validation)),
            ("aborts_serialization", Self::get(&self.aborts_serialization)),
            ("aborts_deadlock", Self::get(&self.aborts_deadlock)),
            ("aborts_user", Self::get(&self.aborts_user)),
            ("ws_apply_retries", Self::get(&self.ws_apply_retries)),
            ("begins_delayed_by_holes", Self::get(&self.begins_delayed_by_holes)),
            ("begins_total", Self::get(&self.begins_total)),
            ("commits_delayed_for_holes", Self::get(&self.commits_delayed_for_holes)),
            ("ws_delivered", Self::get(&self.ws_delivered)),
            ("ws_discarded", Self::get(&self.ws_discarded)),
        ]
    }

    /// One-line human-readable summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "commits={} (upd={}, ro={}) aborts: validation={} serialization={} deadlock={} \
             | ws retries={} | holes: delayed-begins={}/{} ({:.1}%)",
            self.commits(),
            Self::get(&self.commits_update),
            Self::get(&self.commits_readonly),
            Self::get(&self.aborts_validation),
            Self::get(&self.aborts_serialization),
            Self::get(&self.aborts_deadlock),
            Self::get(&self.ws_apply_retries),
            Self::get(&self.begins_delayed_by_holes),
            Self::get(&self.begins_total),
            100.0 * self.hole_rate().max(0.0)
        )
    }
}

/// Wire form (telemetry scrapes): the 12 counter values in `counters()`
/// declaration order. A decoded `Metrics` is a snapshot — its atomics carry
/// the scraped values and can be merged like any local snapshot.
impl crate::wire::Wire for Metrics {
    fn encode(&self, out: &mut Vec<u8>) {
        for (_, value) in self.counters() {
            value.encode(out);
        }
    }

    fn decode(r: &mut crate::wire::WireReader<'_>) -> Result<Self, crate::wire::WireError> {
        let m = Metrics::new();
        macro_rules! read {
            ($($f:ident),*) => {
                $(m.$f.store(u64::decode(r)?, Ordering::Relaxed);)*
            };
        }
        // Must mirror `counters()` order exactly.
        read!(
            commits_update,
            commits_readonly,
            aborts_validation,
            aborts_serialization,
            aborts_deadlock,
            aborts_user,
            ws_apply_retries,
            begins_delayed_by_holes,
            begins_total,
            commits_delayed_for_holes,
            ws_delivered,
            ws_discarded
        );
        Ok(m)
    }
}

/// Derived protocol event rates (see [`Metrics::rates`]).
#[derive(Debug, Clone, Copy)]
pub struct Rates {
    /// Forced aborts over completed transactions ("far below 1 %", §6.1).
    pub abort_rate: f64,
    /// Begins delayed by commit-order holes ("around 4–8 %", §6.3).
    pub hole_rate: f64,
    /// Delivered writesets discarded at global validation.
    pub ws_discard_rate: f64,
}

impl std::fmt::Display for Rates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pct = |r: f64| if r.is_nan() { 0.0 } else { 100.0 * r };
        write!(
            f,
            "abort={:.2}% holes={:.2}% ws-discard={:.2}%",
            pct(self.abort_rate),
            pct(self.hole_rate),
            pct(self.ws_discard_rate)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_compute_correctly() {
        let m = Metrics::new();
        for _ in 0..98 {
            Metrics::inc(&m.commits_update);
        }
        Metrics::inc(&m.aborts_validation);
        Metrics::inc(&m.aborts_deadlock);
        assert_eq!(m.commits(), 98);
        assert_eq!(m.forced_aborts(), 2);
        assert!((m.abort_rate() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn hole_rate() {
        let m = Metrics::new();
        for _ in 0..100 {
            Metrics::inc(&m.begins_total);
        }
        for _ in 0..6 {
            Metrics::inc(&m.begins_delayed_by_holes);
        }
        assert!((m.hole_rate() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn rates_bundle_matches_scalar_helpers() {
        let m = Metrics::new();
        for _ in 0..50 {
            Metrics::inc(&m.commits_update);
            Metrics::inc(&m.begins_total);
            Metrics::inc(&m.ws_delivered);
        }
        Metrics::inc(&m.begins_delayed_by_holes);
        Metrics::inc(&m.ws_discarded);
        Metrics::inc(&m.aborts_validation);
        let r = m.rates();
        assert_eq!(r.abort_rate, m.abort_rate());
        assert_eq!(r.hole_rate, m.hole_rate());
        assert_eq!(r.ws_discard_rate, m.ws_discard_rate());
        assert!((r.ws_discard_rate - 0.02).abs() < 1e-12);
        let s = format!("{r}");
        assert!(s.contains("abort=") && s.contains("holes=") && s.contains("ws-discard="));
    }

    #[test]
    fn merge_accumulates() {
        let a = Metrics::new();
        let b = Metrics::new();
        Metrics::inc(&a.commits_update);
        Metrics::inc(&b.commits_update);
        Metrics::inc(&b.ws_delivered);
        a.merge(&b);
        assert_eq!(Metrics::get(&a.commits_update), 2);
        assert_eq!(Metrics::get(&a.ws_delivered), 1);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let m = Metrics::new();
        Metrics::inc(&m.commits_readonly);
        let s = m.summary();
        assert!(s.contains("commits=1"));
        assert!(s.contains("holes"));
    }

    #[test]
    fn wire_round_trips_every_counter() {
        use crate::wire::Wire;
        let m = Metrics::new();
        // Distinct value per counter so a field-order mixup can't cancel out.
        m.commits_update.store(1, Ordering::Relaxed);
        m.commits_readonly.store(2, Ordering::Relaxed);
        m.aborts_validation.store(3, Ordering::Relaxed);
        m.aborts_serialization.store(4, Ordering::Relaxed);
        m.aborts_deadlock.store(5, Ordering::Relaxed);
        m.aborts_user.store(6, Ordering::Relaxed);
        m.ws_apply_retries.store(7, Ordering::Relaxed);
        m.begins_delayed_by_holes.store(8, Ordering::Relaxed);
        m.begins_total.store(9, Ordering::Relaxed);
        m.commits_delayed_for_holes.store(10, Ordering::Relaxed);
        m.ws_delivered.store(11, Ordering::Relaxed);
        m.ws_discarded.store(12, Ordering::Relaxed);
        let bytes = m.to_wire();
        let back = Metrics::from_wire(&bytes).expect("decode");
        assert_eq!(back.counters(), m.counters());
        assert_eq!(back.to_wire(), bytes);
        for cut in 0..bytes.len() {
            assert!(Metrics::from_wire(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
