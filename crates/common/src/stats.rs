//! Online statistics and the paper's stopping rule.
//!
//! §6 of the paper: *"All tests were run until a 95/5 confidence interval was
//! achieved"* — i.e. the half-width of the 95 % confidence interval of the
//! mean is at most 5 % of the mean. [`OnlineStats`] implements Welford's
//! algorithm so the harness can check that rule incrementally without
//! storing samples.

/// Single-pass mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel collection).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample variance (n-1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// The 95 % confidence interval of the mean (normal approximation,
    /// z = 1.96 — fine for the hundreds of samples the harnesses collect).
    pub fn ci95(&self) -> ConfidenceInterval {
        let half = 1.96 * self.std_err();
        ConfidenceInterval { mean: self.mean(), half_width: half }
    }

    /// The paper's stopping rule: the 95 % CI half-width is within
    /// `tolerance` (e.g. 0.05 for "95/5") of the mean. Requires a minimum
    /// number of samples so early lucky streaks don't stop a run.
    pub fn ci_converged(&self, tolerance: f64, min_samples: u64) -> bool {
        if self.n < min_samples {
            return false;
        }
        let ci = self.ci95();
        if ci.mean == 0.0 {
            return true;
        }
        ci.half_width <= tolerance * ci.mean.abs()
    }
}

/// A symmetric confidence interval around a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    pub mean: f64,
    pub half_width: f64,
}

impl ConfidenceInterval {
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Relative half-width (NaN when the mean is zero).
    pub fn relative(&self) -> f64 {
        self.half_width / self.mean.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_reference() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &samples {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4.0; sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut all = OnlineStats::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0 + 20.0;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_noop() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        a.record(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn ci_converges_with_low_variance() {
        let mut s = OnlineStats::new();
        for _ in 0..100 {
            s.record(10.0);
        }
        assert!(s.ci_converged(0.05, 50));
        assert_eq!(s.ci95().half_width, 0.0);
    }

    #[test]
    fn ci_does_not_converge_below_min_samples() {
        let mut s = OnlineStats::new();
        for _ in 0..10 {
            s.record(10.0);
        }
        assert!(!s.ci_converged(0.05, 50));
    }

    #[test]
    fn high_variance_needs_more_samples() {
        let mut s = OnlineStats::new();
        // Alternating extremes: relative CI stays wide with few samples.
        for i in 0..20 {
            s.record(if i % 2 == 0 { 1.0 } else { 100.0 });
        }
        assert!(!s.ci_converged(0.05, 10));
        let ci = s.ci95();
        assert!(ci.relative() > 0.05);
        assert!(ci.low() < ci.mean && ci.mean < ci.high());
    }

    #[test]
    fn empty_stats_report_nan_mean() {
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert!(s.std_err().is_nan());
    }
}
