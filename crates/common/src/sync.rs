//! A small counting semaphore (std has none; crossbeam has none).
//!
//! Used to model bounded service capacity: a database replica with `K`
//! servers (CPU + disk channels) executes at most `K` costed operations
//! concurrently, which is what turns injected service times into real
//! queueing — and therefore into the saturating response-time curves of the
//! paper's figures.

use parking_lot::{Condvar, Mutex};

#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    cond: Condvar,
}

impl Semaphore {
    pub fn new(permits: usize) -> Semaphore {
        assert!(permits > 0, "a semaphore needs at least one permit");
        Semaphore { permits: Mutex::new(permits), cond: Condvar::new() }
    }

    /// Block until a permit is available, then take it.
    pub fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut p = self.permits.lock();
        while *p == 0 {
            self.cond.wait(&mut p);
        }
        *p -= 1;
        SemaphoreGuard { sem: self }
    }

    /// Take a permit if one is available right now.
    pub fn try_acquire(&self) -> Option<SemaphoreGuard<'_>> {
        let mut p = self.permits.lock();
        if *p == 0 {
            None
        } else {
            *p -= 1;
            Some(SemaphoreGuard { sem: self })
        }
    }

    pub fn available(&self) -> usize {
        *self.permits.lock()
    }

    fn release(&self) {
        let mut p = self.permits.lock();
        *p += 1;
        drop(p);
        self.cond.notify_one();
    }
}

/// RAII permit.
#[derive(Debug)]
pub struct SemaphoreGuard<'a> {
    sem: &'a Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        self.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn permits_are_counted() {
        let s = Semaphore::new(2);
        let a = s.acquire();
        let b = s.acquire();
        assert_eq!(s.available(), 0);
        assert!(s.try_acquire().is_none());
        drop(a);
        assert_eq!(s.available(), 1);
        let c = s.try_acquire();
        assert!(c.is_some());
        drop(b);
        drop(c);
        assert_eq!(s.available(), 2);
    }

    #[test]
    fn concurrency_is_bounded() {
        let s = Arc::new(Semaphore::new(3));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..12 {
            let s = Arc::clone(&s);
            let in_flight = Arc::clone(&in_flight);
            let max_seen = Arc::clone(&max_seen);
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let _g = s.acquire();
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_micros(200));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(max_seen.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    #[should_panic(expected = "at least one permit")]
    fn zero_permits_rejected() {
        let _ = Semaphore::new(0);
    }
}
