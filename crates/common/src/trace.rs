//! Transaction-lifecycle tracing: per-stage latency breakdown.
//!
//! Every transaction can carry a [`TxTrace`] — a tiny `Copy` value holding
//! one monotonic origin instant plus one nanosecond offset per pipeline
//! [`Stage`].  The stages mirror the SRCA-Rep pipeline from the paper:
//!
//! ```text
//! begin_wait -> execute -> ws_extract -> gcs_deliver -> validate_queue
//!            -> apply -> commit                         (+ total)
//! ```
//!
//! * `begin_wait` — time a `begin` stalled on open commit-order holes
//!   (adjustment 3, §5.3 of the paper).
//! * `execute` — client statement execution on the local snapshot.
//! * `ws_extract` — writeset extraction at commit request time.
//! * `gcs_deliver` — total-order multicast latency (send → deliver).
//! * `validate_queue` — time between delivery/validation and the moment the
//!   writeset starts to apply/commit (the `tocommit`-queue wait).
//! * `apply` — applying the writeset (remote replicas; ~0 locally since the
//!   local transaction already holds its updates).
//! * `commit` — the final database commit call, including the hole rule wait.
//! * `total` — begin to durable commit, end to end.
//!
//! Marks are recorded with [`TxTrace::mark`] as each stage *completes*; a
//! stage's duration is the gap back to the latest earlier mark (or to the
//! origin).  Unset stages are skipped, so read-only transactions — which
//! never see the multicast stages — still produce correct `execute`/`total`
//! durations.
//!
//! [`StageStats`] aggregates traces from many threads into one log-bucketed
//! [`Histogram`] per stage (recorded in **milliseconds**, like every other
//! histogram in the workspace).
//!
//! The whole module is feature-gated: building with
//! `--no-default-features` (dropping the `trace` feature) swaps every type
//! for a zero-sized no-op with the same API, so call sites compile away.

#[cfg(feature = "trace")]
use crate::histogram::Histogram;
#[cfg(feature = "trace")]
use parking_lot::Mutex;
use std::fmt;
use std::time::Instant;

/// Pipeline stages of a replicated transaction, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// `begin` blocked waiting for commit-order holes to drain.
    BeginWait = 0,
    /// Client statements executed against the local snapshot.
    Execute = 1,
    /// Writeset extracted at commit request.
    WsExtract = 2,
    /// Writeset delivered by the total-order multicast.
    GcsDeliver = 3,
    /// Validated writeset waited in the tocommit queue.
    ValidateQueue = 4,
    /// Writeset applied to the database.
    Apply = 5,
    /// Final commit call returned (includes the hole rule wait).
    Commit = 6,
    /// End-to-end: begin to durable commit.
    Total = 7,
}

/// Number of [`Stage`] variants (size of per-stage arrays).
pub const STAGE_COUNT: usize = 8;

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::BeginWait,
        Stage::Execute,
        Stage::WsExtract,
        Stage::GcsDeliver,
        Stage::ValidateQueue,
        Stage::Apply,
        Stage::Commit,
        Stage::Total,
    ];

    /// Stable lowercase name used in breakdown tables.
    pub fn name(self) -> &'static str {
        match self {
            Stage::BeginWait => "begin_wait",
            Stage::Execute => "execute",
            Stage::WsExtract => "ws_extract",
            Stage::GcsDeliver => "gcs_deliver",
            Stage::ValidateQueue => "validate_queue",
            Stage::Apply => "apply",
            Stage::Commit => "commit",
            Stage::Total => "total",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(feature = "trace")]
const UNSET: u64 = u64::MAX;

// ======================================================================
// Real implementation (`trace` feature on — the default).
// ======================================================================

/// Per-transaction stage timeline.  `Copy`, 72 bytes, no allocation: cheap
/// enough to thread through the hot commit path and drop on abort.
#[cfg(feature = "trace")]
#[derive(Debug, Clone, Copy)]
pub struct TxTrace {
    origin: Instant,
    /// Nanoseconds from `origin` at which each stage *completed*;
    /// `UNSET` if the stage never ran.
    marks: [u64; STAGE_COUNT],
}

#[cfg(feature = "trace")]
impl TxTrace {
    /// Start a trace now; the transaction's `begin` is the time origin.
    #[inline]
    pub fn start() -> TxTrace {
        TxTrace::starting_at(Instant::now())
    }

    /// Start a trace with an explicit origin (e.g. a message send instant).
    #[inline]
    pub fn starting_at(origin: Instant) -> TxTrace {
        TxTrace { origin, marks: [UNSET; STAGE_COUNT] }
    }

    /// Record that `stage` completed now.
    #[inline]
    pub fn mark(&mut self, stage: Stage) {
        self.mark_at(stage, Instant::now());
    }

    /// Record that `stage` completed at `at` (for instants carried inside
    /// multicast messages, which may predate the call).
    #[inline]
    pub fn mark_at(&mut self, stage: Stage, at: Instant) {
        self.marks[stage as usize] =
            at.saturating_duration_since(self.origin).as_nanos().min(u64::MAX as u128 - 1) as u64;
    }

    /// Mark [`Stage::Total`] and return the trace, ready for
    /// [`StageStats::absorb`].
    #[inline]
    pub fn finish(mut self) -> TxTrace {
        self.mark(Stage::Total);
        self
    }

    /// The trace origin (the transaction's begin instant).
    #[inline]
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Offset in nanoseconds from origin to `stage`'s completion, if marked.
    #[inline]
    pub fn offset_ns(&self, stage: Stage) -> Option<u64> {
        match self.marks[stage as usize] {
            UNSET => None,
            ns => Some(ns),
        }
    }

    /// Duration of `stage` in nanoseconds: the gap from the latest earlier
    /// mark (or the origin, for the first mark) to `stage`'s mark.
    /// [`Stage::Total`] measures from the origin outright.
    pub fn stage_ns(&self, stage: Stage) -> Option<u64> {
        let end = self.offset_ns(stage)?;
        if stage == Stage::Total {
            return Some(end);
        }
        let prev =
            self.marks[..stage as usize].iter().copied().filter(|&m| m != UNSET).max().unwrap_or(0);
        Some(end.saturating_sub(prev))
    }

    /// True if every stage in `stages` has been marked.
    pub fn has_all(&self, stages: &[Stage]) -> bool {
        stages.iter().all(|&s| self.marks[s as usize] != UNSET)
    }
}

#[cfg(feature = "trace")]
impl Default for TxTrace {
    fn default() -> Self {
        TxTrace::start()
    }
}

/// Thread-safe per-replica aggregation of [`TxTrace`]s: one latency
/// [`Histogram`] (milliseconds) per [`Stage`].
#[cfg(feature = "trace")]
#[derive(Debug, Default)]
pub struct StageStats {
    hists: Mutex<[Histogram; STAGE_COUNT]>,
}

#[cfg(feature = "trace")]
impl StageStats {
    pub fn new() -> StageStats {
        StageStats::default()
    }

    /// Fold a finished trace into the per-stage histograms.  Only stages the
    /// trace actually marked are recorded.
    pub fn absorb(&self, trace: &TxTrace) {
        let mut hists = self.hists.lock();
        for stage in Stage::ALL {
            if let Some(ns) = trace.stage_ns(stage) {
                hists[stage as usize].record(ns as f64 / 1e6);
            }
        }
    }

    /// Record a single stage duration directly (milliseconds), for stages
    /// measured outside a full [`TxTrace`] — e.g. remote-replica apply.
    pub fn record_ms(&self, stage: Stage, ms: f64) {
        self.hists.lock()[stage as usize].record(ms);
    }

    /// Record a single stage duration directly from a [`std::time::Duration`].
    pub fn record_duration(&self, stage: Stage, d: std::time::Duration) {
        self.record_ms(stage, d.as_secs_f64() * 1e3);
    }

    /// Merge another registry into this one (for cluster-wide rollups).
    pub fn merge(&self, other: &StageStats) {
        let theirs = other.snapshot();
        let mut hists = self.hists.lock();
        for stage in Stage::ALL {
            hists[stage as usize].merge(&theirs.hists[stage as usize]);
        }
    }

    /// Point-in-time copy of the per-stage histograms.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot { hists: self.hists.lock().clone() }
    }
}

/// Owned copy of a [`StageStats`] registry, detached from its locks —
/// what [`StageStats::snapshot`] returns and what reports embed.
#[cfg(feature = "trace")]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageSnapshot {
    hists: [Histogram; STAGE_COUNT],
}

#[cfg(feature = "trace")]
impl StageSnapshot {
    /// Number of samples recorded for `stage`.
    pub fn count(&self, stage: Stage) -> u64 {
        self.hists[stage as usize].count()
    }

    /// Latency quantile for `stage` in milliseconds (NaN when empty).
    pub fn quantile(&self, stage: Stage, q: f64) -> f64 {
        self.hists[stage as usize].quantile(q)
    }

    /// Median latency for `stage` in milliseconds (NaN when empty).
    pub fn median(&self, stage: Stage) -> f64 {
        self.hists[stage as usize].median()
    }

    /// Samples for `stage` beyond the histogram's tracked range — tail
    /// quantiles for the stage are lower bounds when this is non-zero.
    pub fn overflow(&self, stage: Stage) -> u64 {
        self.hists[stage as usize].overflow()
    }

    /// Merge another snapshot into this one.
    pub fn merge(&mut self, other: &StageSnapshot) {
        for stage in Stage::ALL {
            self.hists[stage as usize].merge(&other.hists[stage as usize]);
        }
    }

    /// True when no stage has any samples (e.g. tracing compiled out).
    pub fn is_empty(&self) -> bool {
        Stage::ALL.iter().all(|&s| self.count(s) == 0)
    }

    /// Fixed-width per-stage breakdown table (p50/p95/p99 in ms), the
    /// standard footer of the fig5/fig6/fig7 harnesses:
    ///
    /// ```text
    /// stage            count    p50 ms    p95 ms    p99 ms
    /// begin_wait          12     0.102     0.471     0.802
    /// ...
    /// ```
    pub fn breakdown_table(&self) -> String {
        let mut out = String::with_capacity(64 * (STAGE_COUNT + 1));
        out.push_str(&format!(
            "{:<15} {:>8} {:>9} {:>9} {:>9}\n",
            "stage", "count", "p50 ms", "p95 ms", "p99 ms"
        ));
        for stage in Stage::ALL {
            let n = self.count(stage);
            if n == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<15} {:>8} {:>9.3} {:>9.3} {:>9.3}\n",
                stage.name(),
                n,
                self.quantile(stage, 0.50),
                self.quantile(stage, 0.95),
                self.quantile(stage, 0.99),
            ));
        }
        out
    }
}

// ======================================================================
// No-op implementation (`trace` feature off): same API, zero cost.
// ======================================================================

#[cfg(not(feature = "trace"))]
#[derive(Debug, Clone, Copy, Default)]
pub struct TxTrace;

#[cfg(not(feature = "trace"))]
impl TxTrace {
    #[inline(always)]
    pub fn start() -> TxTrace {
        TxTrace
    }
    #[inline(always)]
    pub fn starting_at(_origin: Instant) -> TxTrace {
        TxTrace
    }
    #[inline(always)]
    pub fn mark(&mut self, _stage: Stage) {}
    #[inline(always)]
    pub fn mark_at(&mut self, _stage: Stage, _at: Instant) {}
    #[inline(always)]
    pub fn finish(self) -> TxTrace {
        self
    }
    #[inline(always)]
    pub fn offset_ns(&self, _stage: Stage) -> Option<u64> {
        None
    }
    #[inline(always)]
    pub fn stage_ns(&self, _stage: Stage) -> Option<u64> {
        None
    }
    #[inline(always)]
    pub fn has_all(&self, _stages: &[Stage]) -> bool {
        false
    }
}

#[cfg(not(feature = "trace"))]
#[derive(Debug, Default)]
pub struct StageStats;

#[cfg(not(feature = "trace"))]
impl StageStats {
    pub fn new() -> StageStats {
        StageStats
    }
    #[inline(always)]
    pub fn absorb(&self, _trace: &TxTrace) {}
    #[inline(always)]
    pub fn record_ms(&self, _stage: Stage, _ms: f64) {}
    #[inline(always)]
    pub fn record_duration(&self, _stage: Stage, _d: std::time::Duration) {}
    pub fn merge(&self, _other: &StageStats) {}
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot
    }
}

#[cfg(not(feature = "trace"))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSnapshot;

#[cfg(not(feature = "trace"))]
impl StageSnapshot {
    pub fn count(&self, _stage: Stage) -> u64 {
        0
    }
    pub fn quantile(&self, _stage: Stage, _q: f64) -> f64 {
        f64::NAN
    }
    pub fn median(&self, _stage: Stage) -> f64 {
        f64::NAN
    }
    pub fn overflow(&self, _stage: Stage) -> u64 {
        0
    }
    pub fn merge(&mut self, _other: &StageSnapshot) {}
    pub fn is_empty(&self) -> bool {
        true
    }
    pub fn breakdown_table(&self) -> String {
        String::from("(tracing compiled out: build with the `trace` feature)\n")
    }
}

// ======================================================================
// Wire form (telemetry scrapes).
// ======================================================================

/// Sparse canonical encoding shared by both cfg variants: a `Vec` of
/// `(stage_tag, histogram)` pairs for the stages with at least one sample,
/// in strictly increasing stage order. The trace-off build encodes the
/// empty list and decodes-and-discards, so mixed-feature deployments
/// exchange frames without either side panicking.
impl crate::wire::Wire for StageSnapshot {
    #[cfg(feature = "trace")]
    fn encode(&self, out: &mut Vec<u8>) {
        let nonempty: Vec<(u8, Histogram)> = Stage::ALL
            .iter()
            .filter(|&&s| self.count(s) > 0)
            .map(|&s| (s as u8, self.hists[s as usize].clone()))
            .collect();
        nonempty.encode(out);
    }

    #[cfg(not(feature = "trace"))]
    fn encode(&self, out: &mut Vec<u8>) {
        Vec::<(u8, crate::histogram::Histogram)>::new().encode(out);
    }

    fn decode(r: &mut crate::wire::WireReader<'_>) -> Result<Self, crate::wire::WireError> {
        use crate::wire::WireError;
        let pairs = Vec::<(u8, crate::histogram::Histogram)>::decode(r)?;
        let mut last: Option<u8> = None;
        #[allow(unused_mut)]
        let mut snap = StageSnapshot::default();
        for (tag, hist) in pairs {
            if tag as usize >= STAGE_COUNT {
                return Err(WireError::Corrupt("stage tag"));
            }
            if last.is_some_and(|l| tag <= l) {
                return Err(WireError::Corrupt("stage order"));
            }
            if hist.count() == 0 {
                return Err(WireError::Corrupt("stage empty histogram"));
            }
            last = Some(tag);
            #[cfg(feature = "trace")]
            {
                snap.hists[tag as usize] = hist;
            }
            #[cfg(not(feature = "trace"))]
            let _ = hist;
        }
        Ok(snap)
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn marks_accumulate_in_order() {
        let t0 = Instant::now();
        let mut tr = TxTrace::starting_at(t0);
        tr.mark_at(Stage::BeginWait, t0 + Duration::from_millis(2));
        tr.mark_at(Stage::Execute, t0 + Duration::from_millis(10));
        tr.mark_at(Stage::WsExtract, t0 + Duration::from_millis(11));
        tr.mark_at(Stage::GcsDeliver, t0 + Duration::from_millis(15));
        tr.mark_at(Stage::ValidateQueue, t0 + Duration::from_millis(18));
        tr.mark_at(Stage::Apply, t0 + Duration::from_millis(18));
        tr.mark_at(Stage::Commit, t0 + Duration::from_millis(20));
        let tr = {
            let mut t = tr;
            t.mark_at(Stage::Total, t0 + Duration::from_millis(20));
            t
        };

        assert_eq!(tr.stage_ns(Stage::BeginWait), Some(2_000_000));
        assert_eq!(tr.stage_ns(Stage::Execute), Some(8_000_000));
        assert_eq!(tr.stage_ns(Stage::WsExtract), Some(1_000_000));
        assert_eq!(tr.stage_ns(Stage::GcsDeliver), Some(4_000_000));
        assert_eq!(tr.stage_ns(Stage::ValidateQueue), Some(3_000_000));
        assert_eq!(tr.stage_ns(Stage::Apply), Some(0));
        assert_eq!(tr.stage_ns(Stage::Commit), Some(2_000_000));
        assert_eq!(tr.stage_ns(Stage::Total), Some(20_000_000));
    }

    #[test]
    fn skipped_stages_bridge_correctly() {
        // Read-only path: no ws_extract/gcs/validate/apply.
        let t0 = Instant::now();
        let mut tr = TxTrace::starting_at(t0);
        tr.mark_at(Stage::Execute, t0 + Duration::from_millis(5));
        tr.mark_at(Stage::Commit, t0 + Duration::from_millis(6));
        tr.mark_at(Stage::Total, t0 + Duration::from_millis(6));

        assert_eq!(tr.stage_ns(Stage::BeginWait), None);
        // Execute bridges back to the origin (no begin_wait mark).
        assert_eq!(tr.stage_ns(Stage::Execute), Some(5_000_000));
        // Commit bridges over the unset multicast stages to execute.
        assert_eq!(tr.stage_ns(Stage::Commit), Some(1_000_000));
        assert!(!tr.has_all(&[Stage::GcsDeliver]));
        assert!(tr.has_all(&[Stage::Execute, Stage::Commit, Stage::Total]));
    }

    #[test]
    fn stats_absorb_merge_and_report() {
        let t0 = Instant::now();
        let stats = StageStats::new();
        for i in 1..=50u64 {
            let mut tr = TxTrace::starting_at(t0);
            tr.mark_at(Stage::Execute, t0 + Duration::from_millis(i));
            tr.mark_at(Stage::Commit, t0 + Duration::from_millis(i + 1));
            tr.mark_at(Stage::Total, t0 + Duration::from_millis(i + 1));
            stats.absorb(&tr);
        }
        let other = StageStats::new();
        other.record_ms(Stage::Apply, 3.0);
        stats.merge(&other);

        let snap = stats.snapshot();
        assert_eq!(snap.count(Stage::Execute), 50);
        assert_eq!(snap.count(Stage::Apply), 1);
        assert_eq!(snap.count(Stage::BeginWait), 0);
        let p50 = snap.median(Stage::Execute);
        assert!((20.0..=35.0).contains(&p50), "p50 = {p50}");

        let table = snap.breakdown_table();
        assert!(table.contains("execute"));
        assert!(table.contains("apply"));
        assert!(!table.contains("begin_wait"), "empty stages are omitted:\n{table}");
    }

    #[test]
    fn unmarked_trace_records_nothing() {
        let stats = StageStats::new();
        stats.absorb(&TxTrace::start());
        assert!(stats.snapshot().is_empty());
    }

    use crate::wire::{Wire, WireError};

    fn round_trip(snap: &StageSnapshot) {
        let bytes = snap.to_wire();
        let back = StageSnapshot::from_wire(&bytes).expect("decode");
        assert_eq!(&back, snap);
        assert_eq!(back.to_wire(), bytes, "re-encode must be bit-identical");
    }

    #[test]
    fn wire_round_trips() {
        round_trip(&StageSnapshot::default());
        let stats = StageStats::new();
        stats.record_ms(Stage::Execute, 12.5);
        stats.record_ms(Stage::Execute, 1.25);
        stats.record_ms(Stage::Commit, 0.4);
        stats.record_ms(Stage::Total, 14.0);
        let snap = stats.snapshot();
        round_trip(&snap);
        let back = StageSnapshot::from_wire(&snap.to_wire()).unwrap();
        assert_eq!(back.count(Stage::Execute), 2);
        assert_eq!(back.median(Stage::Execute).to_bits(), snap.median(Stage::Execute).to_bits());
    }

    #[test]
    fn wire_truncation_rejected() {
        let stats = StageStats::new();
        stats.record_ms(Stage::Apply, 3.0);
        stats.record_ms(Stage::Total, 9.0);
        let bytes = stats.snapshot().to_wire();
        for cut in 0..bytes.len() {
            assert!(StageSnapshot::from_wire(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wire_non_canonical_rejected() {
        let mut one = crate::histogram::Histogram::new();
        one.record(1.0);
        let frame = |pairs: &[(u8, crate::histogram::Histogram)]| {
            let mut out = Vec::new();
            pairs.to_vec().encode(&mut out);
            out
        };
        let got = StageSnapshot::from_wire(&frame(&[(STAGE_COUNT as u8, one.clone())]));
        assert_eq!(got.unwrap_err(), WireError::Corrupt("stage tag"));
        let got = StageSnapshot::from_wire(&frame(&[(3, one.clone()), (1, one.clone())]));
        assert_eq!(got.unwrap_err(), WireError::Corrupt("stage order"));
        let empty = crate::histogram::Histogram::new();
        let got = StageSnapshot::from_wire(&frame(&[(0, empty)]));
        assert_eq!(got.unwrap_err(), WireError::Corrupt("stage empty histogram"));
    }
}
