//! Transport-level telemetry: what a *networked* GCS backend counts.
//!
//! The sim backend never needed these — its "network" is a lock-protected
//! queue — but a real socket tier has failure modes of its own: frames that
//! fail to decode, connections that die and get evicted, bytes that tell
//! you whether the sequencer or the workload is the bottleneck. A
//! [`TransportSnapshot`] is the point-in-time bundle a backend reports
//! through `Cast::transport()` / `Group::transport()`, embedded in
//! `NodeStatus` and rolled up cluster-wide like the protocol gauges.
//!
//! Counters are cumulative since the endpoint connected; the two gauge
//! readings carry current + high-water like every other gauge. All fields
//! are plain data in both feature configurations (the *updating* happens
//! through atomics owned by the backend, which may feature-gate them).

use crate::gauges::GaugeReading;
use crate::wire::{Wire, WireError, WireReader};

/// Point-in-time transport counters/gauges for one endpoint (or the summed
/// rollup over several).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Frames read off the wire (total-order, FIFO, and view frames).
    pub frames_in: u64,
    /// Payload + header bytes read off the wire.
    pub bytes_in: u64,
    /// Frames written to the wire (multicast submissions).
    pub frames_out: u64,
    /// Payload + header bytes written to the wire.
    pub bytes_out: u64,
    /// Delivered payloads whose message decode failed — each one kills the
    /// endpoint (total decode discipline: corrupt frames are errors, never
    /// panics), so non-zero here explains an eviction.
    pub decode_failures: u64,
    /// Joins by a replica id that had joined before (incarnation > 0) —
    /// restart recoveries observed by this group handle.
    pub reconnects: u64,
    /// Endpoints this process observed dying (socket error, eviction, or
    /// deliberate leave/crash).
    pub evictions: u64,
    /// Multicasts submitted but not yet sequenced (the `HELD_SEND_SEQ`
    /// window: send accepted, authoritative sequence number still pending).
    pub pending_sends: GaugeReading,
    /// Deliveries decoded by the reader but not yet received by the
    /// endpoint (the receive-queue depth).
    pub recv_queue: GaugeReading,
}

impl TransportSnapshot {
    /// Stable (name, value) pairs for the cumulative counters, in
    /// declaration order — the single source of truth for renderers.
    pub fn counters(&self) -> [(&'static str, u64); 7] {
        [
            ("frames_in", self.frames_in),
            ("bytes_in", self.bytes_in),
            ("frames_out", self.frames_out),
            ("bytes_out", self.bytes_out),
            ("decode_failures", self.decode_failures),
            ("reconnects", self.reconnects),
            ("evictions", self.evictions),
        ]
    }

    /// Stable (name, reading) pairs for the gauges.
    pub fn gauges(&self) -> [(&'static str, GaugeReading); 2] {
        [("pending_sends", self.pending_sends), ("recv_queue", self.recv_queue)]
    }

    /// Fold another snapshot in: counters and gauge currents add,
    /// high-waters take the max — same rollup rule as `GaugeSnapshot`.
    pub fn absorb(&mut self, other: &TransportSnapshot) {
        self.frames_in += other.frames_in;
        self.bytes_in += other.bytes_in;
        self.frames_out += other.frames_out;
        self.bytes_out += other.bytes_out;
        self.decode_failures += other.decode_failures;
        self.reconnects += other.reconnects;
        self.evictions += other.evictions;
        for (mine, theirs) in [
            (&mut self.pending_sends, other.pending_sends),
            (&mut self.recv_queue, other.recv_queue),
        ] {
            mine.current += theirs.current;
            mine.high_water = mine.high_water.max(theirs.high_water);
        }
    }

    /// True when nothing was ever counted (e.g. the sim backend's default).
    pub fn is_empty(&self) -> bool {
        *self == TransportSnapshot::default()
    }
}

impl Wire for TransportSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        for (_, value) in self.counters() {
            value.encode(out);
        }
        self.pending_sends.encode(out);
        self.recv_queue.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(TransportSnapshot {
            frames_in: u64::decode(r)?,
            bytes_in: u64::decode(r)?,
            frames_out: u64::decode(r)?,
            bytes_out: u64::decode(r)?,
            decode_failures: u64::decode(r)?,
            reconnects: u64::decode(r)?,
            evictions: u64::decode(r)?,
            pending_sends: GaugeReading::decode(r)?,
            recv_queue: GaugeReading::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters_and_maxes_high_water() {
        let mut a = TransportSnapshot {
            frames_in: 10,
            bytes_in: 100,
            pending_sends: GaugeReading { current: 1, high_water: 4 },
            ..TransportSnapshot::default()
        };
        let b = TransportSnapshot {
            frames_in: 5,
            evictions: 1,
            pending_sends: GaugeReading { current: 2, high_water: 2 },
            ..TransportSnapshot::default()
        };
        a.absorb(&b);
        assert_eq!(a.frames_in, 15);
        assert_eq!(a.bytes_in, 100);
        assert_eq!(a.evictions, 1);
        assert_eq!(a.pending_sends, GaugeReading { current: 3, high_water: 4 });
        assert!(!a.is_empty());
        assert!(TransportSnapshot::default().is_empty());
    }

    #[test]
    fn wire_round_trips() {
        let snap = TransportSnapshot {
            frames_in: 1,
            bytes_in: 2,
            frames_out: 3,
            bytes_out: 4,
            decode_failures: 5,
            reconnects: 6,
            evictions: 7,
            pending_sends: GaugeReading { current: 8, high_water: 9 },
            recv_queue: GaugeReading { current: 10, high_water: 11 },
        };
        let bytes = snap.to_wire();
        let back = TransportSnapshot::from_wire(&bytes).expect("decode");
        assert_eq!(back, snap);
        assert_eq!(back.to_wire(), bytes);
        for cut in 0..bytes.len() {
            assert!(TransportSnapshot::from_wire(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
