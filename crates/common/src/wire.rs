//! Dependency-free length-prefixed binary codec for everything that
//! crosses a process boundary.
//!
//! The in-process GCS tier ships `Arc`s; the TCP tier must ship bytes. This
//! module is the single wire format both the replication protocol
//! (`ReplMsg`, writesets, view changes) and the client driver frames encode
//! through, so "no `Arc` sharing across the boundary" is enforced by
//! construction: [`Wire::decode`] can only ever build fresh values.
//!
//! Format: little-endian fixed-width integers, `u32` length prefixes for
//! strings and sequences, one `u8` discriminant per enum variant. Frames on
//! a stream are `u32`-LE byte length followed by the payload, capped at
//! [`MAX_FRAME`]. Decoding is total: malformed input yields [`WireError`],
//! never a panic or an attacker-sized allocation (length prefixes are
//! validated against the bytes actually present before reserving).

use std::fmt;
use std::io::{self, Read, Write};

/// Hard upper bound on a single frame, applied on both sides of a stream.
/// Generous for writesets (a full TPC-W cart update is a few KiB) while
/// bounding what a corrupt length prefix can make a peer allocate.
pub const MAX_FRAME: usize = 64 << 20;

/// Why a decode failed. Decoding never panics; every malformed input maps
/// to one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// Structurally invalid bytes (bad discriminant, non-UTF-8 string, ...).
    Corrupt(&'static str),
    /// A declared length exceeds [`MAX_FRAME`] or the bytes on hand.
    TooLarge,
    /// Bytes were left over after the outermost value was decoded.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("wire: truncated input"),
            WireError::Corrupt(what) => write!(f, "wire: corrupt input ({what})"),
            WireError::TooLarge => f.write_str("wire: declared length too large"),
            WireError::TrailingBytes => f.write_str("wire: trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Cursor over a byte slice being decoded.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// A length prefix for a sequence of elements each at least
    /// `min_elem_size` bytes. Rejects prefixes that could not possibly be
    /// satisfied by the remaining bytes, so `Vec::with_capacity` on the
    /// result cannot be attacker-amplified.
    pub fn seq_len(&mut self, min_elem_size: usize) -> Result<usize, WireError> {
        let n = u32::decode(self)? as usize;
        if n > MAX_FRAME || n.saturating_mul(min_elem_size.max(1)) > self.remaining() {
            return Err(WireError::TooLarge);
        }
        Ok(n)
    }
}

/// A value with a canonical binary encoding.
///
/// Implementations must round-trip: `decode(encode(v)) == v`, bit-identical
/// on re-encode. `decode` must be total (no panics, no unbounded
/// allocation) — transport code feeds it bytes straight off a socket.
pub trait Wire: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a complete buffer; trailing bytes are an error.
    fn from_wire(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        Ok(v)
    }
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(<$t>::from_le_bytes(r.take_array()?))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i64);

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(r.take_array()?)))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        // Literal tag bytes, mirrored by `decode`'s arms: the lint's
        // wire-tag registry checks the two sides stay in sync.
        match self {
            false => out.push(0),
            true => out.push(1),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("bool")),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len(1)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("utf-8"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Corrupt("option tag")),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

macro_rules! wire_id {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                self.raw().encode(out);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(Self::new(u64::decode(r)?))
            }
        }
    )*};
}

wire_id!(
    crate::ids::ReplicaId,
    crate::ids::TxnId,
    crate::ids::GlobalTid,
    crate::ids::ClientId,
    crate::ids::SessionId,
    crate::ids::MemberId
);

impl Wire for crate::ids::XactId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.origin.encode(out);
        self.seq.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(crate::ids::XactId { origin: crate::ids::ReplicaId::decode(r)?, seq: u64::decode(r)? })
    }
}

impl Wire for crate::error::AbortReason {
    fn encode(&self, out: &mut Vec<u8>) {
        use crate::error::AbortReason::*;
        out.push(match self {
            SerializationFailure => 0,
            Deadlock => 1,
            ValidationFailure => 2,
            UserRequested => 3,
            ReplicaCrashed => 4,
            Shutdown => 5,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        use crate::error::AbortReason::*;
        Ok(match u8::decode(r)? {
            0 => SerializationFailure,
            1 => Deadlock,
            2 => ValidationFailure,
            3 => UserRequested,
            4 => ReplicaCrashed,
            5 => Shutdown,
            _ => return Err(WireError::Corrupt("abort reason tag")),
        })
    }
}

/// `TypeMismatch::expected` is a `&'static str`; the decoder re-interns the
/// transported string against the finite set the engine actually emits, so
/// the round trip is exact for every error the engine can produce (unknown
/// strings — only possible from a corrupt or newer peer — degrade to a
/// generic description rather than failing the decode).
fn intern_expected(s: &str) -> &'static str {
    match s {
        "int" => "int",
        "float" => "float",
        "text" => "text",
        "non-null primary key" => "non-null primary key",
        _ => "a value of the column's type",
    }
}

impl Wire for crate::error::DbError {
    fn encode(&self, out: &mut Vec<u8>) {
        use crate::error::DbError::*;
        match self {
            Aborted(reason) => {
                out.push(0);
                reason.encode(out);
            }
            UnknownTable(name) => {
                out.push(1);
                name.encode(out);
            }
            UnknownColumn(name) => {
                out.push(2);
                name.encode(out);
            }
            TypeMismatch { column, expected } => {
                out.push(3);
                column.encode(out);
                expected.to_string().encode(out);
            }
            DuplicateKey(key) => {
                out.push(4);
                key.encode(out);
            }
            NoSuchTransaction => out.push(5),
            Parse(msg) => {
                out.push(6);
                msg.encode(out);
            }
            Unsupported(msg) => {
                out.push(7);
                msg.encode(out);
            }
            ConnectionLost { in_doubt } => {
                out.push(8);
                in_doubt.encode(out);
            }
            Unavailable => out.push(9),
            Internal(msg) => {
                out.push(10);
                msg.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        use crate::error::DbError::*;
        Ok(match u8::decode(r)? {
            0 => Aborted(crate::error::AbortReason::decode(r)?),
            1 => UnknownTable(String::decode(r)?),
            2 => UnknownColumn(String::decode(r)?),
            3 => TypeMismatch {
                column: String::decode(r)?,
                expected: intern_expected(&String::decode(r)?),
            },
            4 => DuplicateKey(String::decode(r)?),
            5 => NoSuchTransaction,
            6 => Parse(String::decode(r)?),
            7 => Unsupported(String::decode(r)?),
            8 => ConnectionLost { in_doubt: bool::decode(r)? },
            9 => Unavailable,
            10 => Internal(String::decode(r)?),
            _ => return Err(WireError::Corrupt("db error tag")),
        })
    }
}

/// Write one length-prefixed frame (`u32`-LE byte length, then payload).
pub fn write_frame<W: Write, T: Wire>(w: &mut W, msg: &T) -> io::Result<()> {
    write_frame_counted(w, msg).map(|_| ())
}

/// [`write_frame`], returning the bytes put on the wire (header + payload)
/// so transport instrumentation can count traffic without re-encoding.
pub fn write_frame_counted<W: Write, T: Wire>(w: &mut W, msg: &T) -> io::Result<u64> {
    let payload = msg.to_wire();
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, WireError::TooLarge));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(4 + payload.len() as u64)
}

/// Read one length-prefixed frame and decode it. A malformed frame maps to
/// `io::ErrorKind::InvalidData`; EOF at a frame boundary maps to
/// `io::ErrorKind::UnexpectedEof` (from `read_exact`).
pub fn read_frame<R: Read, T: Wire>(r: &mut R) -> io::Result<T> {
    read_frame_counted(r).map(|(v, _)| v)
}

/// [`read_frame`], returning the bytes taken off the wire (header +
/// payload) alongside the value.
pub fn read_frame_counted<R: Read, T: Wire>(r: &mut R) -> io::Result<(T, u64)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, WireError::TooLarge));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let v = T::from_wire(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok((v, 4 + len as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GlobalTid, MemberId, ReplicaId, XactId};
    use proptest::prelude::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(back.to_wire(), bytes, "re-encode must be bit-identical");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&u16::MAX);
        round_trip(&0xdead_beefu32);
        round_trip(&u64::MAX);
        round_trip(&(-42i64));
        round_trip(&1.5f64);
        round_trip(&f64::NAN.to_bits()); // NaN via bits: f64 isn't PartialEq-friendly
        round_trip(&true);
        round_trip(&String::from("héllo"));
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Option::<u64>::None);
        round_trip(&Some(7u32));
        round_trip(&(3u64, String::from("x")));
    }

    #[test]
    fn ids_round_trip() {
        round_trip(&ReplicaId::new(3));
        round_trip(&GlobalTid::new(u64::MAX));
        round_trip(&MemberId::new(9));
        round_trip(&XactId { origin: ReplicaId::new(1), seq: XactId::seq_base(2) + 7 });
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let bytes = String::from("hello").to_wire();
        for cut in 0..bytes.len() {
            let r = String::from_wire(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        // Claims u32::MAX elements with 4 bytes of backing data.
        let mut bytes = Vec::new();
        u32::MAX.encode(&mut bytes);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(Vec::<u64>::from_wire(&bytes), Err(WireError::TooLarge));
        assert_eq!(String::from_wire(&bytes), Err(WireError::TooLarge));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u64.to_wire();
        bytes.push(0);
        assert_eq!(u64::from_wire(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn bad_discriminants_rejected() {
        assert_eq!(bool::from_wire(&[2]), Err(WireError::Corrupt("bool")));
        assert_eq!(Option::<u8>::from_wire(&[9]), Err(WireError::Corrupt("option tag")));
        assert!(String::from_wire(&[2, 0, 0, 0, 0xff, 0xfe]).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &String::from("frame one")).unwrap();
        write_frame(&mut buf, &vec![1u64, 2, 3]).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let a: String = read_frame(&mut cursor).unwrap();
        let b: Vec<u64> = read_frame(&mut cursor).unwrap();
        assert_eq!(a, "frame one");
        assert_eq!(b, vec![1, 2, 3]);
        let eof: io::Result<String> = read_frame(&mut cursor);
        assert_eq!(eof.unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_frame_header_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        let r: io::Result<String> = read_frame(&mut cursor);
        assert_eq!(r.unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn db_errors_round_trip() {
        use crate::error::{AbortReason, DbError};
        let all = [
            DbError::Aborted(AbortReason::SerializationFailure),
            DbError::Aborted(AbortReason::Deadlock),
            DbError::Aborted(AbortReason::ValidationFailure),
            DbError::Aborted(AbortReason::UserRequested),
            DbError::Aborted(AbortReason::ReplicaCrashed),
            DbError::Aborted(AbortReason::Shutdown),
            DbError::UnknownTable("accounts".into()),
            DbError::UnknownColumn("balance".into()),
            DbError::TypeMismatch { column: "price".into(), expected: "float" },
            DbError::TypeMismatch { column: "id".into(), expected: "non-null primary key" },
            DbError::DuplicateKey("[Int(3)]".into()),
            DbError::NoSuchTransaction,
            DbError::Parse("unexpected token".into()),
            DbError::Unsupported("JOIN".into()),
            DbError::ConnectionLost { in_doubt: true },
            DbError::ConnectionLost { in_doubt: false },
            DbError::Unavailable,
            DbError::Internal("invariant".into()),
        ];
        for e in all {
            round_trip(&e);
        }
        assert_eq!(DbError::from_wire(&[99]), Err(WireError::Corrupt("db error tag")));
    }

    proptest! {
        #[test]
        fn prop_u64_vec_round_trips(v in proptest::collection::vec(any::<u64>(), 0..64)) {
            round_trip(&v);
        }

        #[test]
        fn prop_string_round_trips(s in ".*") {
            round_trip(&s);
        }

        #[test]
        fn prop_xact_round_trips(origin in any::<u64>(), seq in any::<u64>()) {
            round_trip(&XactId { origin: ReplicaId::new(origin), seq });
        }

        #[test]
        fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Any of these may fail; none may panic.
            let _ = Vec::<u64>::from_wire(&bytes);
            let _ = String::from_wire(&bytes);
            let _ = Option::<(u64, String)>::from_wire(&bytes);
            let _ = XactId::from_wire(&bytes);
        }
    }
}
