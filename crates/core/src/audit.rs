//! Online 1-copy-SI auditor.
//!
//! The paper's correctness argument (Theorem 1, §4.3.3) rests on three
//! invariants that every replica must uphold at run time:
//!
//! 1. **Deterministic certification** — because every replica validates
//!    writesets in total-order delivery order with identical inputs, every
//!    replica assigns the *same* global `tid` (or the same abort verdict) to
//!    every transaction, and commits in tid order modulo holes.
//! 2. **First-committer-wins** — two committed transactions whose writesets
//!    intersect cannot be concurrent: the later one's certification
//!    watermark must cover the earlier one's tid.
//! 3. **Hole synchronization** (adjustment 3, SRCA-Rep only) — a local
//!    transaction never begins while a commit-order hole is open at its
//!    replica, and the `ws_list` prune watermark never regresses past a
//!    certificate still needed for validation.
//!
//! The [`Auditor`] is a passive cross-replica observer: the replica nodes
//! report begins, deliveries, verdicts, commits and prunes from under their
//! state locks, and the auditor re-checks the invariants against its own
//! independent bookkeeping. It never influences the protocol — it only
//! records [`AuditViolation`]s, which [`crate::cluster::ClusterReport`]
//! surfaces and the test suites assert empty.
//!
//! The auditor's internal mutex is a strict *leaf* lock: hooks are invoked
//! while a node's state lock is held, and the auditor never calls back into
//! a node, so no lock cycle can form.
//!
//! Recovery safety: verdicts are keyed by [`XactId`] (not by delivery
//! index), so a recovered replica — which skips messages covered by its
//! state transfer — compares only the transactions it actually processes.
//! [`Auditor::on_replica_reset`] rebases the per-replica hole/watermark
//! bookkeeping from the recovery bootstrap.
//!
//! With `--no-default-features` the auditor compiles to a no-op with the
//! same API, like the rest of the observability layer.

use crate::msg::XactId;
use sirep_common::{GlobalTid, ReplicaId};

#[cfg(feature = "trace")]
use parking_lot::Mutex;
#[cfg(feature = "trace")]
use sirep_storage::WriteSet;
#[cfg(feature = "trace")]
use std::collections::{BTreeSet, HashMap, VecDeque};
#[cfg(feature = "trace")]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "trace")]
use std::sync::Arc;

/// Which invariant a violation trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// Replicas disagreed on a transaction's verdict/tid, or a replica's
    /// commit order diverged from the deterministic validation order.
    CommitOrderDivergence,
    /// Two conflicting concurrent transactions both passed certification.
    FirstCommitterWins,
    /// A local transaction began while a commit-order hole was open
    /// (adjustment 3 violated → snapshot may miss a smaller committed tid).
    HoleSyncViolation,
    /// The `ws_list` prune watermark regressed, or a writeset was delivered
    /// whose certificate lies below the watermark (its validation inputs
    /// were already pruned).
    PruneWatermarkViolation,
}

impl std::fmt::Display for AuditKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AuditKind::CommitOrderDivergence => "commit-order-divergence",
            AuditKind::FirstCommitterWins => "first-committer-wins",
            AuditKind::HoleSyncViolation => "hole-sync-violation",
            AuditKind::PruneWatermarkViolation => "prune-watermark-violation",
        })
    }
}

/// One detected invariant violation (always a real type, even without the
/// `trace` feature, so reports keep a stable shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    pub kind: AuditKind,
    /// The replica whose report tripped the check.
    pub replica: ReplicaId,
    /// Human-readable specifics (ids, tids, watermarks involved).
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.replica, self.kind, self.detail)
    }
}

// Telemetry wire forms (both feature configurations — the types are plain
// data either way), so scraped cluster reports can carry violations across
// process boundaries.

impl sirep_common::wire::Wire for AuditKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            AuditKind::CommitOrderDivergence => 0,
            AuditKind::FirstCommitterWins => 1,
            AuditKind::HoleSyncViolation => 2,
            AuditKind::PruneWatermarkViolation => 3,
        });
    }

    fn decode(
        r: &mut sirep_common::wire::WireReader<'_>,
    ) -> Result<Self, sirep_common::wire::WireError> {
        Ok(match u8::decode(r)? {
            0 => AuditKind::CommitOrderDivergence,
            1 => AuditKind::FirstCommitterWins,
            2 => AuditKind::HoleSyncViolation,
            3 => AuditKind::PruneWatermarkViolation,
            _ => return Err(sirep_common::wire::WireError::Corrupt("audit kind tag")),
        })
    }
}

impl sirep_common::wire::Wire for AuditViolation {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        self.replica.encode(out);
        self.detail.encode(out);
    }

    fn decode(
        r: &mut sirep_common::wire::WireReader<'_>,
    ) -> Result<Self, sirep_common::wire::WireError> {
        Ok(AuditViolation {
            kind: AuditKind::decode(r)?,
            replica: ReplicaId::decode(r)?,
            detail: String::decode(r)?,
        })
    }
}

/// Bound on remembered verdicts / certified writesets, so a long run cannot
/// grow the auditor without limit. Old entries age out FIFO; the protocol
/// invariants are local in tid-space, so aged-out history only narrows the
/// window the auditor can cross-check, it never causes false positives.
#[cfg(feature = "trace")]
const VERDICT_CAP: usize = 1 << 16;
#[cfg(feature = "trace")]
const HISTORY_CAP: usize = 4096;
#[cfg(feature = "trace")]
const VIOLATION_CAP: usize = 64;

#[cfg(feature = "trace")]
#[derive(Clone)]
struct Verdict {
    /// `Some(tid)` when certification passed, `None` on abort.
    tid: Option<GlobalTid>,
}

/// A certified (passed) writeset remembered for first-committer-wins
/// cross-checking.
#[cfg(feature = "trace")]
struct CertRecord {
    tid: GlobalTid,
    cert: GlobalTid,
    ws: Arc<WriteSet>,
}

#[cfg(feature = "trace")]
#[derive(Default)]
struct ReplicaAudit {
    /// Validated-but-uncommitted tids at this replica (auditor's own copy).
    pending: BTreeSet<GlobalTid>,
    /// Highest tid committed at this replica.
    max_committed: GlobalTid,
    /// Last tid this replica reported passing — must be strictly
    /// increasing (validation follows total order).
    last_passed: GlobalTid,
    /// Latest prune watermark this replica reported — must not regress.
    watermark: GlobalTid,
}

#[cfg(feature = "trace")]
struct AuditState {
    /// First-reported verdict per transaction; later replicas must agree.
    verdicts: HashMap<XactId, Verdict>,
    /// FIFO of verdict keys for eviction.
    verdict_order: VecDeque<XactId>,
    /// Recently certified writesets (first reports only), for the
    /// first-committer-wins pairwise check.
    history: VecDeque<CertRecord>,
    replicas: HashMap<ReplicaId, ReplicaAudit>,
    violations: Vec<AuditViolation>,
}

/// The online auditor, shared by every replica of a cluster.
#[cfg(feature = "trace")]
pub struct Auditor {
    enabled: bool,
    /// Check the adjustment-3 begin rule (SRCA-Rep only — SRCA-Opt
    /// deliberately forgoes it, that's the point of the ablation).
    check_hole_sync: bool,
    tripped: AtomicBool,
    inner: Mutex<AuditState>,
}

#[cfg(feature = "trace")]
impl Auditor {
    pub fn new(enabled: bool, check_hole_sync: bool) -> Auditor {
        Auditor {
            enabled,
            check_hole_sync,
            tripped: AtomicBool::new(false),
            inner: Mutex::new(AuditState {
                verdicts: HashMap::new(),
                verdict_order: VecDeque::new(),
                history: VecDeque::new(),
                replicas: HashMap::new(),
                violations: Vec::new(),
            }),
        }
    }

    /// An auditor that ignores every report.
    pub fn disabled() -> Auditor {
        Auditor::new(false, false)
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// No violation recorded so far. Lock-free fast path.
    pub fn is_clean(&self) -> bool {
        !self.tripped.load(Ordering::Acquire)
    }

    /// Snapshot of all recorded violations.
    pub fn violations(&self) -> Vec<AuditViolation> {
        if !self.enabled {
            return Vec::new();
        }
        self.inner.lock().violations.clone()
    }

    /// A local transaction is about to begin at `replica` (called under the
    /// node's state lock, after any adjustment-3 hole wait).
    pub fn on_local_begin(&self, replica: ReplicaId) {
        if !self.enabled || !self.check_hole_sync {
            return;
        }
        let mut st = self.inner.lock();
        let ra = st.replicas.entry(replica).or_default();
        if let Some(&hole) = ra.pending.range(..ra.max_committed).next() {
            let max = ra.max_committed;
            self.violate(
                &mut st,
                AuditKind::HoleSyncViolation,
                replica,
                format!("local begin while hole open: tid {hole} uncommitted below {max}"),
            );
        }
    }

    /// A read-only transaction ran entirely against `replica`'s local
    /// snapshot, skipping multicast and certification. `snapshot` is the
    /// commit watermark captured at begin; the snapshot is valid iff the
    /// replica had really committed everything up to it (no tid at or below
    /// `snapshot` still pending) and never claims commits from the future.
    pub fn on_local_readonly(&self, replica: ReplicaId, xact: XactId, snapshot: GlobalTid) {
        if !self.enabled {
            return;
        }
        let mut st = self.inner.lock();
        let ra = st.replicas.entry(replica).or_default();
        if snapshot > ra.max_committed {
            let max = ra.max_committed;
            self.violate(
                &mut st,
                AuditKind::HoleSyncViolation,
                replica,
                format!("read-only {xact} claims snapshot {snapshot} above max committed {max}"),
            );
            return;
        }
        if !self.check_hole_sync {
            return;
        }
        if let Some(&hole) = ra.pending.range(..=snapshot).next() {
            self.violate(
                &mut st,
                AuditKind::HoleSyncViolation,
                replica,
                format!("read-only {xact} began on snapshot {snapshot} with tid {hole} uncommitted below it"),
            );
        }
    }

    /// A writeset was delivered in total order at `replica`.
    pub fn on_deliver(&self, replica: ReplicaId, xact: XactId, cert: GlobalTid) {
        if !self.enabled {
            return;
        }
        let mut st = self.inner.lock();
        let ra = st.replicas.entry(replica).or_default();
        if cert < ra.watermark {
            let wm = ra.watermark;
            self.violate(
                &mut st,
                AuditKind::PruneWatermarkViolation,
                replica,
                format!("{xact} delivered with cert {cert} below prune watermark {wm}"),
            );
        }
    }

    /// `replica` certified `xact`: `tid` is `Some` on pass, `None` on abort.
    /// The first reporting replica's verdict becomes the reference; every
    /// later report must match it (deterministic certification), and passed
    /// writesets are re-checked for first-committer-wins against the
    /// auditor's independent history.
    pub fn on_verdict(
        &self,
        replica: ReplicaId,
        xact: XactId,
        cert: GlobalTid,
        tid: Option<GlobalTid>,
        ws: &Arc<WriteSet>,
    ) {
        if !self.enabled {
            return;
        }
        let mut st = self.inner.lock();
        match st.verdicts.get(&xact) {
            Some(first) => {
                if first.tid != tid {
                    let expect = first.tid;
                    self.violate(
                        &mut st,
                        AuditKind::CommitOrderDivergence,
                        replica,
                        format!("verdict for {xact} is {tid:?}, first reporter saw {expect:?}"),
                    );
                }
            }
            None => {
                if st.verdicts.len() >= VERDICT_CAP {
                    if let Some(old) = st.verdict_order.pop_front() {
                        st.verdicts.remove(&old);
                    }
                }
                st.verdicts.insert(xact, Verdict { tid });
                st.verdict_order.push_back(xact);
                if let Some(t) = tid {
                    self.check_first_committer_wins(&mut st, replica, xact, t, cert, ws);
                    if st.history.len() >= HISTORY_CAP {
                        st.history.pop_front();
                    }
                    st.history.push_back(CertRecord { tid: t, cert, ws: Arc::clone(ws) });
                }
            }
        }
        if let Some(t) = tid {
            let ra = st.replicas.entry(replica).or_default();
            if t <= ra.last_passed {
                let last = ra.last_passed;
                self.violate(
                    &mut st,
                    AuditKind::CommitOrderDivergence,
                    replica,
                    format!("{xact} passed with tid {t}, not above replica's last tid {last}"),
                );
            } else {
                ra.last_passed = t;
                ra.pending.insert(t);
            }
        }
    }

    /// Two certified transactions A (tid `a`, cert `ca`) and B (tid `b`,
    /// cert `cb`) with `a < b` are *concurrent* iff `cb < a` — B's snapshot
    /// predates A's commit. If their writesets also intersect, certification
    /// should have aborted B: both passing violates first-committer-wins.
    fn check_first_committer_wins(
        &self,
        st: &mut AuditState,
        replica: ReplicaId,
        xact: XactId,
        tid: GlobalTid,
        cert: GlobalTid,
        ws: &WriteSet,
    ) {
        let mut hit = None;
        for h in st.history.iter() {
            let concurrent = if tid > h.tid { cert < h.tid } else { h.cert < tid };
            if concurrent && h.ws.intersects(ws) {
                hit = Some((h.tid, h.cert));
                break;
            }
        }
        if let Some((htid, hcert)) = hit {
            self.violate(
                st,
                AuditKind::FirstCommitterWins,
                replica,
                format!(
                    "{xact} (tid {tid}, cert {cert}) and tid {htid} (cert {hcert}) are \
                     concurrent with intersecting writesets, yet both passed"
                ),
            );
        }
    }

    /// `xact` committed at `replica` with global id `tid` (under the node's
    /// state lock, right after the database commit).
    pub fn on_commit(&self, replica: ReplicaId, xact: XactId, tid: GlobalTid) {
        if !self.enabled {
            return;
        }
        let mut st = self.inner.lock();
        if let Some(v) = st.verdicts.get(&xact) {
            if v.tid != Some(tid) {
                let expect = v.tid;
                self.violate(
                    &mut st,
                    AuditKind::CommitOrderDivergence,
                    replica,
                    format!("{xact} committed as tid {tid}, certification assigned {expect:?}"),
                );
            }
        }
        let ra = st.replicas.entry(replica).or_default();
        ra.pending.remove(&tid);
        ra.max_committed = ra.max_committed.max(tid);
    }

    /// `replica` pruned its `ws_list` up to `watermark`.
    pub fn on_prune(&self, replica: ReplicaId, watermark: GlobalTid) {
        if !self.enabled {
            return;
        }
        let mut st = self.inner.lock();
        let ra = st.replicas.entry(replica).or_default();
        if watermark < ra.watermark {
            let wm = ra.watermark;
            self.violate(
                &mut st,
                AuditKind::PruneWatermarkViolation,
                replica,
                format!("prune watermark regressed from {wm} to {watermark}"),
            );
        } else {
            ra.watermark = watermark;
        }
    }

    /// `replica` (re)joined from a recovery state transfer: rebase its
    /// bookkeeping on the bootstrap — `last_validated` from the transferred
    /// `ws_list`, `max_committed` and still-pending tids from the donor's
    /// queue. Must be called before the recovered node starts its threads.
    pub fn on_replica_reset(
        &self,
        replica: ReplicaId,
        last_validated: GlobalTid,
        max_committed: GlobalTid,
        pending: impl IntoIterator<Item = GlobalTid>,
    ) {
        if !self.enabled {
            return;
        }
        let mut st = self.inner.lock();
        st.replicas.insert(
            replica,
            ReplicaAudit {
                pending: pending.into_iter().collect(),
                max_committed,
                last_passed: last_validated,
                watermark: GlobalTid::ZERO,
            },
        );
    }

    fn violate(&self, st: &mut AuditState, kind: AuditKind, replica: ReplicaId, detail: String) {
        self.tripped.store(true, Ordering::Release);
        if st.violations.len() < VIOLATION_CAP {
            st.violations.push(AuditViolation { kind, replica, detail });
        }
    }
}

// ======================================================================
// No-op stub (`trace` feature off): same API, everything compiles away.
// ======================================================================

#[cfg(not(feature = "trace"))]
pub struct Auditor;

#[cfg(not(feature = "trace"))]
impl Auditor {
    #[inline(always)]
    pub fn new(_enabled: bool, _check_hole_sync: bool) -> Auditor {
        Auditor
    }

    #[inline(always)]
    pub fn disabled() -> Auditor {
        Auditor
    }

    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    pub fn is_clean(&self) -> bool {
        true
    }

    #[inline(always)]
    pub fn violations(&self) -> Vec<AuditViolation> {
        Vec::new()
    }

    #[inline(always)]
    pub fn on_local_begin(&self, _replica: ReplicaId) {}

    #[inline(always)]
    pub fn on_local_readonly(&self, _replica: ReplicaId, _xact: XactId, _snapshot: GlobalTid) {}

    #[inline(always)]
    pub fn on_deliver(&self, _replica: ReplicaId, _xact: XactId, _cert: GlobalTid) {}

    #[inline(always)]
    pub fn on_verdict(
        &self,
        _replica: ReplicaId,
        _xact: XactId,
        _cert: GlobalTid,
        _tid: Option<GlobalTid>,
        _ws: &std::sync::Arc<sirep_storage::WriteSet>,
    ) {
    }

    #[inline(always)]
    pub fn on_commit(&self, _replica: ReplicaId, _xact: XactId, _tid: GlobalTid) {}

    #[inline(always)]
    pub fn on_prune(&self, _replica: ReplicaId, _watermark: GlobalTid) {}

    #[inline(always)]
    pub fn on_replica_reset(
        &self,
        _replica: ReplicaId,
        _last_validated: GlobalTid,
        _max_committed: GlobalTid,
        _pending: impl IntoIterator<Item = GlobalTid>,
    ) {
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use sirep_storage::{Key, WsOp};

    fn ws(keys: &[i64]) -> Arc<WriteSet> {
        let mut w = WriteSet::new();
        for &k in keys {
            w.push(Arc::from("t"), Key::single(k), WsOp::Delete);
        }
        Arc::new(w)
    }

    fn xact(origin: u64, seq: u64) -> XactId {
        XactId { origin: ReplicaId::new(origin), seq }
    }

    fn t(n: u64) -> GlobalTid {
        GlobalTid::new(n)
    }

    const R0: ReplicaId = ReplicaId::new(0);
    const R1: ReplicaId = ReplicaId::new(1);

    #[test]
    fn clean_identical_run_stays_clean() {
        let a = Auditor::new(true, true);
        for (seq, r) in [(1, R0), (2, R1)] {
            let x = xact(r.raw(), seq);
            a.on_deliver(R0, x, t(0));
            a.on_deliver(R1, x, t(0));
        }
        // Disjoint writesets, identical verdicts on both replicas.
        let x1 = xact(0, 1);
        let x2 = xact(1, 2);
        a.on_verdict(R0, x1, t(0), Some(t(1)), &ws(&[1]));
        a.on_verdict(R1, x1, t(0), Some(t(1)), &ws(&[1]));
        a.on_verdict(R0, x2, t(1), Some(t(2)), &ws(&[2]));
        a.on_verdict(R1, x2, t(1), Some(t(2)), &ws(&[2]));
        a.on_commit(R0, x1, t(1));
        a.on_commit(R1, x1, t(1));
        a.on_local_begin(R0);
        a.on_prune(R0, t(1));
        a.on_prune(R0, t(2));
        assert!(a.is_clean(), "violations: {:?}", a.violations());
    }

    #[test]
    fn divergent_verdicts_are_flagged() {
        let a = Auditor::new(true, true);
        let x = xact(0, 1);
        a.on_verdict(R0, x, t(0), Some(t(1)), &ws(&[1]));
        a.on_verdict(R1, x, t(0), None, &ws(&[1]));
        assert!(!a.is_clean());
        let v = a.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, AuditKind::CommitOrderDivergence);
        assert_eq!(v[0].replica, R1);
    }

    #[test]
    fn conflicting_concurrent_passes_trip_first_committer_wins() {
        let a = Auditor::new(true, true);
        // Both certified against cert 0, overlapping writesets, both pass:
        // the second one should have been aborted.
        a.on_verdict(R0, xact(0, 1), t(0), Some(t(1)), &ws(&[7]));
        a.on_verdict(R0, xact(1, 1), t(0), Some(t(2)), &ws(&[7, 9]));
        let v = a.violations();
        assert!(v.iter().any(|v| v.kind == AuditKind::FirstCommitterWins), "{v:?}");
    }

    #[test]
    fn serialized_conflicts_are_fine() {
        let a = Auditor::new(true, true);
        // Same key, but the second certified *after* the first committed
        // (cert covers tid 1) — not concurrent, no violation.
        a.on_verdict(R0, xact(0, 1), t(0), Some(t(1)), &ws(&[7]));
        a.on_verdict(R0, xact(1, 1), t(1), Some(t(2)), &ws(&[7]));
        assert!(a.is_clean(), "{:?}", a.violations());
    }

    #[test]
    fn begin_during_hole_is_flagged_only_when_checking_hole_sync() {
        for (check, dirty) in [(true, true), (false, false)] {
            let a = Auditor::new(true, check);
            a.on_verdict(R0, xact(0, 1), t(0), Some(t(1)), &ws(&[1]));
            a.on_verdict(R0, xact(0, 2), t(0), Some(t(2)), &ws(&[2]));
            // tid 2 commits first → tid 1 is a hole at R0.
            a.on_commit(R0, xact(0, 2), t(2));
            a.on_local_begin(R0);
            assert_eq!(!a.is_clean(), dirty);
            // Hole closes; further begins are clean either way.
            a.on_commit(R0, xact(0, 1), t(1));
            let before = a.violations().len();
            a.on_local_begin(R0);
            assert_eq!(a.violations().len(), before);
        }
    }

    #[test]
    fn watermark_regression_and_stale_cert_are_flagged() {
        let a = Auditor::new(true, true);
        a.on_prune(R0, t(5));
        a.on_prune(R0, t(5)); // equal is fine
        assert!(a.is_clean());
        a.on_deliver(R0, xact(1, 9), t(3)); // cert below watermark
        a.on_prune(R0, t(4)); // regression
        let v = a.violations();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.kind == AuditKind::PruneWatermarkViolation));
    }

    #[test]
    fn replica_reset_rebases_hole_state() {
        let a = Auditor::new(true, true);
        a.on_verdict(R0, xact(0, 1), t(0), Some(t(1)), &ws(&[1]));
        a.on_verdict(R0, xact(0, 2), t(0), Some(t(2)), &ws(&[2]));
        a.on_commit(R0, xact(0, 2), t(2)); // hole: tid 1
                                           // R0 crashes and recovers with tid 1 already applied by the donor.
        a.on_replica_reset(R0, t(2), t(2), []);
        a.on_local_begin(R0);
        assert!(a.is_clean(), "{:?}", a.violations());
    }

    #[test]
    fn disabled_auditor_reports_nothing() {
        let a = Auditor::disabled();
        a.on_verdict(R0, xact(0, 1), t(0), Some(t(1)), &ws(&[7]));
        a.on_verdict(R0, xact(1, 1), t(0), Some(t(2)), &ws(&[7]));
        assert!(a.is_clean());
        assert!(a.violations().is_empty());
    }
}
