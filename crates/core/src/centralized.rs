//! The non-replicated baseline: one database, a pass-through middleware.
//!
//! The paper's figures all include a "centralized" line — *"it still uses
//! our middleware but the middleware simply forwards requests to the single
//! database and does not perform any concurrency control, writeset
//! retrieval, etc."* (§6.1).

use crate::session::{Connection, System};
use sirep_common::{AbortReason, DbError, Metrics};
use sirep_sql::ExecResult;
use sirep_storage::{CostModel, Database, TxnHandle};
use std::sync::Arc;

/// A single-database system.
pub struct Centralized {
    db: Database,
    metrics: Arc<Metrics>,
}

impl Centralized {
    pub fn new(cost: CostModel) -> Centralized {
        Centralized { db: Database::new(cost), metrics: Arc::new(Metrics::new()) }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl System for Centralized {
    fn name(&self) -> &'static str {
        "centralized"
    }

    fn connect(&self) -> Result<Box<dyn Connection>, DbError> {
        Ok(Box::new(CentralConn {
            db: self.db.clone(),
            metrics: Arc::clone(&self.metrics),
            txn: None,
        }))
    }

    fn metrics(&self) -> Metrics {
        let m = Metrics::new();
        m.merge(&self.metrics);
        m
    }
}

struct CentralConn {
    db: Database,
    metrics: Arc<Metrics>,
    txn: Option<TxnHandle>,
}

impl Connection for CentralConn {
    fn execute(&mut self, sql: &str) -> Result<ExecResult, DbError> {
        if self.txn.is_none() {
            Metrics::inc(&self.metrics.begins_total);
            self.txn = Some(self.db.begin()?);
        }
        let txn = self.txn.as_ref().expect("just ensured");
        match sirep_sql::execute_sql(&self.db, txn, sql) {
            Ok(r) => Ok(r),
            Err(e) => {
                if e.is_abort() || matches!(e, DbError::DuplicateKey(_)) {
                    if let DbError::Aborted(reason) = &e {
                        match reason {
                            AbortReason::SerializationFailure => {
                                Metrics::inc(&self.metrics.aborts_serialization);
                            }
                            AbortReason::Deadlock => Metrics::inc(&self.metrics.aborts_deadlock),
                            _ => {}
                        }
                    }
                    self.txn = None;
                }
                Err(e)
            }
        }
    }

    fn commit(&mut self) -> Result<(), DbError> {
        match self.txn.take() {
            None => Ok(()),
            Some(t) => {
                let readonly = t.is_readonly();
                t.commit()?;
                Metrics::inc(if readonly {
                    &self.metrics.commits_readonly
                } else {
                    &self.metrics.commits_update
                });
                Ok(())
            }
        }
    }

    fn rollback(&mut self) {
        if let Some(t) = self.txn.take() {
            t.abort(AbortReason::UserRequested);
            Metrics::inc(&self.metrics.aborts_user);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_transaction_lifecycle() {
        let sys = Centralized::new(CostModel::free());
        {
            let t = sys.db.begin().unwrap();
            sirep_sql::execute_sql(&sys.db, &t, "CREATE TABLE t (a INT, PRIMARY KEY (a))").unwrap();
            t.commit().unwrap();
        }
        let mut c = sys.connect().unwrap();
        c.execute("INSERT INTO t VALUES (1)").unwrap();
        c.commit().unwrap();
        let r = c.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows()[0][0], sirep_storage::Value::Int(1));
        c.commit().unwrap();
        let m = sys.metrics();
        assert_eq!(m.commits(), 2);
    }

    #[test]
    fn rollback_discards_changes() {
        let sys = Centralized::new(CostModel::free());
        {
            let t = sys.db.begin().unwrap();
            sirep_sql::execute_sql(&sys.db, &t, "CREATE TABLE t (a INT, PRIMARY KEY (a))").unwrap();
            t.commit().unwrap();
        }
        let mut c = sys.connect().unwrap();
        c.execute("INSERT INTO t VALUES (1)").unwrap();
        c.rollback();
        let r = c.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows()[0][0], sirep_storage::Value::Int(0));
    }
}
