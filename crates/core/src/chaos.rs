//! Crash-point chaos plan: named places in the protocol where a replica
//! can be made to crash-stop the instant execution reaches them.
//!
//! The paper's §5.4 failover argument is about *where* a crash interleaves
//! with the commit pipeline: before the multicast (case 1/2 — the
//! transaction dies with its origin), after the multicast but before the
//! local commit/ack (case 3 — the classic in-doubt window), after delivery
//! but before the local commit of a remote writeset, and in the middle of a
//! recovery state transfer. Sleeping and hoping a concurrent `crash()`
//! lands in the right window is hopeless; arming a [`CrashPoint`] makes the
//! interleaving deterministic.
//!
//! A [`CrashPlan`] is shared by every node of a cluster. Each point is
//! **one-shot**: the first replica to reach an armed point (with a matching
//! replica id) fires it, records [`EventKind::CrashPointFired`] in its
//! journal, and crash-stops exactly as `Cluster::crash` would (GCS member
//! first, then the node), after which the point is disarmed.
//!
//! [`EventKind::CrashPointFired`]: sirep_common::EventKind::CrashPointFired

use parking_lot::{Condvar, Mutex};
use sirep_common::{CrashPoint, ReplicaId};
use std::collections::BTreeMap;
use std::time::Duration;

/// Named places in the protocol where a thread can be made to *pause*
/// (block) until released — the deterministic-schedule counterpart of a
/// [`CrashPoint`], used by counterexample-replay tests (sirep-model) to
/// hold a thread inside a specific interleaving window. Unlike a crash
/// point a pause is not one-shot: every thread of the armed replica that
/// reaches the point blocks until [`CrashPlan::release_pause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PausePoint {
    /// In `begin_local` (SRCA-Opt), just before the state lock is taken —
    /// the window the nonatomic-begin-snapshot counterexample schedules a
    /// concurrent commit into.
    OptBeginPreLock,
    /// In `run_applier`, after a batch is claimed but before it is applied
    /// and committed — the window where a writeset is validated (its
    /// outcome known) but not yet locally visible.
    ApplierBeforeCommit,
}

/// One armed pause: who pauses there, and how many threads have reached
/// the point so far (lets a test wait until the target thread is parked).
#[derive(Debug, Clone, Copy)]
struct Pause {
    replica: ReplicaId,
    reached: usize,
}

/// Armed crash-points for one cluster. Cheap to check when nothing is
/// armed (one short mutex hold on an empty map). A `BTreeMap` so that
/// `armed()` enumerates in a stable order — chaos harness output must be
/// a pure function of the seed.
#[derive(Debug, Default)]
pub struct CrashPlan {
    armed: Mutex<BTreeMap<CrashPoint, ReplicaId>>,
    paused: Mutex<BTreeMap<PausePoint, Pause>>,
    pause_cond: Condvar,
}

impl CrashPlan {
    pub fn new() -> CrashPlan {
        CrashPlan::default()
    }

    /// Arm `point` for `replica`; replaces any previous arming of the same
    /// point.
    pub fn arm(&self, point: CrashPoint, replica: ReplicaId) {
        self.armed.lock().insert(point, replica);
    }

    /// Disarm `point` (no-op if it was not armed or already fired).
    pub fn disarm(&self, point: CrashPoint) {
        self.armed.lock().remove(&point);
    }

    /// Currently armed points.
    pub fn armed(&self) -> Vec<(CrashPoint, ReplicaId)> {
        self.armed.lock().iter().map(|(&p, &r)| (p, r)).collect()
    }

    /// Arm `point` as a pause for `replica`; replaces any previous arming.
    pub fn arm_pause(&self, point: PausePoint, replica: ReplicaId) {
        self.paused.lock().insert(point, Pause { replica, reached: 0 });
    }

    /// Release every thread parked at `point` (no-op if not armed).
    pub fn release_pause(&self, point: PausePoint) {
        self.paused.lock().remove(&point);
        self.pause_cond.notify_all();
    }

    /// How many threads have reached `point` since it was armed — a test
    /// polls this to know its target thread is parked in the window.
    pub fn pause_reached(&self, point: PausePoint) -> usize {
        self.paused.lock().get(&point).map_or(0, |p| p.reached)
    }

    /// Block while `point` is armed for `replica`. The tick keeps the wait
    /// robust against a release racing the park (no lost-wakeup hangs).
    pub(crate) fn pause_at(&self, point: PausePoint, replica: ReplicaId) {
        let mut paused = self.paused.lock();
        match paused.get_mut(&point) {
            Some(p) if p.replica == replica => p.reached += 1,
            _ => return,
        }
        while paused.get(&point).is_some_and(|p| p.replica == replica) {
            self.pause_cond.wait_for(&mut paused, Duration::from_millis(25));
        }
    }

    /// True (and disarms the point) exactly once, when `replica` reaches an
    /// armed `point`.
    pub(crate) fn fire(&self, point: CrashPoint, replica: ReplicaId) -> bool {
        let mut armed = self.armed.lock();
        if armed.get(&point) == Some(&replica) {
            armed.remove(&point);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_points_are_one_shot_and_replica_scoped() {
        let plan = CrashPlan::new();
        let p = CrashPoint::AfterMulticastBeforeLocalCommit;
        plan.arm(p, ReplicaId::new(1));
        assert!(!plan.fire(p, ReplicaId::new(0)), "wrong replica must not fire");
        assert!(plan.fire(p, ReplicaId::new(1)));
        assert!(!plan.fire(p, ReplicaId::new(1)), "second reach must not re-fire");
        assert!(plan.armed().is_empty());
    }

    #[test]
    fn pause_points_block_until_released_and_are_replica_scoped() {
        let plan = std::sync::Arc::new(CrashPlan::new());
        let p = PausePoint::ApplierBeforeCommit;
        // Unarmed and wrong-replica reaches are no-ops.
        plan.pause_at(p, ReplicaId::new(0));
        plan.arm_pause(p, ReplicaId::new(1));
        plan.pause_at(p, ReplicaId::new(0));
        assert_eq!(plan.pause_reached(p), 0, "wrong replica must not park");
        let t = {
            let plan = std::sync::Arc::clone(&plan);
            std::thread::spawn(move || plan.pause_at(p, ReplicaId::new(1)))
        };
        while plan.pause_reached(p) == 0 {
            std::thread::yield_now();
        }
        assert!(!t.is_finished(), "armed pause must park the matching replica");
        plan.release_pause(p);
        t.join().unwrap();
        // Released points are gone: reaching again is a no-op.
        plan.pause_at(p, ReplicaId::new(1));
    }

    #[test]
    fn disarm_prevents_firing() {
        let plan = CrashPlan::new();
        plan.arm(CrashPoint::MidStateTransfer, ReplicaId::new(2));
        plan.disarm(CrashPoint::MidStateTransfer);
        assert!(!plan.fire(CrashPoint::MidStateTransfer, ReplicaId::new(2)));
    }
}
