//! Crash-point chaos plan: named places in the protocol where a replica
//! can be made to crash-stop the instant execution reaches them.
//!
//! The paper's §5.4 failover argument is about *where* a crash interleaves
//! with the commit pipeline: before the multicast (case 1/2 — the
//! transaction dies with its origin), after the multicast but before the
//! local commit/ack (case 3 — the classic in-doubt window), after delivery
//! but before the local commit of a remote writeset, and in the middle of a
//! recovery state transfer. Sleeping and hoping a concurrent `crash()`
//! lands in the right window is hopeless; arming a [`CrashPoint`] makes the
//! interleaving deterministic.
//!
//! A [`CrashPlan`] is shared by every node of a cluster. Each point is
//! **one-shot**: the first replica to reach an armed point (with a matching
//! replica id) fires it, records [`EventKind::CrashPointFired`] in its
//! journal, and crash-stops exactly as `Cluster::crash` would (GCS member
//! first, then the node), after which the point is disarmed.
//!
//! [`EventKind::CrashPointFired`]: sirep_common::EventKind::CrashPointFired

use parking_lot::Mutex;
use sirep_common::{CrashPoint, ReplicaId};
use std::collections::BTreeMap;

/// Armed crash-points for one cluster. Cheap to check when nothing is
/// armed (one short mutex hold on an empty map). A `BTreeMap` so that
/// `armed()` enumerates in a stable order — chaos harness output must be
/// a pure function of the seed.
#[derive(Debug, Default)]
pub struct CrashPlan {
    armed: Mutex<BTreeMap<CrashPoint, ReplicaId>>,
}

impl CrashPlan {
    pub fn new() -> CrashPlan {
        CrashPlan::default()
    }

    /// Arm `point` for `replica`; replaces any previous arming of the same
    /// point.
    pub fn arm(&self, point: CrashPoint, replica: ReplicaId) {
        self.armed.lock().insert(point, replica);
    }

    /// Disarm `point` (no-op if it was not armed or already fired).
    pub fn disarm(&self, point: CrashPoint) {
        self.armed.lock().remove(&point);
    }

    /// Currently armed points.
    pub fn armed(&self) -> Vec<(CrashPoint, ReplicaId)> {
        self.armed.lock().iter().map(|(&p, &r)| (p, r)).collect()
    }

    /// True (and disarms the point) exactly once, when `replica` reaches an
    /// armed `point`.
    pub(crate) fn fire(&self, point: CrashPoint, replica: ReplicaId) -> bool {
        let mut armed = self.armed.lock();
        if armed.get(&point) == Some(&replica) {
            armed.remove(&point);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_points_are_one_shot_and_replica_scoped() {
        let plan = CrashPlan::new();
        let p = CrashPoint::AfterMulticastBeforeLocalCommit;
        plan.arm(p, ReplicaId::new(1));
        assert!(!plan.fire(p, ReplicaId::new(0)), "wrong replica must not fire");
        assert!(plan.fire(p, ReplicaId::new(1)));
        assert!(!plan.fire(p, ReplicaId::new(1)), "second reach must not re-fire");
        assert!(plan.armed().is_empty());
    }

    #[test]
    fn disarm_prevents_firing() {
        let plan = CrashPlan::new();
        plan.arm(CrashPoint::MidStateTransfer, ReplicaId::new(2));
        plan.disarm(CrashPoint::MidStateTransfer);
        assert!(!plan.fire(CrashPoint::MidStateTransfer, ReplicaId::new(2)));
    }
}
