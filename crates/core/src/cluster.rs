//! Cluster assembly: N middleware/database replica pairs over one group.

use crate::audit::{AuditViolation, Auditor};
use crate::chaos::{CrashPlan, PausePoint};
use crate::model::{ReplicatedExecution, TxSpec};
use crate::msg::{ReplMsg, XactId};
use crate::node::{MemberRegistry, NodeStatus, ReplicaNode, ReplicationMode};
use crate::session::Session;
use parking_lot::{Mutex, RwLock};
use sirep_common::{
    CrashPoint, DbError, Event, EventKind, GaugeSnapshot, Journal, MemberId, Metrics, ReplicaId,
    StageSnapshot, TransportSnapshot, DEFAULT_JOURNAL_CAPACITY,
};
use sirep_gcs::{FaultConfig, Group, GroupConfig, SimGroup, TcpGroup, NETWORK_REPLICA};
use sirep_storage::{CostModel, Database};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which GCS backend carries the cluster's replication traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// The in-process simulated network: deterministic, model-time latency,
    /// seeded fault plans. The correctness/chaos tier.
    Sim,
    /// Real sockets through the sequencer service at `sequencer`
    /// (`"host:port"`). A multinode deployment runs one single-replica
    /// cluster per process, each with its own
    /// [`ClusterConfig::first_replica`]. Fault plans and partitions are
    /// no-ops on this transport.
    Tcp { sequencer: String },
}

/// Configuration for an SRCA-Rep / SRCA-Opt cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub replicas: usize,
    pub mode: ReplicationMode,
    /// Database service-time model (shared by all replicas).
    pub cost: CostModel,
    /// Group communication latency model.
    pub gcs: GroupConfig,
    /// Which transport backend carries replication traffic.
    pub transport: Transport,
    /// Logical replica id of this cluster's first node — nonzero only for
    /// multinode TCP deployments, where each process hosts a slice of the
    /// group.
    pub first_replica: u64,
    /// Applier threads per replica (step III concurrency).
    pub appliers: usize,
    /// Record begin/commit histories and readsets for 1-copy-SI checking.
    pub track_history: bool,
    /// Outcome-log capacity for in-doubt resolution.
    pub outcome_cap: usize,
    /// Run the online 1-copy-SI auditor (on by default; a no-op without the
    /// `trace` feature).
    pub audit: bool,
}

impl ClusterConfig {
    /// Start building a configuration. Defaults match [`Default`]: one
    /// replica, full SRCA-Rep, instantaneous cost/GCS models.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder { cfg: ClusterConfig::default() }
    }
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            replicas: 1,
            mode: ReplicationMode::SrcaRep,
            cost: CostModel::free(),
            gcs: GroupConfig::instant(),
            transport: Transport::Sim,
            first_replica: 0,
            appliers: 2,
            track_history: false,
            outcome_cap: 1 << 16,
            audit: true,
        }
    }
}

/// Fluent construction for [`ClusterConfig`]:
///
/// ```
/// use sirep_core::{ClusterConfig, ReplicationMode};
///
/// let cfg = ClusterConfig::builder()
///     .replicas(5)
///     .mode(ReplicationMode::SrcaRep)
///     .appliers(4)
///     .build();
/// assert_eq!(cfg.replicas, 5);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    pub fn replicas(mut self, n: usize) -> Self {
        self.cfg.replicas = n;
        self
    }

    pub fn mode(mut self, mode: ReplicationMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Database service-time model shared by all replicas.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// Group communication latency model.
    pub fn gcs(mut self, gcs: GroupConfig) -> Self {
        self.cfg.gcs = gcs;
        self
    }

    /// Which transport backend carries replication traffic (default:
    /// [`Transport::Sim`]).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.cfg.transport = transport;
        self
    }

    /// Logical replica id of this cluster's first node (multinode TCP
    /// deployments; default 0).
    pub fn first_replica(mut self, first: u64) -> Self {
        self.cfg.first_replica = first;
        self
    }

    /// Applier threads per replica (step III concurrency).
    pub fn appliers(mut self, n: usize) -> Self {
        self.cfg.appliers = n;
        self
    }

    /// Record begin/commit histories and readsets for 1-copy-SI checking.
    pub fn track_history(mut self, on: bool) -> Self {
        self.cfg.track_history = on;
        self
    }

    /// Outcome-log capacity for in-doubt resolution.
    pub fn outcome_cap(mut self, cap: usize) -> Self {
        self.cfg.outcome_cap = cap;
        self
    }

    /// Enable/disable the online 1-copy-SI auditor.
    pub fn audit(mut self, on: bool) -> Self {
        self.cfg.audit = on;
        self
    }

    pub fn build(self) -> ClusterConfig {
        self.cfg
    }
}

/// What [`Cluster::metrics`] returns: cluster-wide counter totals, merged
/// per-stage latency histograms, and a per-replica status breakdown.
///
/// Derefs to [`Metrics`], so existing counter reads
/// (`cluster.metrics().commits()`, `...summary()`) keep working unchanged.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Counters summed over all replicas (alive and crashed).
    pub metrics: Metrics,
    /// Per-stage latency histograms merged over all replicas.
    pub stages: StageSnapshot,
    /// Queue-depth gauges rolled up over all replicas (currents summed,
    /// high-water marks maxed).
    pub gauges: GaugeSnapshot,
    /// Invariant violations the online 1-copy-SI auditor has recorded
    /// (always empty on a correct run — the test suites assert this).
    pub violations: Vec<AuditViolation>,
    /// Wire-level transport counters rolled up over all replicas (empty on
    /// the sim transport, which never serializes).
    pub transport: TransportSnapshot,
    /// One status snapshot per replica, in replica-id order.
    pub per_node: Vec<NodeStatus>,
}

impl std::ops::Deref for ClusterReport {
    type Target = Metrics;
    fn deref(&self) -> &Metrics {
        &self.metrics
    }
}

impl ClusterReport {
    /// Build a report by merging per-replica status snapshots: counters
    /// summed, stage histograms merged, gauge currents summed with
    /// high-water marks maxed, transport counters rolled up. This is the
    /// same aggregation [`Cluster::metrics`] performs in-process, exposed so
    /// the `report` role can run it over *scraped* snapshots from other
    /// processes.
    ///
    /// Note: `gauges.gcs_in_flight` is the sum of every node's own reading;
    /// in-process callers override it with a single group-wide read (see
    /// [`Cluster::metrics`]).
    pub fn from_statuses(per_node: Vec<NodeStatus>, violations: Vec<AuditViolation>) -> Self {
        let metrics = Metrics::new();
        let mut stages = StageSnapshot::default();
        let mut gauges = GaugeSnapshot::default();
        let mut transport = TransportSnapshot::default();
        for status in &per_node {
            metrics.merge(&status.metrics);
            stages.merge(&status.stages);
            gauges.absorb(&status.gauges);
            transport.absorb(&status.transport);
        }
        ClusterReport { metrics, stages, gauges, violations, transport, per_node }
    }

    /// Merge another process's report into this one (the multinode `report`
    /// role scrapes one report per node process and folds them together).
    /// Counters sum, histograms merge, gauge currents sum / high-waters
    /// max, violation lists concatenate, and the per-node snapshots are
    /// re-sorted by replica id.
    pub fn absorb(&mut self, other: ClusterReport) {
        self.metrics.merge(&other.metrics);
        self.stages.merge(&other.stages);
        self.gauges.absorb(&other.gauges);
        self.transport.absorb(&other.transport);
        self.violations.extend(other.violations);
        self.per_node.extend(other.per_node);
        self.per_node.sort_by_key(|s| s.replica.raw());
    }

    /// The per-stage p50/p95/p99 breakdown table
    /// ([`StageSnapshot::breakdown_table`]).
    pub fn breakdown_table(&self) -> String {
        self.stages.breakdown_table()
    }

    /// Prometheus text exposition of the whole report
    /// ([`crate::export::prometheus_text`]).
    pub fn prometheus_text(&self) -> String {
        crate::export::prometheus_text(self)
    }
}

impl sirep_common::wire::Wire for ClusterReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.metrics.encode(out);
        self.stages.encode(out);
        self.gauges.encode(out);
        self.violations.encode(out);
        self.transport.encode(out);
        self.per_node.encode(out);
    }

    fn decode(
        r: &mut sirep_common::wire::WireReader<'_>,
    ) -> Result<Self, sirep_common::wire::WireError> {
        Ok(ClusterReport {
            metrics: Metrics::decode(r)?,
            stages: StageSnapshot::decode(r)?,
            gauges: GaugeSnapshot::decode(r)?,
            violations: Vec::<AuditViolation>::decode(r)?,
            transport: TransportSnapshot::decode(r)?,
            per_node: Vec::<NodeStatus>::decode(r)?,
        })
    }
}

/// A running cluster. Dropping it shuts every replica down.
pub struct Cluster {
    nodes: RwLock<Vec<Arc<ReplicaNode>>>,
    group: Arc<dyn Group<ReplMsg>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    config: ClusterConfig,
    /// GCS member id → logical replica id (recovered replicas re-join
    /// under fresh member ids).
    registry: MemberRegistry,
    /// Logical replica id → current GCS member id.
    member_of: Mutex<HashMap<usize, MemberId>>,
    /// Times each replica id has re-joined after a crash.
    rejoins: Mutex<HashMap<usize, u64>>,
    /// Shared journal epoch so every replica's events land on one timeline.
    epoch: Instant,
    /// The cluster-wide online 1-copy-SI auditor.
    auditor: Arc<Auditor>,
    /// Armed crash-points, shared by every node (chaos harness).
    crash_plan: Arc<CrashPlan>,
}

impl Cluster {
    /// Build and start a cluster, panicking on construction failure — the
    /// right ergonomics for the sim tier, where joins cannot fail.
    pub fn new(config: ClusterConfig) -> Cluster {
        // sirep-lint: allow(no-unwrap-on-protocol-paths): construction-time only — the sim transport's joins are infallible, and tests/benches want the panic; fallible TCP deployments use try_new
        Cluster::try_new(config).expect("cluster construction failed")
    }

    /// Build and start a cluster. Fails if the configured transport cannot
    /// join the group (e.g. the TCP sequencer is unreachable).
    pub fn try_new(config: ClusterConfig) -> Result<Cluster, DbError> {
        if config.replicas == 0 {
            return Err(DbError::Internal("a cluster needs at least one replica".into()));
        }
        let group: Arc<dyn Group<ReplMsg>> = match &config.transport {
            Transport::Sim => Arc::new(SimGroup::new(config.gcs.clone())),
            Transport::Tcp { sequencer } => {
                Arc::new(TcpGroup::new(sequencer.clone(), config.first_replica))
            }
        };
        let registry: MemberRegistry = Arc::new(Mutex::new(HashMap::new()));
        let epoch = Instant::now();
        // Hole synchronization is only promised under SRCA-Rep — SRCA-Opt
        // deliberately forgoes it, so the auditor must not flag it there.
        let auditor = Arc::new(Auditor::new(config.audit, config.mode == ReplicationMode::SrcaRep));
        let crash_plan = Arc::new(CrashPlan::new());
        let mut member_of = HashMap::new();
        let mut nodes = Vec::with_capacity(config.replicas);
        let mut threads = Vec::new();
        for k in 0..config.replicas {
            let member = group
                .join()
                .map_err(|e| DbError::Internal(format!("transport join failed: {e}")))?;
            let rid = ReplicaId::new(config.first_replica + k as u64);
            registry.lock().insert(member.id().raw(), rid);
            member_of.insert(k, member.id());
            let db = Database::new(config.cost.clone());
            if config.track_history {
                db.set_track_reads(true);
            }
            let node = ReplicaNode::new(
                rid,
                db,
                member.handle(),
                config.mode,
                config.outcome_cap,
                config.track_history,
                Arc::clone(&registry),
                // A TCP member's incarnation is its join count at the
                // sequencer, so a restarted process mints transaction ids
                // that cannot collide with its replayed, outcome-log-deduped
                // previous life. The sim transport always reports 0 here and
                // tracks rejoins in `recover` instead.
                member.incarnation(),
                None,
                Journal::with_epoch(rid, epoch, DEFAULT_JOURNAL_CAPACITY),
                Arc::clone(&auditor),
                Arc::clone(&crash_plan),
            );
            {
                let n = Arc::clone(&node);
                threads.push(std::thread::spawn(move || n.run_delivery(member)));
            }
            for _ in 0..config.appliers {
                let n = Arc::clone(&node);
                threads.push(std::thread::spawn(move || n.run_applier()));
            }
            nodes.push(node);
        }
        Ok(Cluster {
            nodes: RwLock::new(nodes),
            group,
            threads: Mutex::new(threads),
            config,
            registry,
            member_of: Mutex::new(member_of),
            rejoins: Mutex::new(HashMap::new()),
            epoch,
            auditor,
            crash_plan,
        })
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Nanoseconds since this cluster's shared journal epoch — "journal
    /// time" now. The telemetry clock handshake samples this around a
    /// sequencer time probe to compute the offset that maps this process's
    /// journal timestamps onto the sequencer's timeline.
    pub fn epoch_elapsed_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.read().is_empty()
    }

    pub fn node(&self, k: usize) -> Arc<ReplicaNode> {
        // sirep-lint: allow(no-unwrap-on-protocol-paths): accessor contract — a replica id out of range is harness misuse, panicking here is the documented behavior (like slice indexing)
        Arc::clone(&self.nodes.read()[k])
    }

    pub fn nodes(&self) -> Vec<Arc<ReplicaNode>> {
        self.nodes.read().clone()
    }

    /// Live replicas — what the driver's discovery multicast returns.
    pub fn alive(&self) -> Vec<Arc<ReplicaNode>> {
        self.nodes.read().iter().filter(|n| n.is_alive()).cloned().collect()
    }

    /// Open a client session pinned to replica `k`.
    pub fn session(&self, k: usize) -> Session {
        Session::new(self.node(k))
    }

    /// Run DDL at every replica (schemas must be identical; the paper
    /// installs them before the run).
    pub fn execute_ddl(&self, sql: &str) -> Result<(), DbError> {
        for n in self.nodes.read().iter() {
            let txn = n.database().begin()?;
            sirep_sql::execute_sql(n.database(), &txn, sql)?;
            txn.commit()?;
        }
        Ok(())
    }

    /// Deterministically populate every replica (same closure per replica —
    /// use a fixed seed!).
    pub fn load_with(&self, f: impl Fn(&Database) -> Result<(), DbError>) -> Result<(), DbError> {
        for n in self.nodes.read().iter() {
            // Bulk load: initial population is not part of any experiment,
            // so skip the service-time charges.
            n.database().cost_model().set_suspended(true);
            let r = f(n.database());
            n.database().cost_model().set_suspended(false);
            r?;
        }
        Ok(())
    }

    /// Install a seeded fault-injection plan on the underlying group (see
    /// [`FaultConfig`]). Faults journal under [`NETWORK_REPLICA`] on the
    /// cluster's shared epoch so they interleave correctly with replica
    /// events in trace exports.
    pub fn install_faults(&self, cfg: FaultConfig) {
        self.group.install_faults_with_epoch(cfg, self.epoch);
    }

    /// Symmetrically partition `replicas` away from the rest of the
    /// cluster: deliveries to them are held, and their own multicasts are
    /// buffered, until [`Cluster::heal_partition`]. Installs a quiet fault
    /// plan if none is present.
    pub fn partition(&self, replicas: &[usize]) {
        let member_of = self.member_of.lock();
        let members: Vec<MemberId> =
            replicas.iter().filter_map(|k| member_of.get(k).copied()).collect();
        drop(member_of);
        self.group.partition(&members);
    }

    /// Heal the active partition: held deliveries flush in their original
    /// order, then the isolated members' buffered multicasts are sequenced.
    pub fn heal_partition(&self) {
        self.group.heal();
    }

    /// Running fingerprint of the fault schedule as `(count, fnv64)` — two
    /// runs with the same seed and workload shape must agree byte-for-byte.
    pub fn fault_fingerprint(&self) -> Option<(u64, u64)> {
        self.group.fault_fingerprint()
    }

    /// Arm a one-shot crash-point: the next time replica `k` reaches
    /// `point`, it crash-stops there (see [`crate::chaos`]).
    pub fn arm_crash_point(&self, point: CrashPoint, k: usize) {
        self.crash_plan.arm(point, ReplicaId::new(self.config.first_replica + k as u64));
    }

    /// Disarm a crash-point that has not fired yet.
    pub fn disarm_crash_point(&self, point: CrashPoint) {
        self.crash_plan.disarm(point);
    }

    /// Crash-points still armed (not yet fired or disarmed).
    pub fn armed_crash_points(&self) -> Vec<(CrashPoint, ReplicaId)> {
        self.crash_plan.armed()
    }

    /// Arm a pause-point: threads of replica `k` reaching `point` block
    /// until [`Cluster::release_pause`] — the deterministic-interleaving
    /// hook counterexample-replay tests (sirep-model) are built on.
    pub fn arm_pause(&self, point: PausePoint, k: usize) {
        self.crash_plan.arm_pause(point, ReplicaId::new(self.config.first_replica + k as u64));
    }

    /// Release every thread parked at `point` and disarm it.
    pub fn release_pause(&self, point: PausePoint) {
        self.crash_plan.release_pause(point);
    }

    /// How many threads have parked at `point` since it was armed.
    pub fn pause_reached(&self, point: PausePoint) -> usize {
        self.crash_plan.pause_reached(point)
    }

    /// Crash replica `k`: survivors get a view change; clients of `k` see
    /// connection errors and fail over.
    pub fn crash(&self, k: usize) {
        // Crash the group member first so the survivors' uniform-delivery
        // cut is taken before local cleanup rejects anything. A missing
        // membership entry means the member is already gone from the group;
        // the local mark_crashed below is still required (and `node(k)`
        // still bounds-checks `k`). The copy is hoisted into its own
        // statement so the member_of guard is released before the group
        // and node-state locks are taken (edition-2021 `if let` keeps
        // scrutinee temporaries alive for the whole block).
        let member = self.member_of.lock().get(&k).copied();
        if let Some(member) = member {
            self.group.crash(member);
        }
        self.node(k).mark_crashed();
    }

    /// **Online recovery** (the paper's §8 future work): bring a crashed
    /// replica back without halting transaction processing.
    ///
    /// Protocol: the recovering replica first re-joins the group under a
    /// fresh member id (its deliveries buffer from that point on); a donor
    /// replica is then briefly latched to produce a consistent state
    /// transfer — a fork of its committed database plus the validation
    /// state (`ws_list`, queue, outcome log). Buffered deliveries already
    /// covered by the transfer are recognized via the outcome log and
    /// skipped; everything newer validates and applies normally. Only the
    /// donor is latched, and only for the duration of the copy.
    pub fn recover(&self, k: usize) -> Result<(), DbError> {
        {
            let nodes = self.nodes.read();
            match nodes.get(k) {
                None => return Err(DbError::Internal(format!("no such replica {k}"))),
                Some(n) if n.is_alive() => {
                    return Err(DbError::Internal(format!("replica {k} has not crashed")));
                }
                Some(_) => {}
            }
        }
        // 1. Join the group: deliveries buffer in the member's queue from
        //    here on.
        let member = self
            .group
            .join()
            .map_err(|e| DbError::Internal(format!("transport re-join failed: {e}")))?;
        let rid = ReplicaId::new(self.config.first_replica + k as u64);
        self.registry.lock().insert(member.id().raw(), rid);
        self.member_of.lock().insert(k, member.id());
        // 2+3. Pick a donor, barrier on a marker, pull the state transfer.
        //    A donor can die at any point in this window (including via the
        //    armed `mid_state_transfer` crash-point, which kills it right
        //    after it produced the snapshot); each failure discards the
        //    partial transfer and restarts with the next live donor.
        let (db, bootstrap) = loop {
            let donor = self
                .alive()
                .into_iter()
                .find(|n| n.id() != rid)
                .ok_or_else(|| DbError::Internal("no live donor replica".into()))?;
            // Barrier: multicast a marker through the joiner's membership
            // and wait for the donor to process it. Everything sequenced
            // before the joiner's buffer began is then reflected in the
            // donor's state; everything after is in the buffer.
            let token = {
                use std::sync::atomic::{AtomicU64, Ordering};
                static NEXT: AtomicU64 = AtomicU64::new(1);
                (member.id().raw() << 32) | NEXT.fetch_add(1, Ordering::Relaxed)
            };
            member
                .handle()
                .multicast_total(crate::msg::ReplMsg::Marker { token })
                .map_err(|_| DbError::Internal("joiner failed to multicast marker".into()))?;
            if !donor.wait_for_marker(token, Duration::from_secs(30)) {
                if !donor.is_alive() {
                    continue; // the donor died while we waited; next donor
                }
                return Err(DbError::Internal("donor never processed the recovery marker".into()));
            }
            // Consistent state transfer from the donor (brief latch).
            let snapshot = donor.state_transfer(self.config.cost.clone());
            if self.crash_plan.fire(CrashPoint::MidStateTransfer, donor.id()) {
                // The donor crash-stops with the snapshot handed over but
                // not yet installed; the joiner must not trust a transfer
                // from a dead donor, so discard it and retry.
                donor
                    .journal
                    .record(EventKind::CrashPointFired { point: CrashPoint::MidStateTransfer });
                self.crash(donor.id().index() - self.config.first_replica as usize);
                continue;
            }
            break snapshot;
        };
        if self.config.track_history {
            db.set_track_reads(true);
        }
        // 4. Construct the node and let it drain the buffer + live stream.
        let incarnation = {
            let mut rejoins = self.rejoins.lock();
            let e = rejoins.entry(k).or_insert(0);
            *e += 1;
            *e
        };
        let node = ReplicaNode::new(
            rid,
            db,
            member.handle(),
            self.config.mode,
            self.config.outcome_cap,
            self.config.track_history,
            Arc::clone(&self.registry),
            incarnation,
            Some(bootstrap),
            Journal::with_epoch(rid, self.epoch, DEFAULT_JOURNAL_CAPACITY),
            Arc::clone(&self.auditor),
            Arc::clone(&self.crash_plan),
        );
        {
            let n = Arc::clone(&node);
            self.threads.lock().push(std::thread::spawn(move || n.run_delivery(member)));
        }
        for _ in 0..self.config.appliers {
            let n = Arc::clone(&node);
            self.threads.lock().push(std::thread::spawn(move || n.run_applier()));
        }
        // sirep-lint: allow(no-unwrap-on-protocol-paths): k was bounds-checked against the nodes vec at entry to recover, and n never changes after startup
        self.nodes.write()[k] = node;
        Ok(())
    }

    /// Aggregated observability report: cluster-wide counters, merged
    /// stage-latency histograms, and per-replica status snapshots. Derefs
    /// to [`Metrics`] for counter access.
    pub fn metrics(&self) -> ClusterReport {
        let nodes = self.nodes.read().clone();
        let per_node: Vec<NodeStatus> = nodes.iter().map(|n| n.status()).collect();
        let mut report = ClusterReport::from_statuses(per_node, self.auditor.violations());
        // Every node reports the same group-wide in-flight gauge, so the
        // merge above over-counts it |nodes| times — read it once instead.
        report.gauges.gcs_in_flight = self.group.in_flight();
        // Fault gauges live on the group's fault plan, not on any node.
        if let Some((injected, partitioned)) = self.group.fault_gauges() {
            report.gauges.faults_injected = injected;
            report.gauges.partitioned = partitioned;
        }
        // The group-level rollup also covers retired (crashed / re-joined)
        // endpoints and reconnect/eviction churn the per-node snapshots
        // cannot see.
        report.transport = self.group.transport();
        report
    }

    /// Violations the online 1-copy-SI auditor has recorded so far.
    pub fn audit_violations(&self) -> Vec<AuditViolation> {
        self.auditor.violations()
    }

    /// True while the auditor has recorded no violation (lock-free).
    pub fn audit_is_clean(&self) -> bool {
        self.auditor.is_clean()
    }

    /// Snapshot of every replica's protocol event journal, in replica
    /// order (empty vectors without the `trace` feature). When a fault
    /// plan is installed its network-level events (injections, partitions)
    /// are appended under the pseudo-replica [`NETWORK_REPLICA`].
    pub fn journal_events(&self) -> Vec<(ReplicaId, Vec<Event>)> {
        let mut out: Vec<(ReplicaId, Vec<Event>)> =
            self.nodes.read().iter().map(|n| (n.id(), n.journal.snapshot())).collect();
        let net = self.group.fault_journal();
        if !net.is_empty() {
            out.push((NETWORK_REPLICA, net));
        }
        out
    }

    /// Render all journals as a Chrome-Trace/Perfetto JSON document
    /// ([`crate::export::perfetto_trace_json`]).
    pub fn perfetto_json(&self) -> String {
        crate::export::perfetto_trace_json(&self.journal_events())
    }

    /// Wait until all in-flight replication work has drained (queues empty,
    /// no pending local transactions, validation counters stable).
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable_rounds = 0;
        let mut last_fingerprint = (0u64, 0usize, 0usize);
        while Instant::now() < deadline {
            let alive = self.alive();
            let fp = (
                alive.iter().map(|n| n.last_validated().raw()).max().unwrap_or(0),
                alive.iter().map(|n| n.queue_len()).sum::<usize>(),
                alive.iter().map(|n| n.pending_len()).sum::<usize>(),
            );
            let idle =
                fp.1 == 0 && fp.2 == 0 && alive.iter().all(|n| n.last_validated().raw() == fp.0);
            if idle && fp == last_fingerprint {
                stable_rounds += 1;
                if stable_rounds >= 3 {
                    return true;
                }
            } else {
                stable_rounds = 0;
            }
            last_fingerprint = fp;
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    /// Collect the recorded execution for 1-copy-SI checking. Call only on
    /// a quiesced cluster with `track_history` enabled. Returns the
    /// transaction specs and the per-replica schedules.
    pub fn collect_history(&self) -> (BTreeMap<XactId, TxSpec>, ReplicatedExecution<XactId>) {
        let nodes = self.nodes.read().clone();
        let mut specs: BTreeMap<XactId, TxSpec> = BTreeMap::new();
        for n in &nodes {
            for (xact, spec) in n.recorder.take_specs() {
                specs.insert(xact, spec);
            }
        }
        let mut exec = ReplicatedExecution { schedules: Vec::new(), locality: BTreeMap::new() };
        for n in &nodes {
            let events: Vec<_> = n
                .recorder
                .take_events()
                .into_iter()
                .filter(|op| specs.contains_key(&op.txn()))
                .collect();
            exec.schedules.push(events);
        }
        for xact in specs.keys() {
            exec.locality.insert(*xact, xact.origin.index());
        }
        (specs, exec)
    }

    /// Shut the whole cluster down and join all threads.
    pub fn shutdown(&self) {
        let nodes = self.nodes.read().clone();
        for (k, n) in nodes.iter().enumerate() {
            if n.is_alive() {
                // No membership entry means the group member is already
                // gone (concurrent crash); still fail the node's clients.
                // Copy hoisted so the member_of guard drops before the
                // group lock is taken (edition-2021 if-let temporaries).
                let member = self.member_of.lock().get(&k).copied();
                if let Some(member) = member {
                    self.group.crash(member);
                }
                n.mark_crashed();
            }
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
