//! Behavioural tests for the SRCA-Rep cluster.

use crate::cluster::{Cluster, ClusterConfig};
use crate::model::check_one_copy_si;
use crate::msg::Outcome;
use crate::node::{InDoubt, ReplicationMode};
use crate::session::Connection;
use sirep_common::{AbortReason, DbError};
use sirep_storage::Value;
use std::time::Duration;

const Q: Duration = Duration::from_secs(10);

fn kv_cluster(n: usize) -> Cluster {
    let c = Cluster::new(ClusterConfig::builder().replicas(n).build());
    c.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    c
}

fn get(c: &Cluster, node: usize, k: i64) -> Option<i64> {
    let mut s = c.session(node);
    let r = s.execute(&format!("SELECT v FROM kv WHERE k = {k}")).unwrap();
    let out = r.rows().first().map(|row| row[0].as_int().unwrap());
    s.commit().unwrap();
    out
}

#[test]
fn update_propagates_to_all_replicas() {
    let c = kv_cluster(3);
    let mut s = c.session(0);
    s.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    s.commit().unwrap();
    assert!(c.quiesce(Q));
    for k in 0..3 {
        assert_eq!(get(&c, k, 1), Some(10), "replica {k} missing the write");
    }
    let m = c.metrics();
    assert_eq!(sirep_common::Metrics::get(&m.commits_update), 1);
    // The writeset was delivered at all 3 replicas.
    assert_eq!(sirep_common::Metrics::get(&m.ws_delivered), 3);
}

#[test]
fn readonly_transactions_do_not_coordinate() {
    let c = kv_cluster(2);
    let mut s = c.session(0);
    s.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    s.commit().unwrap();
    c.quiesce(Q);
    let delivered_before = sirep_common::Metrics::get(&c.metrics().ws_delivered);
    let mut r = c.session(1);
    let res = r.execute("SELECT v FROM kv WHERE k = 1").unwrap();
    assert_eq!(res.rows()[0][0], Value::Int(10));
    r.commit().unwrap();
    let m = c.metrics();
    assert_eq!(sirep_common::Metrics::get(&m.ws_delivered), delivered_before);
    assert_eq!(sirep_common::Metrics::get(&m.commits_readonly), 1);
}

#[test]
fn concurrent_conflicting_updates_one_aborts() {
    let c = kv_cluster(2);
    let mut setup = c.session(0);
    setup.execute("INSERT INTO kv VALUES (1, 0)").unwrap();
    setup.commit().unwrap();
    assert!(c.quiesce(Q));

    let mut a = c.session(0);
    let mut b = c.session(1);
    a.execute("UPDATE kv SET v = 1 WHERE k = 1").unwrap();
    b.execute("UPDATE kv SET v = 2 WHERE k = 1").unwrap();
    // Both executed on their snapshots at different replicas; certification
    // lets exactly one through.
    let ra = a.commit();
    let rb = b.commit();
    assert!(
        ra.is_ok() ^ rb.is_ok(),
        "exactly one of two conflicting transactions must commit: {ra:?} / {rb:?}"
    );
    assert!(c.quiesce(Q));
    let winner = if ra.is_ok() { 1 } else { 2 };
    for k in 0..2 {
        assert_eq!(get(&c, k, 1), Some(winner));
    }
    let m = c.metrics();
    assert_eq!(m.forced_aborts(), 1);
}

#[test]
fn disjoint_concurrent_updates_both_commit() {
    let c = kv_cluster(2);
    let mut a = c.session(0);
    let mut b = c.session(1);
    a.execute("INSERT INTO kv VALUES (1, 1)").unwrap();
    b.execute("INSERT INTO kv VALUES (2, 2)").unwrap();
    a.commit().unwrap();
    b.commit().unwrap();
    assert!(c.quiesce(Q));
    for k in 0..2 {
        assert_eq!(get(&c, k, 1), Some(1));
        assert_eq!(get(&c, k, 2), Some(2));
    }
}

#[test]
fn client_reads_its_own_writes() {
    let c = kv_cluster(3);
    let mut s = c.session(1);
    s.execute("INSERT INTO kv VALUES (7, 70)").unwrap();
    s.commit().unwrap();
    // Immediately visible at the same replica (committed locally before the
    // commit call returned).
    assert_eq!(get(&c, 1, 7), Some(70));
}

#[test]
fn rollback_discards_everywhere() {
    let c = kv_cluster(2);
    let mut s = c.session(0);
    s.execute("INSERT INTO kv VALUES (5, 50)").unwrap();
    s.rollback();
    assert!(c.quiesce(Q));
    for k in 0..2 {
        assert_eq!(get(&c, k, 5), None);
    }
    // No writeset was ever multicast.
    assert_eq!(sirep_common::Metrics::get(&c.metrics().ws_delivered), 0);
}

#[test]
fn many_writers_converge_identically() {
    let c = std::sync::Arc::new(kv_cluster(3));
    let mut handles = Vec::new();
    for node in 0..3 {
        let c2 = std::sync::Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let mut s = c2.session(node);
            let mut commits = 0;
            for i in 0..40 {
                let key = (node as i64) * 1000 + i; // disjoint keys
                s.execute(&format!("INSERT INTO kv VALUES ({key}, {i})")).unwrap();
                if s.commit().is_ok() {
                    commits += 1;
                }
            }
            commits
        }));
    }
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 120);
    assert!(c.quiesce(Q));
    for k in 0..3 {
        assert_eq!(c.node(k).database().table_len("kv"), 120, "replica {k} diverged");
    }
    // All replicas validated the same number of writesets.
    let lv0 = c.node(0).last_validated();
    assert_eq!(lv0.raw(), 120);
    for k in 1..3 {
        assert_eq!(c.node(k).last_validated(), lv0);
    }
}

#[test]
fn contended_counter_full_cluster() {
    let c = std::sync::Arc::new(kv_cluster(3));
    {
        let mut s = c.session(0);
        s.execute("INSERT INTO kv VALUES (1, 0)").unwrap();
        s.commit().unwrap();
    }
    assert!(c.quiesce(Q));
    let mut handles = Vec::new();
    for node in 0..3 {
        let c2 = std::sync::Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let mut s = c2.session(node);
            let mut done = 0;
            while done < 20 {
                let r = s.execute("UPDATE kv SET v = v + 1 WHERE k = 1").and_then(|_| s.commit());
                if r.is_ok() {
                    done += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(c.quiesce(Q));
    for k in 0..3 {
        assert_eq!(get(&c, k, 1), Some(60), "replica {k} lost increments");
    }
}

#[test]
fn crash_surfaces_to_clients_and_survivors_continue() {
    let c = kv_cluster(3);
    let mut s0 = c.session(0);
    s0.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    s0.commit().unwrap();
    assert!(c.quiesce(Q));

    c.crash(0);
    // The crashed replica's sessions fail.
    let err = s0.execute("SELECT v FROM kv WHERE k = 1").unwrap_err();
    assert!(matches!(err, DbError::Aborted(_)), "got {err:?}");
    // Survivors keep working.
    let mut s1 = c.session(1);
    s1.execute("UPDATE kv SET v = 11 WHERE k = 1").unwrap();
    s1.commit().unwrap();
    assert!(c.quiesce(Q));
    assert_eq!(get(&c, 1, 1), Some(11));
    assert_eq!(get(&c, 2, 1), Some(11));
    assert_eq!(c.alive().len(), 2);
}

#[test]
fn indoubt_resolution_committed_transaction() {
    let c = kv_cluster(3);
    let mut s = c.session(0);
    s.execute("INSERT INTO kv VALUES (9, 90)").unwrap();
    let xact = s.xact_id().expect("in transaction");
    s.commit().unwrap();
    assert!(c.quiesce(Q));
    c.crash(0);
    // Fail over to replica 1 and ask about the in-doubt transaction: the
    // writeset was received (uniform delivery), so the answer is Committed.
    let r = c.node(1).inquire(xact).unwrap();
    assert_eq!(r, InDoubt::Known(Outcome::Committed));
}

#[test]
fn indoubt_resolution_never_received() {
    let c = kv_cluster(2);
    // A transaction id from replica 0 whose writeset was never multicast.
    let mut s = c.session(0);
    s.execute("INSERT INTO kv VALUES (1, 1)").unwrap();
    let xact = s.xact_id().unwrap();
    // Crash before commit: the writeset never existed.
    c.crash(0);
    assert!(s.commit().is_err());
    let r = c.node(1).inquire(xact).unwrap();
    assert_eq!(r, InDoubt::NeverReceived, "uniform delivery: never arrived → aborted");
}

#[test]
fn validation_failure_reported_as_retryable() {
    let c = kv_cluster(2);
    {
        let mut s = c.session(0);
        s.execute("INSERT INTO kv VALUES (1, 0)").unwrap();
        s.commit().unwrap();
    }
    assert!(c.quiesce(Q));
    let mut a = c.session(0);
    let mut b = c.session(1);
    a.execute("UPDATE kv SET v = 1 WHERE k = 1").unwrap();
    b.execute("UPDATE kv SET v = 2 WHERE k = 1").unwrap();
    let ra = a.commit();
    let rb = b.commit();
    let err = match (ra, rb) {
        (Err(e), Ok(())) | (Ok(()), Err(e)) => e,
        other => panic!("expected one failure: {other:?}"),
    };
    match err {
        DbError::Aborted(reason) => assert!(reason.is_retryable()),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn srca_opt_mode_still_replicates() {
    let cfg = ClusterConfig::builder().replicas(3).mode(ReplicationMode::SrcaOpt).build();
    let c = Cluster::new(cfg);
    c.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    let mut s = c.session(2);
    s.execute("INSERT INTO kv VALUES (1, 1)").unwrap();
    s.commit().unwrap();
    assert!(c.quiesce(Q));
    for k in 0..3 {
        assert_eq!(get(&c, k, 1), Some(1));
    }
}

#[test]
fn history_checker_passes_on_real_execution() {
    let cfg = ClusterConfig::builder().replicas(3).track_history(true).build();
    let c = std::sync::Arc::new(Cluster::new(cfg));
    c.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    {
        let mut s = c.session(0);
        for k in 0..10 {
            s.execute(&format!("INSERT INTO kv VALUES ({k}, 0)")).unwrap();
        }
        s.commit().unwrap();
    }
    assert!(c.quiesce(Q));
    // Concurrent mixed workload: updates + read-only sum transactions.
    let mut handles = Vec::new();
    for node in 0..3 {
        let c2 = std::sync::Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let mut s = c2.session(node);
            for i in 0..30 {
                if i % 3 == 0 {
                    let _ = s.execute("SELECT v FROM kv WHERE k = 2");
                    let _ = s.execute("SELECT v FROM kv WHERE k = 3");
                    let _ = s.commit();
                } else {
                    let k = (node + i) % 10;
                    let _ = s.execute(&format!("UPDATE kv SET v = v + 1 WHERE k = {k}"));
                    let _ = s.commit();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(c.quiesce(Q));
    let (specs, exec) = c.collect_history();
    assert!(!specs.is_empty());
    let witness = check_one_copy_si(&specs, &exec)
        .unwrap_or_else(|v| panic!("1-copy-SI violated by SRCA-Rep: {v}"));
    assert_eq!(witness.len(), 2 * specs.len());
}

#[test]
fn autocommit_mode_commits_each_statement() {
    let c = kv_cluster(2);
    let mut s = c.session(0);
    s.set_autocommit(true).unwrap();
    s.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    assert!(!s.in_transaction(), "autocommit leaves no open transaction");
    // Already replicating without an explicit commit call.
    assert!(c.quiesce(Q));
    assert_eq!(get(&c, 1, 1), Some(10));
    // Turning autocommit on mid-transaction commits the open work first.
    s.set_autocommit(false).unwrap();
    s.execute("INSERT INTO kv VALUES (2, 20)").unwrap();
    assert!(s.in_transaction());
    s.set_autocommit(true).unwrap();
    assert!(!s.in_transaction());
    assert!(c.quiesce(Q));
    assert_eq!(get(&c, 1, 2), Some(20));
}

#[test]
fn abort_reasons_surface_from_local_db_conflicts() {
    // Two sessions at the SAME replica conflicting → the database's
    // first-updater-wins kicks in (not middleware validation).
    let c = kv_cluster(1);
    {
        let mut s = c.session(0);
        s.execute("INSERT INTO kv VALUES (1, 0)").unwrap();
        s.commit().unwrap();
    }
    let mut a = c.session(0);
    let mut b = c.session(0);
    // Start b's snapshot before a commits so the two are concurrent.
    b.execute("SELECT v FROM kv WHERE k = 1").unwrap();
    a.execute("UPDATE kv SET v = 1 WHERE k = 1").unwrap();
    a.commit().unwrap();
    assert!(c.quiesce(Q));
    let err = b.execute("UPDATE kv SET v = 2 WHERE k = 1").unwrap_err();
    assert_eq!(err, DbError::Aborted(AbortReason::SerializationFailure));
}
