//! Renderers for the observability layer: Chrome-Trace/Perfetto JSON from
//! the protocol event journals, and Prometheus text exposition from a
//! [`ClusterReport`].
//!
//! Both are hand-rolled string builders — the workspace has no JSON
//! dependency, and both formats are line/array-oriented enough that a
//! serializer would buy nothing. Every string that reaches the output comes
//! from a `Display` impl or a `name()` table under our control (no client
//! data), so no escaping is needed.

use crate::cluster::ClusterReport;
use sirep_common::{Event, EventKind, ReplicaId, Stage};
use std::fmt::Write as _;

/// Render per-replica journals as one Chrome Trace Event Format document —
/// load it at `ui.perfetto.dev` or `chrome://tracing`.
///
/// Layout: one "process" per replica (pid = replica id). Track 0 carries an
/// instant event per journal record; track 1 carries transaction spans
/// (begin → commit/abort at the same replica); track 2 carries writeset
/// application spans (apply_start → apply_done). Timestamps are
/// microseconds from the journals' shared epoch, so replicas align.
pub fn perfetto_trace_json(journals: &[(ReplicaId, Vec<Event>)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&s);
    };
    for (replica, _) in journals {
        emit(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"replica {}\"}}}}",
                replica.raw(),
                replica
            ),
            &mut out,
        );
    }
    // Open spans keyed by (replica, xact): value is the start ts in µs.
    let mut tx_open: Vec<((u64, sirep_common::XactId), f64)> = Vec::new();
    let mut apply_open: Vec<((u64, sirep_common::XactId), f64)> = Vec::new();
    let take = |open: &mut Vec<((u64, sirep_common::XactId), f64)>,
                key: (u64, sirep_common::XactId)| {
        open.iter().position(|(k, _)| *k == key).map(|i| open.swap_remove(i).1)
    };
    for (replica, events) in journals {
        let pid = replica.raw();
        for e in events {
            let ts = e.at_ns as f64 / 1000.0;
            emit(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"protocol\",\"ph\":\"i\",\"ts\":{ts:.3},\
                     \"pid\":{pid},\"tid\":0,\"s\":\"t\",\"args\":{{{}}}}}",
                    e.kind.name(),
                    event_args(&e.kind)
                ),
                &mut out,
            );
            match e.kind {
                EventKind::TxBegin { xact } => tx_open.push(((pid, xact), ts)),
                EventKind::Commit { xact, .. } | EventKind::Abort { xact } => {
                    if let Some(start) = take(&mut tx_open, (pid, xact)) {
                        let dur = (ts - start).max(0.0);
                        emit(
                            format!(
                                "{{\"name\":\"tx {xact}\",\"cat\":\"tx\",\"ph\":\"X\",\
                                 \"ts\":{start:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":1}}"
                            ),
                            &mut out,
                        );
                    }
                }
                EventKind::ApplyStart { xact, .. } => apply_open.push(((pid, xact), ts)),
                EventKind::ApplyDone { xact, tid } => {
                    if let Some(start) = take(&mut apply_open, (pid, xact)) {
                        let dur = (ts - start).max(0.0);
                        emit(
                            format!(
                                "{{\"name\":\"apply {tid}\",\"cat\":\"apply\",\"ph\":\"X\",\
                                 \"ts\":{start:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":2}}"
                            ),
                            &mut out,
                        );
                    }
                }
                _ => {}
            }
        }
    }
    out.push_str("]}");
    out
}

/// The `args` object body (without braces) for one event.
fn event_args(kind: &EventKind) -> String {
    match *kind {
        EventKind::TxBegin { xact } => format!("\"xact\":\"{xact}\""),
        EventKind::CertCapture { xact, cert } => {
            format!("\"xact\":\"{xact}\",\"cert\":{}", cert.raw())
        }
        EventKind::Multicast { xact } => format!("\"xact\":\"{xact}\""),
        EventKind::TotalOrderDeliver { xact, cert } => {
            format!("\"xact\":\"{xact}\",\"cert\":{}", cert.raw())
        }
        EventKind::ValidationVerdict { xact, tid, passed } => match tid {
            Some(t) => format!("\"xact\":\"{xact}\",\"tid\":{},\"passed\":{passed}", t.raw()),
            None => format!("\"xact\":\"{xact}\",\"tid\":null,\"passed\":{passed}"),
        },
        EventKind::HoleOpened { tid } | EventKind::HoleClosed { tid } => {
            format!("\"tid\":{}", tid.raw())
        }
        EventKind::WsListPruned { watermark, removed } => {
            format!("\"watermark\":{},\"removed\":{removed}", watermark.raw())
        }
        EventKind::Commit { xact, tid } => {
            format!("\"xact\":\"{xact}\",\"tid\":{}", tid.raw())
        }
        EventKind::Abort { xact } => format!("\"xact\":\"{xact}\""),
        EventKind::ApplyStart { xact, tid } | EventKind::ApplyDone { xact, tid } => {
            format!("\"xact\":\"{xact}\",\"tid\":{}", tid.raw())
        }
        EventKind::ViewChange { members } => format!("\"members\":{members}"),
        EventKind::ClientFailover { from } => format!("\"from\":\"{from}\""),
        EventKind::FaultInjected { fault, msg, member } => {
            format!("\"fault\":\"{}\",\"msg\":{msg},\"member\":{member}", fault.name())
        }
        EventKind::PartitionStarted { isolated } => format!("\"isolated\":{isolated}"),
        EventKind::PartitionHealed { flushed } => format!("\"flushed\":{flushed}"),
        EventKind::CrashPointFired { point } => format!("\"point\":\"{}\"", point.name()),
        EventKind::LocalReadOnly { xact, snapshot } => {
            format!("\"xact\":\"{xact}\",\"snapshot\":{}", snapshot.raw())
        }
    }
}

/// Render a [`ClusterReport`] in the Prometheus text exposition format
/// (version 0.0.4): every protocol counter (cluster total unlabeled, plus a
/// `replica="k"` labeled series per node), the queue-depth gauges with
/// their high-water marks, stage-latency quantiles, and the auditor's
/// violation count.
pub fn prometheus_text(report: &ClusterReport) -> String {
    let mut out = String::new();
    // --- counters ---------------------------------------------------------
    let totals = report.metrics.counters();
    for (i, (name, total)) in totals.iter().enumerate() {
        let _ = writeln!(out, "# HELP sirep_{name}_total Protocol event counter {name}.");
        let _ = writeln!(out, "# TYPE sirep_{name}_total counter");
        let _ = writeln!(out, "sirep_{name}_total {total}");
        for node in &report.per_node {
            let (n, v) = node.metrics.counters()[i];
            debug_assert_eq!(n, *name);
            let _ = writeln!(out, "sirep_{name}_total{{replica=\"{}\"}} {v}", node.replica.raw());
        }
    }
    // --- gauges -----------------------------------------------------------
    let cluster_fields = report.gauges.fields();
    for (i, (name, reading)) in cluster_fields.iter().enumerate() {
        let _ = writeln!(out, "# HELP sirep_{name} Protocol gauge {name}.");
        let _ = writeln!(out, "# TYPE sirep_{name} gauge");
        let _ = writeln!(out, "sirep_{name} {}", reading.current);
        for node in &report.per_node {
            let (_, r) = node.gauges.fields()[i];
            let _ =
                writeln!(out, "sirep_{name}{{replica=\"{}\"}} {}", node.replica.raw(), r.current);
        }
        let _ = writeln!(out, "# HELP sirep_{name}_high_water High-water mark of {name}.");
        let _ = writeln!(out, "# TYPE sirep_{name}_high_water gauge");
        let _ = writeln!(out, "sirep_{name}_high_water {}", reading.high_water);
        for node in &report.per_node {
            let (_, r) = node.gauges.fields()[i];
            let _ = writeln!(
                out,
                "sirep_{name}_high_water{{replica=\"{}\"}} {}",
                node.replica.raw(),
                r.high_water
            );
        }
    }
    // --- liveness ---------------------------------------------------------
    let _ = writeln!(out, "# HELP sirep_replica_alive 1 while the replica serves transactions.");
    let _ = writeln!(out, "# TYPE sirep_replica_alive gauge");
    for node in &report.per_node {
        let _ = writeln!(
            out,
            "sirep_replica_alive{{replica=\"{}\"}} {}",
            node.replica.raw(),
            node.alive as u8
        );
    }
    // --- stage latencies --------------------------------------------------
    let mut latency = String::new();
    let mut samples = String::new();
    let mut overflow = String::new();
    for stage in Stage::ALL {
        let count = report.stages.count(stage);
        if count == 0 {
            continue;
        }
        for q in [0.5, 0.95, 0.99] {
            let v = report.stages.quantile(stage, q);
            if v.is_finite() {
                let _ = writeln!(
                    latency,
                    "sirep_stage_latency_ms{{stage=\"{}\",quantile=\"{q}\"}} {v:.6}",
                    stage.name()
                );
            }
        }
        let _ =
            writeln!(samples, "sirep_stage_samples_total{{stage=\"{}\"}} {count}", stage.name());
        let _ = writeln!(
            overflow,
            "sirep_stage_overflow_total{{stage=\"{}\"}} {}",
            stage.name(),
            report.stages.overflow(stage)
        );
    }
    if !latency.is_empty() {
        let _ = writeln!(out, "# HELP sirep_stage_latency_ms Stage latency quantiles (ms).");
        let _ = writeln!(out, "# TYPE sirep_stage_latency_ms gauge");
        out.push_str(&latency);
    }
    if !samples.is_empty() {
        let _ = writeln!(out, "# HELP sirep_stage_samples_total Stage latency sample counts.");
        let _ = writeln!(out, "# TYPE sirep_stage_samples_total counter");
        out.push_str(&samples);
        let _ = writeln!(
            out,
            "# HELP sirep_stage_overflow_total Samples beyond the histogram range (lower bounds)."
        );
        let _ = writeln!(out, "# TYPE sirep_stage_overflow_total counter");
        out.push_str(&overflow);
    }
    // --- transport --------------------------------------------------------
    // Wire-level counters from the TCP tier (all zero on the sim transport,
    // which never serializes); emitted unconditionally so dashboards see a
    // stable series set.
    for (name, value) in report.transport.counters() {
        let _ = writeln!(out, "# HELP sirep_transport_{name}_total Transport counter {name}.");
        let _ = writeln!(out, "# TYPE sirep_transport_{name}_total counter");
        let _ = writeln!(out, "sirep_transport_{name}_total {value}");
    }
    for (name, reading) in report.transport.gauges() {
        let _ = writeln!(out, "# HELP sirep_transport_{name} Transport gauge {name}.");
        let _ = writeln!(out, "# TYPE sirep_transport_{name} gauge");
        let _ = writeln!(out, "sirep_transport_{name} {}", reading.current);
        let _ = writeln!(out, "sirep_transport_{name}_high_water {}", reading.high_water);
    }
    // --- auditor ----------------------------------------------------------
    let _ = writeln!(
        out,
        "# HELP sirep_audit_violations_total Invariant violations found by the 1-copy-SI auditor."
    );
    let _ = writeln!(out, "# TYPE sirep_audit_violations_total counter");
    let _ = writeln!(out, "sirep_audit_violations_total {}", report.violations.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirep_common::{GlobalTid, Journal, XactId};
    use std::time::Instant;

    fn r(k: u64) -> ReplicaId {
        ReplicaId::new(k)
    }

    #[test]
    fn perfetto_document_has_spans_and_instants() {
        let epoch = Instant::now();
        let j = Journal::with_epoch(r(0), epoch, 64);
        let x = XactId::new(r(0), 1);
        j.record(EventKind::TxBegin { xact: x });
        j.record(EventKind::CertCapture { xact: x, cert: GlobalTid::ZERO });
        j.record(EventKind::Multicast { xact: x });
        j.record(EventKind::Commit { xact: x, tid: GlobalTid::new(1) });
        let doc = perfetto_trace_json(&[(r(0), j.snapshot())]);
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"process_name\""));
        if cfg!(feature = "trace") {
            assert!(doc.contains("\"name\":\"tx_begin\""));
            // The begin/commit pair produced a complete ("X") span.
            assert!(doc.contains("\"ph\":\"X\""));
            assert!(doc.contains("\"name\":\"tx R0.0#1\""));
        }
    }

    #[test]
    fn unmatched_span_starts_do_not_emit_spans() {
        let j = Journal::with_epoch(r(0), Instant::now(), 64);
        j.record(EventKind::ApplyStart { xact: XactId::new(r(1), 7), tid: GlobalTid::new(3) });
        let doc = perfetto_trace_json(&[(r(0), j.snapshot())]);
        assert!(!doc.contains("\"ph\":\"X\""));
    }
}
