//! Commit-order holes and the start/commit synchronization of §4.3.3.
//!
//! With adjustment 2 (concurrent commits), transactions may commit at a
//! replica in an order different from validation order; a validated-but-
//! uncommitted transaction with a smaller tid than some committed
//! transaction is a **hole**. Holes are harmless to transactions already
//! running, but a transaction that *starts* while a hole exists can observe
//! a snapshot that includes tid `j` but not tid `i < j` — which is how
//! SRCA-Opt loses 1-copy-SI (§4.3.2 / Fig. 7's ablation).
//!
//! Adjustment 3 restores correctness:
//!
//! - a local transaction may only **start** when there are no holes;
//! - a transaction may only **commit** if (a) no local transaction is
//!   waiting to start, or (b) it is local, or (c) its commit does not create
//!   a new hole.
//!
//! Liveness (paper's argument): the queued transaction with the smallest
//! tid above `max_committed` never creates a new hole, so it can always
//! commit; existing holes therefore drain, and waiting starts are admitted.
//!
//! [`HoleTracker`] implements the bookkeeping; the replica node drives it
//! under its state lock.

use sirep_common::GlobalTid;
use std::collections::BTreeSet;
use std::ops::Bound::Excluded;

/// Tracks validated-but-uncommitted tids at one replica.
#[derive(Debug, Default)]
pub struct HoleTracker {
    /// Validated, not yet committed at this replica, in tid order.
    pending: BTreeSet<GlobalTid>,
    /// Highest tid committed at this replica.
    max_committed: GlobalTid,
    /// Cached `|pending ∩ [..max_committed)|` — the number of open holes.
    /// Maintained incrementally so the hole checks on every begin/commit
    /// (and the `open_holes` gauge refresh) are O(1) instead of a range
    /// count; a pending tid is charged here at most once, when the commit
    /// frontier first passes it.
    open: usize,
    /// Local transactions currently blocked in "wait until no holes"
    /// (the paper's set A).
    waiting_to_start: usize,
    /// Local transactions currently running — begun and still holding
    /// database resources (the paper's set B). While B is non-empty,
    /// hole-creating commits must NOT be throttled: a running local can
    /// hold tuple locks that block a remote writeset, and throttling that
    /// writeset's commit would close a deadlock cycle through the
    /// middleware. §4.3.3: "We allow new holes to be created until B is
    /// empty. Once B is empty, we delay the commit of further
    /// transactions until all holes have disappeared. This does not lead
    /// to hidden deadlocks since there are only remote transactions
    /// delayed [...] which have not yet started and acquired locks."
    running_locals: usize,
}

impl HoleTracker {
    pub fn new() -> HoleTracker {
        HoleTracker::default()
    }

    /// Initialize the tracker of a recovering replica: `max_committed` is
    /// the highest tid contained in the transferred state, `pending` are
    /// validated-but-uncommitted tids copied from the donor's queue.
    pub fn bootstrap(
        max_committed: GlobalTid,
        pending: impl IntoIterator<Item = GlobalTid>,
    ) -> HoleTracker {
        let pending: BTreeSet<GlobalTid> = pending.into_iter().collect();
        let open = pending.range(..max_committed).count();
        HoleTracker { pending, max_committed, open, waiting_to_start: 0, running_locals: 0 }
    }

    /// A writeset passed validation and was queued at this replica.
    pub fn on_validated(&mut self, tid: GlobalTid) {
        let inserted = self.pending.insert(tid);
        debug_assert!(inserted, "tid {tid} validated twice");
        if tid < self.max_committed {
            // Validated below the frontier (bootstrap catch-up): born a hole.
            self.open += 1;
        }
    }

    /// The transaction committed at this replica.
    pub fn on_committed(&mut self, tid: GlobalTid) {
        let removed = self.pending.remove(&tid);
        debug_assert!(removed, "commit of unknown tid {tid}");
        self.advance_frontier(tid, removed);
    }

    /// A queued transaction was aborted/discarded before commit (only
    /// possible during shutdown — validated transactions otherwise always
    /// commit).
    pub fn on_discarded(&mut self, tid: GlobalTid) {
        // Treat like a committed tid so it can never be (or hold open) a
        // hole.
        let removed = self.pending.remove(&tid);
        self.advance_frontier(tid, removed);
    }

    /// Shared commit/discard bookkeeping: `tid` left `pending` (if it was
    /// there) and becomes committed. Closes the hole `tid` itself was, and
    /// when the frontier advances past still-pending tids, opens theirs —
    /// each pending tid is counted at most once, so the range walk is
    /// amortized O(1) per transaction.
    fn advance_frontier(&mut self, tid: GlobalTid, removed: bool) {
        if removed && tid < self.max_committed {
            self.open -= 1;
        } else if tid > self.max_committed {
            self.open += self.pending.range((Excluded(self.max_committed), Excluded(tid))).count();
            self.max_committed = tid;
        }
        debug_assert_eq!(self.open, self.pending.range(..self.max_committed).count());
    }

    /// Is there a hole right now? (Some pending tid below a committed one.)
    pub fn holes_exist(&self) -> bool {
        self.open > 0
    }

    /// How many holes are open right now: pending tids strictly below the
    /// commit frontier (the quantity behind the `open_holes` gauge). O(1).
    pub fn open_holes(&self) -> usize {
        self.open
    }

    /// Would committing `tid` now create a *new* hole? True iff some pending
    /// transaction falls strictly between `max_committed` and `tid` — those
    /// are not yet holes, but would become ones. Committing at or below
    /// `max_committed` only ever *closes* holes.
    pub fn creates_new_hole(&self, tid: GlobalTid) -> bool {
        if tid <= self.max_committed {
            return false;
        }
        self.pending
            .range((std::ops::Bound::Excluded(self.max_committed), std::ops::Bound::Excluded(tid)))
            .next()
            .is_some()
    }

    /// The §4.3.3 commit rule: a commit may be delayed only when (a) it is
    /// remote, (b) it would create a new hole, (c) a local transaction is
    /// waiting to start, **and** (d) no local transaction is still running
    /// (set B empty — otherwise throttling could deadlock with database
    /// tuple locks held by running locals).
    pub fn may_commit(&self, tid: GlobalTid, is_local: bool) -> bool {
        is_local
            || self.waiting_to_start == 0
            || self.running_locals > 0
            || !self.creates_new_hole(tid)
    }

    /// Register/unregister a local transaction blocked on "no holes".
    pub fn start_waiting(&mut self) {
        self.waiting_to_start += 1;
    }

    pub fn done_waiting(&mut self) {
        debug_assert!(self.waiting_to_start > 0);
        self.waiting_to_start -= 1;
    }

    pub fn waiting_to_start(&self) -> usize {
        self.waiting_to_start
    }

    /// A local transaction began (entered set B).
    pub fn local_started(&mut self) {
        self.running_locals += 1;
    }

    /// A local transaction terminated (left set B) — committed, aborted or
    /// rolled back; it no longer holds any database locks.
    pub fn local_finished(&mut self) {
        debug_assert!(self.running_locals > 0);
        self.running_locals -= 1;
    }

    pub fn running_locals(&self) -> usize {
        self.running_locals
    }

    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    pub fn max_committed(&self) -> GlobalTid {
        self.max_committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> GlobalTid {
        GlobalTid::new(n)
    }

    #[test]
    fn in_order_commits_never_hole() {
        let mut h = HoleTracker::new();
        for i in 1..=5 {
            h.on_validated(t(i));
        }
        for i in 1..=5 {
            assert!(!h.creates_new_hole(t(i)) || i > 1);
            assert!(!h.holes_exist());
            h.on_committed(t(i));
        }
        assert!(!h.holes_exist());
        assert_eq!(h.max_committed(), t(5));
    }

    #[test]
    fn out_of_order_commit_creates_hole() {
        let mut h = HoleTracker::new();
        h.on_validated(t(1));
        h.on_validated(t(2));
        assert!(h.creates_new_hole(t(2)), "committing 2 before 1 creates a hole");
        h.on_committed(t(2));
        assert!(h.holes_exist());
        h.on_committed(t(1));
        assert!(!h.holes_exist(), "hole closes when 1 commits");
    }

    #[test]
    fn existing_hole_is_not_a_new_hole() {
        let mut h = HoleTracker::new();
        h.on_validated(t(1));
        h.on_validated(t(2));
        h.on_validated(t(3));
        h.on_committed(t(2)); // 1 is now a hole
                              // Committing 3 does not create a NEW hole (1 is already one, and
                              // nothing pending falls between max_committed=2 and 3).
        assert!(!h.creates_new_hole(t(3)));
        // With 4 and 5 also pending, committing 5 would make 3 and 4 new
        // holes, and committing 4 would make 3 one.
        h.on_validated(t(4));
        h.on_validated(t(5));
        assert!(h.creates_new_hole(t(5)));
        assert!(h.creates_new_hole(t(4)));
        // Once 3 commits, committing 4 is hole-free again.
        h.on_committed(t(3));
        assert!(!h.creates_new_hole(t(4)));
    }

    #[test]
    fn commit_rule_gates_only_hole_creating_remotes_while_locals_wait() {
        let mut h = HoleTracker::new();
        h.on_validated(t(1));
        h.on_validated(t(2));
        h.start_waiting();
        // Remote commit of 2 would create a hole → delayed.
        assert!(!h.may_commit(t(2), false));
        // Local commit of 2 is always allowed.
        assert!(h.may_commit(t(2), true));
        // Remote commit of 1 creates no hole → allowed.
        assert!(h.may_commit(t(1), false));
        h.done_waiting();
        // Nobody waiting → anything may commit.
        assert!(h.may_commit(t(2), false));
    }

    #[test]
    fn running_locals_disable_commit_throttling() {
        // While set B is non-empty, hole-creating remote commits must not
        // be delayed (they could be blocked on a running local's tuple
        // locks — throttling would deadlock).
        let mut h = HoleTracker::new();
        h.on_validated(t(1));
        h.on_validated(t(2));
        h.start_waiting();
        h.local_started();
        assert!(h.may_commit(t(2), false), "B non-empty: no throttling");
        h.local_finished();
        assert!(!h.may_commit(t(2), false), "B empty: throttle hole-creators");
        h.done_waiting();
    }

    #[test]
    fn liveness_smallest_pending_always_commits() {
        let mut h = HoleTracker::new();
        for i in 1..=10 {
            h.on_validated(t(i));
        }
        h.start_waiting();
        let smallest = t(1);
        assert!(h.may_commit(smallest, false));
        h.on_committed(smallest);
        // Next smallest now allowed, and so on — the queue drains.
        assert!(h.may_commit(t(2), false));
    }

    #[test]
    fn committing_below_max_committed_never_creates_holes() {
        let mut h = HoleTracker::new();
        h.on_validated(t(1));
        h.on_validated(t(2));
        h.on_validated(t(3));
        h.on_committed(t(3)); // 1 and 2 are holes now
        assert!(!h.creates_new_hole(t(1)));
        assert!(!h.creates_new_hole(t(2)));
        assert!(!h.creates_new_hole(t(3))); // boundary: tid == max_committed
        assert!(h.may_commit(t(1), false));
    }

    #[test]
    fn open_holes_counter_tracks_frontier_jumps() {
        let mut h = HoleTracker::new();
        for i in 1..=6 {
            h.on_validated(t(i));
        }
        assert_eq!(h.open_holes(), 0);
        h.on_committed(t(5)); // frontier jumps past 1..4
        assert_eq!(h.open_holes(), 4);
        h.on_committed(t(2));
        assert_eq!(h.open_holes(), 3);
        h.on_committed(t(6)); // above frontier, no pending in (5, 6)
        assert_eq!(h.open_holes(), 3);
        h.on_discarded(t(3));
        assert_eq!(h.open_holes(), 2);
        h.on_committed(t(1));
        h.on_committed(t(4));
        assert_eq!(h.open_holes(), 0);
        assert!(!h.holes_exist());
    }

    #[test]
    fn bootstrap_counts_existing_holes() {
        let h = HoleTracker::bootstrap(t(10), [t(3), t(7), t(12)]);
        assert_eq!(h.open_holes(), 2);
        assert!(h.holes_exist());
    }

    #[test]
    fn discard_acts_like_commit_for_hole_accounting() {
        let mut h = HoleTracker::new();
        h.on_validated(t(1));
        h.on_validated(t(2));
        h.on_discarded(t(1));
        assert!(!h.creates_new_hole(t(2)));
        h.on_committed(t(2));
        assert!(!h.holes_exist());
    }
}
