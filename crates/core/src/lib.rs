//! # sirep-core
//!
//! The paper's contribution: **middleware-based replica control providing
//! 1-copy snapshot isolation** (Lin, Kemme, Patiño-Martínez, Jiménez-Peris —
//! SIGMOD 2005), implemented over the [`sirep_storage`] engine and the
//! [`sirep_gcs`] group communication substrate.
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`model`] | §2 | SI-schedules, SI-equivalence, the 1-copy-SI criterion and an exact checker |
//! | [`srca`] | §3 | the centralized SRCA algorithm (Fig. 1), with per-adjustment variants |
//! | [`validation`] | §3/§5.3 | `ws_list` certification + distributed garbage collection |
//! | [`holes`] | §4.3.3 | commit-order holes and start/commit synchronization |
//! | [`node`], [`cluster`] | §5 | the decentralized SRCA-Rep middleware (Fig. 4) and SRCA-Opt |
//! | [`session`] | §5.3–5.4 | JDBC-style sessions, the [`System`]/[`Connection`] abstraction |
//! | [`centralized`] | §6 | the single-database baseline of the figures |
//! | [`tablelock`] | §6.3 | the reimplemented table-level-locking protocol of [20] |
//! | [`recorder`] | — | execution recording feeding the 1-copy-SI checker |
//! | [`audit`] | Thm 1/§4.3.3 | online auditor for the protocol's correctness invariants |
//! | [`offline`] | Thm 1/§4.3.3 | post-hoc auditor over journals scraped from other processes |
//! | [`export`] | — | Perfetto trace and Prometheus text renderers |
//!
//! ## Quick start
//!
//! ```
//! use sirep_core::{Cluster, ClusterConfig, Connection};
//!
//! let cluster = Cluster::new(ClusterConfig::builder().replicas(3).build());
//! cluster.execute_ddl("CREATE TABLE acc (id INT, bal INT, PRIMARY KEY (id))").unwrap();
//!
//! let mut s = cluster.session(0);
//! s.execute("INSERT INTO acc VALUES (1, 100)").unwrap();
//! s.commit().unwrap();                       // validated + replicated
//!
//! // The write is now visible at every replica.
//! cluster.quiesce(std::time::Duration::from_secs(5));
//! let mut s2 = cluster.session(2);
//! let r = s2.execute("SELECT bal FROM acc WHERE id = 1").unwrap();
//! assert_eq!(r.rows()[0][0], sirep_storage::Value::Int(100));
//! ```

pub mod audit;
pub mod centralized;
pub mod chaos;
pub mod cluster;
pub mod export;
pub mod holes;
pub mod model;
pub mod msg;
pub mod node;
pub mod offline;
pub mod recorder;
pub mod session;
pub mod srca;
pub mod tablelock;
pub mod validation;

pub use audit::{AuditKind, AuditViolation, Auditor};
pub use centralized::Centralized;
pub use chaos::{CrashPlan, PausePoint};
pub use cluster::{Cluster, ClusterConfig, ClusterConfigBuilder, ClusterReport, Transport};
pub use export::{perfetto_trace_json, prometheus_text};
pub use holes::HoleTracker;
pub use model::{
    check_one_copy_si, is_conflict_serializable, is_si_schedule, si_equivalent, Op,
    ReplicatedExecution, Schedule, TxSpec, Violation,
};
pub use msg::{Outcome, ReplMsg, WsMsg, XactId};
pub use node::{InDoubt, NodeStatus, ReplicaNode, ReplicationMode};
pub use offline::{audit_scraped_journals, shift_events, OFFLINE_VIOLATION_CAP};
pub use session::{Connection, Session, System, TxnTemplate};
pub use validation::{CertEntry, WsList};

#[cfg(test)]
mod cluster_tests;
#[cfg(test)]
mod proptests;
#[cfg(test)]
mod srca_tests;
