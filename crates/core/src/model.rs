//! The paper's formal model (§2): SI-schedules, SI-equivalence, and the
//! **1-copy-SI** correctness criterion, with an exact checker.
//!
//! A schedule here is the paper's reduced form: a sequence of `b_i` / `c_i`
//! events over transactions given by their readsets and writesets. `b_i`
//! fixes when all of `T_i`'s reads (logically) happen; `c_i` fixes its
//! writes.
//!
//! The 1-copy-SI checker ([`check_one_copy_si`]) follows the structure of
//! the paper's Theorem 1 proof, but as a decision procedure: all of
//! Definition 3's conditions — plus the requirement that the global schedule
//! `S` itself be an SI-schedule — reduce to *precedence constraints* between
//! the `2·|T|` events of `S`:
//!
//! 1. `b_i < c_i` for every transaction;
//! 2. (ii.a) conflicting writesets commit in the same order in `S` as in
//!    every replica schedule — and the replicas must agree with each other;
//! 3. (ii.b) for a transaction local at replica `k` and any update
//!    transaction `T_j` with `WS_j ∩ RS_i ≠ ∅`:
//!    `c_j^k < b_i^k  ⇔  c_j < b_i`; because this is an iff, both the
//!    positive and the negative direction become directed edges;
//! 4. the SI-schedule property of `S`: for `WS_i ∩ WS_j ≠ ∅`, not
//!    `b_i < c_j < c_i`; given the commit order from (2) is fixed, this
//!    derives the edge `c_j < b_i` whenever `c_j` precedes `c_i`.
//!
//! `S` exists **iff** the resulting event digraph is acyclic; a topological
//! order *is* a witness schedule. This makes the checker exact and
//! polynomial — no search — which lets the test suite verify real executions
//! with hundreds of transactions.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// An abstract object identifier (a tuple in the real system).
pub type Obj = String;

/// A transaction given by its readset and writeset.
#[derive(Debug, Clone, Default)]
pub struct TxSpec {
    pub readset: BTreeSet<Obj>,
    pub writeset: BTreeSet<Obj>,
}

impl TxSpec {
    pub fn new<R, W, S>(reads: R, writes: W) -> TxSpec
    where
        R: IntoIterator<Item = S>,
        W: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TxSpec {
            readset: reads.into_iter().map(Into::into).collect(),
            writeset: writes.into_iter().map(Into::into).collect(),
        }
    }

    pub fn is_update(&self) -> bool {
        !self.writeset.is_empty()
    }

    pub fn ww_conflicts(&self, other: &TxSpec) -> bool {
        self.writeset.intersection(&other.writeset).next().is_some()
    }

    /// `WS_self ∩ RS_other ≠ ∅` — other reads something self writes.
    pub fn wr_conflicts(&self, other: &TxSpec) -> bool {
        self.writeset.intersection(&other.readset).next().is_some()
    }
}

/// One schedule event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op<T> {
    Begin(T),
    Commit(T),
}

impl<T: Copy> Op<T> {
    pub fn txn(&self) -> T {
        match self {
            Op::Begin(t) | Op::Commit(t) => *t,
        }
    }
}

/// A schedule: a sequence of begin/commit events over transaction ids.
pub type Schedule<T> = Vec<Op<T>>;

/// Why a schedule or execution fails a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `b_i` missing, `c_i` missing, duplicated, or out of order.
    MalformedSchedule(String),
    /// Def. 1 (ii): a conflicting commit falls between `b_i` and `c_i`.
    NotSiSchedule { holder: String, intruder: String },
    /// Replicas commit two conflicting transactions in different orders.
    DivergentCommitOrder { a: String, b: String },
    /// Property (i) of Def. 3: replicas committed different sets of update
    /// transactions, or a read-only transaction appears remotely.
    NotRowa(String),
    /// The constraint graph has a cycle: no global SI-schedule exists.
    NoGlobalSchedule { cycle_hint: String },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MalformedSchedule(m) => write!(f, "malformed schedule: {m}"),
            Violation::NotSiSchedule { holder, intruder } => write!(
                f,
                "not an SI-schedule: {intruder} commits between begin and commit of {holder} \
                 with overlapping writesets"
            ),
            Violation::DivergentCommitOrder { a, b } => {
                write!(f, "replicas disagree on the commit order of {a} and {b}")
            }
            Violation::NotRowa(m) => write!(f, "not a ROWA mapping: {m}"),
            Violation::NoGlobalSchedule { cycle_hint } => {
                write!(f, "no global SI-schedule exists (constraint cycle: {cycle_hint})")
            }
        }
    }
}

/// Check the paper's Definition 1: is `s` an SI-schedule over `txs`?
///
/// (i) every transaction has `b_i` before `c_i` (and exactly one of each);
/// (ii) if `b_i < c_j < c_i` then `WS_i ∩ WS_j = ∅`.
pub fn is_si_schedule<T>(txs: &BTreeMap<T, TxSpec>, s: &Schedule<T>) -> Result<(), Violation>
where
    T: Copy + Ord + fmt::Debug,
{
    let mut begin_pos: BTreeMap<T, usize> = BTreeMap::new();
    let mut commit_pos: BTreeMap<T, usize> = BTreeMap::new();
    for (pos, op) in s.iter().enumerate() {
        let (map, other) = match op {
            Op::Begin(t) => (&mut begin_pos, *t),
            Op::Commit(t) => (&mut commit_pos, *t),
        };
        if map.insert(other, pos).is_some() {
            return Err(Violation::MalformedSchedule(format!("duplicate event for {other:?}")));
        }
    }
    for t in txs.keys() {
        let (Some(&b), Some(&c)) = (begin_pos.get(t), commit_pos.get(t)) else {
            return Err(Violation::MalformedSchedule(format!("missing events for {t:?}")));
        };
        if b >= c {
            return Err(Violation::MalformedSchedule(format!("commit before begin for {t:?}")));
        }
    }
    if begin_pos.len() != txs.len() || commit_pos.len() != txs.len() {
        return Err(Violation::MalformedSchedule("events for unknown transactions".into()));
    }
    for (i, spec_i) in txs {
        let (b_i, c_i) = (begin_pos[i], commit_pos[i]);
        for (j, spec_j) in txs {
            if i == j {
                continue;
            }
            let c_j = commit_pos[j];
            if b_i < c_j && c_j < c_i && spec_i.ww_conflicts(spec_j) {
                return Err(Violation::NotSiSchedule {
                    holder: format!("{i:?}"),
                    intruder: format!("{j:?}"),
                });
            }
        }
    }
    Ok(())
}

/// Check the paper's Definition 2: are two SI-schedules over the same
/// transactions SI-equivalent?
///
/// (i) conflicting writesets commit in the same order;
/// (ii) `WS_i ∩ RS_j ≠ ∅` implies `(c_i < b_j)` agrees between schedules.
pub fn si_equivalent<T>(
    txs: &BTreeMap<T, TxSpec>,
    s1: &Schedule<T>,
    s2: &Schedule<T>,
) -> Result<bool, Violation>
where
    T: Copy + Ord + fmt::Debug + std::hash::Hash,
{
    is_si_schedule(txs, s1)?;
    is_si_schedule(txs, s2)?;
    let pos = |s: &Schedule<T>| -> HashMap<Op<T>, usize> {
        s.iter().enumerate().map(|(i, &op)| (op, i)).collect()
    };
    let (p1, p2) = (pos(s1), pos(s2));
    for (i, spec_i) in txs {
        for (j, spec_j) in txs {
            if i == j {
                continue;
            }
            if spec_i.ww_conflicts(spec_j) {
                let o1 = p1[&Op::Commit(*i)] < p1[&Op::Commit(*j)];
                let o2 = p2[&Op::Commit(*i)] < p2[&Op::Commit(*j)];
                if o1 != o2 {
                    return Ok(false);
                }
            }
            if spec_i.wr_conflicts(spec_j) {
                let o1 = p1[&Op::Commit(*i)] < p1[&Op::Begin(*j)];
                let o2 = p2[&Op::Commit(*i)] < p2[&Op::Begin(*j)];
                if o1 != o2 {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// The recorded execution of a replicated system: one schedule per replica
/// plus, for every transaction, the replica it was local at.
///
/// Update transactions must appear in every replica's schedule (ROWA);
/// read-only transactions only in their local replica's.
#[derive(Debug, Clone, Default)]
pub struct ReplicatedExecution<T: Ord> {
    /// Per-replica schedules, indexed by replica number.
    pub schedules: Vec<Schedule<T>>,
    /// Transaction → index of its local replica.
    pub locality: BTreeMap<T, usize>,
}

/// Check 1-copy-SI (Definition 3) and return a witness global SI-schedule.
pub fn check_one_copy_si<T>(
    txs: &BTreeMap<T, TxSpec>,
    exec: &ReplicatedExecution<T>,
) -> Result<Schedule<T>, Violation>
where
    T: Copy + Ord + fmt::Debug + std::hash::Hash,
{
    // --- Property (i): the execution is a ROWA mapping. -------------------
    let mut per_replica_events: Vec<HashMap<Op<T>, usize>> = Vec::new();
    for (k, s) in exec.schedules.iter().enumerate() {
        // Build position maps; validate that each replica schedule is an
        // SI-schedule over exactly the transactions it should run.
        let mut expected: BTreeMap<T, TxSpec> = BTreeMap::new();
        for (t, spec) in txs {
            let local = exec.locality.get(t) == Some(&k);
            if spec.is_update() || local {
                // Remote update transactions have empty readsets (rmap).
                let spec_k = if local {
                    spec.clone()
                } else {
                    TxSpec { readset: BTreeSet::new(), writeset: spec.writeset.clone() }
                };
                expected.insert(*t, spec_k);
            }
        }
        let present: BTreeSet<T> = s.iter().map(Op::txn).collect();
        let expected_set: BTreeSet<T> = expected.keys().copied().collect();
        if present != expected_set {
            return Err(Violation::NotRowa(format!(
                "replica {k} ran {present:?}, expected {expected_set:?}"
            )));
        }
        is_si_schedule(&expected, s)?;
        per_replica_events.push(s.iter().enumerate().map(|(i, &op)| (op, i)).collect());
    }
    for t in exec.locality.keys() {
        if !txs.contains_key(t) {
            return Err(Violation::NotRowa(format!("locality for unknown txn {t:?}")));
        }
    }
    for t in txs.keys() {
        if !exec.locality.contains_key(t) {
            return Err(Violation::NotRowa(format!("no local replica recorded for {t:?}")));
        }
    }

    // --- Build the event constraint graph. --------------------------------
    // Events are indexed 0..2n: Begin(i) = 2*pos(i), Commit(i) = 2*pos(i)+1.
    let ids: Vec<T> = txs.keys().copied().collect();
    let idx: BTreeMap<T, usize> = ids.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let n = ids.len();
    let ev_b = |i: usize| 2 * i;
    let ev_c = |i: usize| 2 * i + 1;
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); 2 * n];
    let mut add = |from: usize, to: usize| {
        edges[from].insert(to);
    };

    // 1. b_i < c_i.
    for i in 0..n {
        add(ev_b(i), ev_c(i));
    }

    // 2. (ii.a) consistent conflicting-commit order across replicas → edges.
    //    Also records the global commit order for rule 4.
    for (ai, &a) in ids.iter().enumerate() {
        for (bi, &b) in ids.iter().enumerate() {
            if ai >= bi {
                continue;
            }
            let (sa, sb) = (&txs[&a], &txs[&b]);
            if !sa.ww_conflicts(sb) {
                continue;
            }
            // Find the order at each replica that committed both.
            let mut order: Option<bool> = None; // true: a before b
            for events in &per_replica_events {
                let (Some(&ca), Some(&cb)) =
                    (events.get(&Op::Commit(a)), events.get(&Op::Commit(b)))
                else {
                    continue;
                };
                let this = ca < cb;
                match order {
                    None => order = Some(this),
                    Some(prev) if prev != this => {
                        return Err(Violation::DivergentCommitOrder {
                            a: format!("{a:?}"),
                            b: format!("{b:?}"),
                        });
                    }
                    _ => {}
                }
            }
            if let Some(a_first) = order {
                let (first, second) = if a_first { (ai, bi) } else { (bi, ai) };
                add(ev_c(first), ev_c(second));
                // 4. SI property of S: the loser's begin must follow the
                //    winner's commit (otherwise b < c' < c with WW overlap).
                add(ev_c(first), ev_b(second));
            }
        }
    }

    // 3. (ii.b) reads-from agreement for local transactions.
    for (&t, spec_t) in txs {
        let k = exec.locality[&t];
        let events = &per_replica_events[k];
        let b_t_pos = events[&Op::Begin(t)];
        for (&u, spec_u) in txs {
            if u == t || !spec_u.wr_conflicts(spec_t) {
                continue;
            }
            // u is an update txn (it writes something t reads) → it ran at k.
            let Some(&c_u_pos) = events.get(&Op::Commit(u)) else {
                return Err(Violation::NotRowa(format!("update txn {u:?} missing at replica {k}")));
            };
            let (ti, ui) = (idx[&t], idx[&u]);
            if c_u_pos < b_t_pos {
                add(ev_c(ui), ev_b(ti));
            } else {
                add(ev_b(ti), ev_c(ui));
            }
        }
    }

    // --- Topological sort (Kahn). -----------------------------------------
    let mut indegree = vec![0usize; 2 * n];
    for out in &edges {
        for &to in out {
            indegree[to] += 1;
        }
    }
    let mut ready: BTreeSet<usize> = (0..2 * n).filter(|&e| indegree[e] == 0).collect();
    let mut order = Vec::with_capacity(2 * n);
    while let Some(&e) = ready.iter().next() {
        ready.remove(&e);
        order.push(e);
        for &to in &edges[e] {
            indegree[to] -= 1;
            if indegree[to] == 0 {
                ready.insert(to);
            }
        }
    }
    if order.len() != 2 * n {
        let stuck: Vec<String> = (0..2 * n)
            .filter(|&e| indegree[e] > 0)
            .take(6)
            .map(|e| {
                let t = ids[e / 2];
                if e % 2 == 0 {
                    format!("b({t:?})")
                } else {
                    format!("c({t:?})")
                }
            })
            .collect();
        return Err(Violation::NoGlobalSchedule { cycle_hint: stuck.join(", ") });
    }
    let witness: Schedule<T> = order
        .into_iter()
        .map(|e| {
            let t = ids[e / 2];
            if e % 2 == 0 {
                Op::Begin(t)
            } else {
                Op::Commit(t)
            }
        })
        .collect();
    // Defence in depth: the witness must itself be an SI-schedule.
    debug_assert!(is_si_schedule(txs, &witness).is_ok());
    Ok(witness)
}

/// Conflict-serializability of an SI-schedule (Adya-style direct
/// serialization graph over the begin/commit event semantics: reads happen
/// logically at `b_i`, writes at `c_i`).
///
/// Edges for `i ≠ j`:
/// - **wr** `i → j`: `c_i < b_j` and `WS_i ∩ RS_j ≠ ∅` (j reads i's write);
/// - **ww** `i → j`: `c_i < c_j` and `WS_i ∩ WS_j ≠ ∅` (version order);
/// - **rw** `i → j`: `b_i < c_j` and `RS_i ∩ WS_j ≠ ∅` (anti-dependency:
///   i read a version that j overwrote).
///
/// The schedule is conflict-serializable iff the graph is acyclic. SI
/// permits non-serializable schedules (write skew: two rw edges closing a
/// cycle) — this checker makes the gap between the paper's 1-copy-SI and
/// 1-copy-serializability concrete and testable; cf. the paper's reference
/// [14] (Fekete et al., "Making snapshot isolation serializable").
pub fn is_conflict_serializable<T>(
    txs: &BTreeMap<T, TxSpec>,
    s: &Schedule<T>,
) -> Result<bool, Violation>
where
    T: Copy + Ord + fmt::Debug,
{
    is_si_schedule(txs, s)?;
    let pos: BTreeMap<Op<T>, usize> = s.iter().enumerate().map(|(i, &op)| (op, i)).collect();
    let ids: Vec<T> = txs.keys().copied().collect();
    let idx: BTreeMap<T, usize> = ids.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let n = ids.len();
    let mut adj = vec![BTreeSet::new(); n];
    for (&a, sa) in txs {
        for (&b, sb) in txs {
            if a == b {
                continue;
            }
            let (ca, cb) = (pos[&Op::Commit(a)], pos[&Op::Commit(b)]);
            let (ba, _bb) = (pos[&Op::Begin(a)], pos[&Op::Begin(b)]);
            let mut edge = false;
            // wr: b reads a's write.
            if sa.wr_conflicts(sb) && ca < pos[&Op::Begin(b)] {
                edge = true;
            }
            // ww: version order.
            if sa.ww_conflicts(sb) && ca < cb {
                edge = true;
            }
            // rw anti-dependency: a read a version that b overwrote (b
            // committed after a's snapshot, so a did not see b's write).
            if sb.wr_conflicts(sa) && ba < cb {
                edge = true;
            }
            if edge {
                adj[idx[&a]].insert(idx[&b]);
            }
        }
    }
    // Cycle check (iterative DFS with colors).
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, adj[start].iter().copied().collect::<Vec<_>>())];
        color[start] = 1;
        while let Some((node, rest)) = stack.last_mut() {
            match rest.pop() {
                Some(next) => match color[next] {
                    0 => {
                        color[next] = 1;
                        let children = adj[next].iter().copied().collect();
                        stack.push((next, children));
                    }
                    1 => return Ok(false), // back edge → cycle
                    _ => {}
                },
                None => {
                    color[*node] = 2;
                    stack.pop();
                }
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txs3() -> BTreeMap<u32, TxSpec> {
        // The paper's §2.1 example: T1 = r(x) w(x); T2 = r(y) r(x) w(y);
        // T3 = w(x).
        let mut m = BTreeMap::new();
        m.insert(1, TxSpec::new(["x"], ["x"]));
        m.insert(2, TxSpec::new(["y", "x"], ["y"]));
        m.insert(3, TxSpec::new([] as [&str; 0], ["x"]));
        m
    }

    use Op::{Begin as B, Commit as C};

    #[test]
    fn paper_example_se_is_si_schedule() {
        // SE = b1 b2 c1 b3 c3 c2
        let s = vec![B(1), B(2), C(1), B(3), C(3), C(2)];
        assert!(is_si_schedule(&txs3(), &s).is_ok());
    }

    #[test]
    fn paper_example_non_si_schedule() {
        // b1 b2 b3 c1 c2 c3: b3 < c1 < c3 and WS1 ∩ WS3 = {x} → not SI.
        let s = vec![B(1), B(2), B(3), C(1), C(2), C(3)];
        let err = is_si_schedule(&txs3(), &s).unwrap_err();
        assert!(matches!(err, Violation::NotSiSchedule { .. }));
    }

    #[test]
    fn malformed_schedules_rejected() {
        let s = vec![B(1), C(1), B(2), C(2)]; // missing T3
        assert!(matches!(is_si_schedule(&txs3(), &s), Err(Violation::MalformedSchedule(_))));
        let s = vec![C(1), B(1), B(2), C(2), B(3), C(3)]; // commit before begin
        assert!(matches!(is_si_schedule(&txs3(), &s), Err(Violation::MalformedSchedule(_))));
        let s = vec![B(1), B(1), C(1), B(2), C(2), B(3), C(3)]; // dup begin
        assert!(matches!(is_si_schedule(&txs3(), &s), Err(Violation::MalformedSchedule(_))));
    }

    #[test]
    fn paper_equivalence_examples() {
        let txs = txs3();
        let se = vec![B(1), B(2), C(1), B(3), C(3), C(2)];
        // The paper: SE is SI-equivalent to b2 b1 c1 b3 c2 c3.
        let s2 = vec![B(2), B(1), C(1), B(3), C(2), C(3)];
        assert!(si_equivalent(&txs, &se, &s2).unwrap());
        // But moving b2 after c1 changes T2's reads-from on x.
        let s3 = vec![B(1), C(1), B(2), B(3), C(3), C(2)];
        assert!(!si_equivalent(&txs, &se, &s3).unwrap());
    }

    /// Build a simple replicated execution for 2 replicas.
    fn two_replica_exec(
        s0: Schedule<u32>,
        s1: Schedule<u32>,
        locality: &[(u32, usize)],
    ) -> ReplicatedExecution<u32> {
        ReplicatedExecution {
            schedules: vec![s0, s1],
            locality: locality.iter().copied().collect(),
        }
    }

    #[test]
    fn one_copy_si_accepts_correct_execution() {
        // T1 (local R0) writes x; T2 (local R1) reads x, writes y.
        let mut txs = BTreeMap::new();
        txs.insert(1, TxSpec::new([] as [&str; 0], ["x"]));
        txs.insert(2, TxSpec::new(["x"], ["y"]));
        // R0: b1 c1 b2r c2r ; R1: b1r c1r b2 c2 (T2 starts after T1 applied).
        let exec = two_replica_exec(
            vec![B(1), C(1), B(2), C(2)],
            vec![B(1), C(1), B(2), C(2)],
            &[(1, 0), (2, 1)],
        );
        let witness = check_one_copy_si(&txs, &exec).unwrap();
        assert_eq!(witness.len(), 4);
    }

    #[test]
    fn one_copy_si_rejects_divergent_commit_order() {
        let mut txs = BTreeMap::new();
        txs.insert(1, TxSpec::new([] as [&str; 0], ["x"]));
        txs.insert(2, TxSpec::new([] as [&str; 0], ["x"]));
        let exec = two_replica_exec(
            vec![B(1), C(1), B(2), C(2)],
            vec![B(2), C(2), B(1), C(1)],
            &[(1, 0), (2, 1)],
        );
        let err = check_one_copy_si(&txs, &exec).unwrap_err();
        assert!(matches!(err, Violation::DivergentCommitOrder { .. }));
    }

    #[test]
    fn one_copy_si_rejects_the_section_4_3_2_counterexample() {
        // The paper's §4.3.2 scenario: WS_i = {x}, WS_j = {y} (disjoint, so
        // commit order may differ), T_a local at R^k reads {x, y} between
        // c_i^k and c_j^k; T_b local at R^m reads {x, y} between c_j^m and
        // c_i^m. No global SI-schedule can satisfy both reads-from
        // relations: ci < ba < cj < bb < ci is a cycle.
        let mut txs = BTreeMap::new();
        txs.insert(1, TxSpec::new([] as [&str; 0], ["x"])); // T_i
        txs.insert(2, TxSpec::new([] as [&str; 0], ["y"])); // T_j
        txs.insert(3, TxSpec::new(["x", "y"], [] as [&str; 0])); // T_a @ R0
        txs.insert(4, TxSpec::new(["x", "y"], [] as [&str; 0])); // T_b @ R1
        let exec = two_replica_exec(
            // R0: c_i < b_a < c_j
            vec![B(1), C(1), B(3), C(3), B(2), C(2)],
            // R1: c_j < b_b < c_i
            vec![B(2), C(2), B(4), C(4), B(1), C(1)],
            &[(1, 0), (2, 1), (3, 0), (4, 1)],
        );
        let err = check_one_copy_si(&txs, &exec).unwrap_err();
        assert!(matches!(err, Violation::NoGlobalSchedule { .. }), "got {err:?}");
    }

    #[test]
    fn one_copy_si_allows_disjoint_commit_reorder_without_observers() {
        // Same T_i/T_j as above but nobody observes the difference → fine.
        let mut txs = BTreeMap::new();
        txs.insert(1, TxSpec::new([] as [&str; 0], ["x"]));
        txs.insert(2, TxSpec::new([] as [&str; 0], ["y"]));
        let exec = two_replica_exec(
            vec![B(1), C(1), B(2), C(2)],
            vec![B(2), C(2), B(1), C(1)],
            &[(1, 0), (2, 1)],
        );
        assert!(check_one_copy_si(&txs, &exec).is_ok());
    }

    #[test]
    fn one_copy_si_rejects_missing_remote_execution() {
        let mut txs = BTreeMap::new();
        txs.insert(1, TxSpec::new([] as [&str; 0], ["x"]));
        let exec = two_replica_exec(
            vec![B(1), C(1)],
            vec![], // update txn missing at R1
            &[(1, 0)],
        );
        assert!(matches!(check_one_copy_si(&txs, &exec), Err(Violation::NotRowa(_))));
    }

    #[test]
    fn one_copy_si_readonly_txns_stay_local() {
        let mut txs = BTreeMap::new();
        txs.insert(1, TxSpec::new(["x"], [] as [&str; 0]));
        // read-only appearing at a remote replica → not ROWA.
        let exec = two_replica_exec(vec![B(1), C(1)], vec![B(1), C(1)], &[(1, 0)]);
        assert!(matches!(check_one_copy_si(&txs, &exec), Err(Violation::NotRowa(_))));
        // Local only → fine.
        let exec = two_replica_exec(vec![B(1), C(1)], vec![], &[(1, 0)]);
        assert!(check_one_copy_si(&txs, &exec).is_ok());
    }

    #[test]
    fn write_skew_is_si_but_not_serializable() {
        // The classic anomaly: both read {x, y}, one writes x, the other y,
        // concurrently. SI admits it; conflict-serializability does not.
        let mut txs = BTreeMap::new();
        txs.insert(1, TxSpec::new(["x", "y"], ["x"]));
        txs.insert(2, TxSpec::new(["x", "y"], ["y"]));
        let skew = vec![B(1), B(2), C(1), C(2)];
        assert!(is_si_schedule(&txs, &skew).is_ok());
        assert!(!is_conflict_serializable(&txs, &skew).unwrap());
        // Run serially and it is serializable again.
        let serial = vec![B(1), C(1), B(2), C(2)];
        assert!(is_conflict_serializable(&txs, &serial).unwrap());
    }

    #[test]
    fn serializability_checker_handles_wr_and_ww_chains() {
        let mut txs = BTreeMap::new();
        txs.insert(1, TxSpec::new([] as [&str; 0], ["x"]));
        txs.insert(2, TxSpec::new(["x"], ["y"]));
        txs.insert(3, TxSpec::new(["y"], [] as [&str; 0]));
        // T1 → T2 (wr on x) → T3 (wr on y): a chain, serializable.
        let s = vec![B(1), C(1), B(2), C(2), B(3), C(3)];
        assert!(is_conflict_serializable(&txs, &s).unwrap());
        // T3 reads y before T2 commits it while T2 read x after T1: the rw
        // edge T3 → T2 plus wr T1 → T2 stays acyclic → still serializable.
        let s = vec![B(1), C(1), B(2), B(3), C(2), C(3)];
        assert!(is_conflict_serializable(&txs, &s).unwrap());
    }

    #[test]
    fn one_copy_si_witness_respects_reads_from() {
        // T1 writes x, commits; T2 (local R1) begins before T1's writeset
        // is applied at R1 → T2 must read pre-T1 x. The witness schedule
        // must therefore place b2 before c1.
        let mut txs = BTreeMap::new();
        txs.insert(1, TxSpec::new([] as [&str; 0], ["x"]));
        txs.insert(2, TxSpec::new(["x"], ["y"]));
        let exec = two_replica_exec(
            vec![B(1), C(1), B(2), C(2)],
            vec![B(2), B(1), C(1), C(2)], // T2 began before T1 committed at R1
            &[(1, 0), (2, 1)],
        );
        let witness = check_one_copy_si(&txs, &exec).unwrap();
        let pos: HashMap<Op<u32>, usize> =
            witness.iter().enumerate().map(|(i, &op)| (op, i)).collect();
        assert!(pos[&B(2)] < pos[&C(1)], "witness: {witness:?}");
    }
}
