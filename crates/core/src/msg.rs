//! Messages exchanged between middleware replicas, and their wire codec.
//!
//! The canonical transaction identifier ([`XactId`]) lives in
//! `sirep-common` (the journal and the wire codec need it too); it is
//! re-exported here because protocol code reads most naturally as
//! `msg::XactId`.
//!
//! Every inter-replica message implements [`Wire`] so the same `ReplMsg`
//! values flow over both transports: the sim backend ships them as in-proc
//! clones, the TCP backend as length-prefixed frames. `Arc`s exist only
//! *inside* a process — decoding always builds fresh allocations, so no
//! shared memory ever crosses the transport boundary.

pub use sirep_common::XactId;

use sirep_common::wire::{Wire, WireError, WireReader};
use sirep_common::{GlobalTid, ReplicaId};
use sirep_storage::WriteSet;
use std::sync::Arc;

/// The recorded outcome of a transaction whose writeset reached validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Passed global validation; will commit (or has committed) at every
    /// replica.
    Committed,
    /// Failed global validation; aborted everywhere.
    Aborted,
}

impl Wire for Outcome {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Outcome::Committed => 0,
            Outcome::Aborted => 1,
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(Outcome::Committed),
            1 => Ok(Outcome::Aborted),
            _ => Err(WireError::Corrupt("outcome tag")),
        }
    }
}

/// A writeset message, multicast in total order at commit time (Fig. 4,
/// step I.2.g).
#[derive(Debug)]
pub struct WsMsg {
    pub origin: ReplicaId,
    pub xact: XactId,
    /// `Ti.cert`: the origin's `lastvalidated_tid` captured just before the
    /// multicast — global validation checks only against transactions with
    /// a larger tid (those validated concurrently with the multicast).
    pub cert: GlobalTid,
    pub ws: Arc<WriteSet>,
}

impl Wire for WsMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.origin.encode(out);
        self.xact.encode(out);
        self.cert.encode(out);
        self.ws.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WsMsg {
            origin: ReplicaId::decode(r)?,
            xact: XactId::decode(r)?,
            cert: GlobalTid::decode(r)?,
            ws: Arc::new(WriteSet::decode(r)?),
        })
    }
}

/// Inter-replica message. Writesets are wrapped in `Arc` — the in-process
/// "network" ships the pointer, mirroring that a real network would ship an
/// immutable serialized copy (and the TCP transport does exactly that:
/// [`Wire::decode`] rebuilds a fresh `Arc` on the receiving side).
#[derive(Debug, Clone)]
pub enum ReplMsg {
    WriteSet(Arc<WsMsg>),
    /// Progress report used to garbage-collect `ws_list`: the sender
    /// promises every future writeset it multicasts carries
    /// `cert >= lastvalidated`.
    Progress {
        from: ReplicaId,
        lastvalidated: GlobalTid,
    },
    /// Recovery barrier (total order): once a replica has processed a
    /// marker, it has processed every message sequenced before it. The
    /// recovery protocol multicasts one through the *joiner's* fresh
    /// membership and waits for the donor to see it — only then is the
    /// donor's state guaranteed to cover everything the joiner's delivery
    /// buffer does not.
    Marker {
        token: u64,
    },
}

impl Wire for ReplMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ReplMsg::WriteSet(ws) => {
                out.push(0);
                ws.encode(out);
            }
            ReplMsg::Progress { from, lastvalidated } => {
                out.push(1);
                from.encode(out);
                lastvalidated.encode(out);
            }
            ReplMsg::Marker { token } => {
                out.push(2);
                token.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(ReplMsg::WriteSet(Arc::new(WsMsg::decode(r)?))),
            1 => Ok(ReplMsg::Progress {
                from: ReplicaId::decode(r)?,
                lastvalidated: GlobalTid::decode(r)?,
            }),
            2 => Ok(ReplMsg::Marker { token: u64::decode(r)? }),
            _ => Err(WireError::Corrupt("replmsg tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sirep_storage::{Key, Value, WsOp};

    fn ws(entries: &[(&str, i64)]) -> WriteSet {
        let mut w = WriteSet::new();
        for &(table, k) in entries {
            w.push(
                Arc::from(table),
                Key::single(k),
                WsOp::Put(vec![Value::Int(k), Value::Text(format!("row-{k}"))]),
            );
        }
        w
    }

    fn sample_ws_msg(n: i64) -> WsMsg {
        WsMsg {
            origin: ReplicaId::new(1),
            xact: XactId::new(ReplicaId::new(1), XactId::seq_base(2) + 7),
            cert: GlobalTid::new(n as u64),
            ws: Arc::new(ws(&[("accounts", n), ("orders", n + 1)])),
        }
    }

    fn assert_repl_round_trip(msg: &ReplMsg) {
        let bytes = msg.to_wire();
        let back = ReplMsg::from_wire(&bytes).expect("decode");
        // ReplMsg has no PartialEq (it carries Arcs); compare re-encodings,
        // which the bit-identical codec makes a faithful equality.
        assert_eq!(back.to_wire(), bytes);
    }

    #[test]
    fn all_repl_msg_variants_round_trip() {
        assert_repl_round_trip(&ReplMsg::WriteSet(Arc::new(sample_ws_msg(3))));
        assert_repl_round_trip(&ReplMsg::Progress {
            from: ReplicaId::new(2),
            lastvalidated: GlobalTid::new(99),
        });
        assert_repl_round_trip(&ReplMsg::Marker { token: u64::MAX });
    }

    #[test]
    fn decoded_writeset_is_a_fresh_allocation_with_working_index() {
        let msg = ReplMsg::WriteSet(Arc::new(sample_ws_msg(5)));
        let back = ReplMsg::from_wire(&msg.to_wire()).expect("decode");
        let ReplMsg::WriteSet(w) = &back else { panic!("wrong variant") };
        let ReplMsg::WriteSet(orig) = &msg else { panic!("wrong variant") };
        assert!(!Arc::ptr_eq(w, orig), "decode must not share memory");
        assert!(w.ws.intersects(&orig.ws), "rebuilt probe index must work");
    }

    #[test]
    fn outcome_and_corrupt_tags() {
        assert_eq!(Outcome::from_wire(&Outcome::Committed.to_wire()), Ok(Outcome::Committed));
        assert_eq!(Outcome::from_wire(&Outcome::Aborted.to_wire()), Ok(Outcome::Aborted));
        assert_eq!(Outcome::from_wire(&[9]), Err(WireError::Corrupt("outcome tag")));
        assert!(ReplMsg::from_wire(&[9]).is_err());
    }

    proptest! {
        #[test]
        fn prop_ws_msg_round_trips(
            origin in 0u64..8,
            seq in any::<u64>(),
            cert in any::<u64>(),
            keys in proptest::collection::vec(any::<i64>(), 0..16),
        ) {
            let msg = ReplMsg::WriteSet(Arc::new(WsMsg {
                origin: ReplicaId::new(origin),
                xact: XactId::new(ReplicaId::new(origin), seq),
                cert: GlobalTid::new(cert),
                ws: Arc::new(ws(&keys.iter().map(|&k| ("t", k)).collect::<Vec<_>>())),
            }));
            let bytes = msg.to_wire();
            let back = ReplMsg::from_wire(&bytes).unwrap();
            prop_assert_eq!(back.to_wire(), bytes);
        }

        #[test]
        fn prop_truncated_repl_msgs_rejected(token in any::<u64>()) {
            let bytes = ReplMsg::Marker { token }.to_wire();
            for cut in 0..bytes.len() {
                prop_assert!(ReplMsg::from_wire(&bytes[..cut]).is_err());
            }
        }

        #[test]
        fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = ReplMsg::from_wire(&bytes);
            let _ = Outcome::from_wire(&bytes);
        }
    }
}
