//! Messages exchanged between middleware replicas, and the client-visible
//! transaction identifiers used for in-doubt resolution (§5.4).

use sirep_common::{GlobalTid, ReplicaId};
use sirep_storage::WriteSet;
use std::sync::Arc;

/// The unique, client-visible transaction identifier a middleware replica
/// assigns when a transaction starts. The paper: *"the replica assigns a
/// unique transaction identifier and returns it to the driver [...] the
/// identifier is forwarded to the remote middleware replicas together with
/// the writeset"*.
///
/// The sequence number's top bits carry the origin's **incarnation** (how
/// many times that replica id has re-joined after a crash — an extension
/// needed once online recovery exists): in-doubt resolution must be able to
/// tell "this transaction's origin incarnation has departed, and uniform
/// delivery says its writeset would already be here" apart from "the origin
/// crashed once long ago but this transaction belongs to its current, live
/// incarnation".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XactId {
    /// The replica the transaction was local at.
    pub origin: ReplicaId,
    /// Incarnation (top [`XactId::INCARNATION_SHIFT`] bits) + per-origin
    /// sequence number.
    pub seq: u64,
}

impl XactId {
    pub const INCARNATION_SHIFT: u32 = 48;

    /// The origin incarnation this transaction was created under.
    pub fn incarnation(&self) -> u64 {
        self.seq >> Self::INCARNATION_SHIFT
    }

    /// First sequence value for an incarnation.
    pub fn seq_base(incarnation: u64) -> u64 {
        incarnation << Self::INCARNATION_SHIFT
    }
}

impl From<XactId> for sirep_common::TxRef {
    /// Journal-facing view of a transaction id (the journal crate cannot
    /// depend on core, so it carries its own origin+seq pair).
    fn from(x: XactId) -> sirep_common::TxRef {
        sirep_common::TxRef { origin: x.origin, seq: x.seq }
    }
}

impl std::fmt::Display for XactId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{}#{}",
            self.origin,
            self.incarnation(),
            self.seq & ((1 << Self::INCARNATION_SHIFT) - 1)
        )
    }
}

/// The recorded outcome of a transaction whose writeset reached validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Passed global validation; will commit (or has committed) at every
    /// replica.
    Committed,
    /// Failed global validation; aborted everywhere.
    Aborted,
}

/// A writeset message, multicast in total order at commit time (Fig. 4,
/// step I.2.g).
#[derive(Debug)]
pub struct WsMsg {
    pub origin: ReplicaId,
    pub xact: XactId,
    /// `Ti.cert`: the origin's `lastvalidated_tid` captured just before the
    /// multicast — global validation checks only against transactions with
    /// a larger tid (those validated concurrently with the multicast).
    pub cert: GlobalTid,
    pub ws: Arc<WriteSet>,
}

/// Inter-replica message. Writesets are wrapped in `Arc` — the in-process
/// "network" ships the pointer, mirroring that a real network would ship an
/// immutable serialized copy.
#[derive(Debug, Clone)]
pub enum ReplMsg {
    WriteSet(Arc<WsMsg>),
    /// Progress report used to garbage-collect `ws_list`: the sender
    /// promises every future writeset it multicasts carries
    /// `cert >= lastvalidated`.
    Progress {
        from: ReplicaId,
        lastvalidated: GlobalTid,
    },
    /// Recovery barrier (total order): once a replica has processed a
    /// marker, it has processed every message sequenced before it. The
    /// recovery protocol multicasts one through the *joiner's* fresh
    /// membership and waits for the donor to see it — only then is the
    /// donor's state guaranteed to cover everything the joiner's delivery
    /// buffer does not.
    Marker {
        token: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xact_id_ordering_and_display() {
        let a = XactId { origin: ReplicaId::new(0), seq: 5 };
        let b = XactId { origin: ReplicaId::new(1), seq: 1 };
        assert!(a < b);
        assert_eq!(a.to_string(), "R0.0#5");
        assert_eq!(a.incarnation(), 0);
    }

    #[test]
    fn incarnation_encoding() {
        let seq = XactId::seq_base(3) + 42;
        let x = XactId { origin: ReplicaId::new(2), seq };
        assert_eq!(x.incarnation(), 3);
        assert_eq!(x.to_string(), "R2.3#42");
        // Incarnations don't collide across sequence growth.
        assert!(XactId::seq_base(1) > XactId::seq_base(0) + 1_000_000_000);
    }
}
