//! The decentralized middleware replica `M^k` running SRCA-Rep (Fig. 4 of
//! the paper), including adjustments 1–3 of §4:
//!
//! - **Adjustment 1**: local validation checks only the local
//!   `tocommit_queue` (the database already validated against everything
//!   that committed);
//! - **Adjustment 2**: writesets are applied and committed *concurrently*
//!   when they don't conflict with anything earlier in the queue — this is
//!   what removes the middleware/database "hidden deadlock" of §4.2;
//! - **Adjustment 3**: start/commit synchronization via the
//!   [`HoleTracker`], which restores 1-copy-SI. Running in
//!   [`ReplicationMode::SrcaOpt`] skips adjustment 3 — that is the SRCA-Opt
//!   ablation of Fig. 7, which trades 1-copy-SI for throughput under
//!   update-intensive load.
//!
//! ## Thread structure (per replica)
//!
//! - any number of **client session threads** execute SQL statements against
//!   the local database and, at commit, run local validation and multicast
//!   the writeset (steps I.1–I.2);
//! - one **delivery thread** receives the total-order stream and runs global
//!   validation deterministically (step II);
//! - a small pool of **applier threads** implements step III for REMOTE
//!   writesets: picking queue entries with no conflicting predecessor,
//!   applying them (with deadlock retry), and committing under the hole
//!   rule. Local transactions never wait for an applier: on successful
//!   validation the delivery thread hands them back to their session
//!   thread, which commits immediately (adjustment 2).
//!
//! ## Lock structure (per replica)
//!
//! The paper's single `wsmutex` is split three ways so the hot paths stop
//! contending on one mutex (lint.toml registers the classes and the
//! `node-state < node-apply` / `node-state < node-telem` order):
//!
//! - the **cert-state lock** (`state`) — ws_list, hole tracker, pending
//!   local transactions, outcomes, view. Certification, begins, and the
//!   final commit step (atomic with begins) run under it;
//! - the **applier lock** (`apply`) — the tocommit queue. Appliers drain
//!   eligible entries under it without blocking sessions; sites that need
//!   both always take `state` first;
//! - the **telemetry lock** (`telem`) — recovery markers and the progress
//!   advert cursor; never nested inside anything.
//!
//! Database work (reads, writes, writeset application, the commit log
//! force) happens outside all of them.

use crate::audit::Auditor;
use crate::chaos::{CrashPlan, PausePoint};
use crate::holes::HoleTracker;
use crate::msg::{Outcome, ReplMsg, WsMsg, XactId};
use crate::recorder::Recorder;
use crate::validation::WsList;
use crossbeam::channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex};
use sirep_common::{
    AbortReason, CrashPoint, DbError, EventKind, GaugeSnapshot, GlobalTid, Journal, Metrics,
    ProtocolGauges, ReplicaId, Stage, StageSnapshot, StageStats, TransportSnapshot, TxTrace,
};
use sirep_gcs::{Cast, Delivery, GcsError, Member};
use sirep_storage::{Database, TupleId, TxnHandle, WriteSet};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which variant of the protocol a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Full SRCA-Rep: adjustments 1+2+3; provides 1-copy-SI.
    SrcaRep,
    /// SRCA-Opt: adjustments 1+2 only; no hole synchronization. Each
    /// replica is locally SI but 1-copy-SI may be violated (§4.3.2).
    SrcaOpt,
}

/// How long waiters poll for shutdown while blocked on the node condvar.
const WAIT_TICK: Duration = Duration::from_millis(25);

/// Most tocommit entries one applier claims per group commit. Bounds the
/// size of the shared engine transaction (and the latency of the single
/// log force) without limiting throughput — whatever is left stays ready
/// for the next applier.
const APPLIER_BATCH_MAX: usize = 64;

/// An entry of `tocommit_queue_k`.
struct QEntry {
    tid: GlobalTid,
    xact: XactId,
    ws: Arc<WriteSet>,
    origin: ReplicaId,
    /// An applier has picked this entry (is applying / committing it).
    running: bool,
    /// Conflict edges to entries with smaller tids still in the queue —
    /// one per (predecessor, shared key) pair. The entry is eligible for
    /// an applier exactly when this reaches zero; [`TocommitQueue::remove`]
    /// decrements it as predecessors commit.
    blockers: usize,
    /// Stage timeline for remote entries, originating at delivery time
    /// (local entries carry their own trace on the session thread).
    trace: TxTrace,
}

/// One entry claimed into an applier's group commit: everything needed to
/// apply and finish it after the queue lock is released.
struct BatchItem {
    tid: GlobalTid,
    xact: XactId,
    ws: Arc<WriteSet>,
    trace: TxTrace,
}

/// The `tocommit` queue with incremental conflict scheduling.
///
/// The paper's adjustment 2 lets any queued writeset with no conflicting
/// predecessor proceed. Re-deriving eligibility with a pairwise scan
/// (`find_eligible`) is O(n²·|ws|) under the node lock on every applier
/// wakeup; this structure keeps eligibility incrementally instead:
///
/// - [`TocommitQueue::push`] charges the new entry one *blocker* per
///   (predecessor, shared key) edge, read off a per-key waiter index —
///   O(|ws| + edges);
/// - [`TocommitQueue::remove`] (called as entries commit) walks the removed
///   entry's keys, decrements each successor edge once, and moves entries
///   whose count hits zero onto the ready set — O(|ws| + edges);
/// - appliers pop the smallest-tid ready entry in O(log n), the same entry
///   the old scan would have picked first, so hole dynamics are unchanged.
///
/// The waiter index doubles as the adjustment-1 local validation test:
/// a candidate writeset conflicts with the queue iff one of its keys has a
/// non-empty waiter list — O(|ws|) instead of O(n·|ws|).
#[derive(Default)]
struct TocommitQueue {
    entries: HashMap<GlobalTid, QEntry>,
    /// Tuple id → tids of queue entries writing it, ascending (entries are
    /// pushed in tid order; the list's prefix before an entry are its
    /// predecessors on that key, the suffix its successors).
    waiters: HashMap<TupleId, Vec<GlobalTid>>,
    /// Zero-blocker, not-yet-running entries; appliers pop the smallest.
    ready: BTreeSet<GlobalTid>,
    /// Entries currently marked running.
    running: usize,
}

impl TocommitQueue {
    fn new() -> TocommitQueue {
        TocommitQueue::default()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Queued writesets not yet picked by an applier (the
    /// `applier_backlog` gauge).
    #[cfg(feature = "trace")]
    fn backlog(&self) -> usize {
        self.entries.len() - self.running
    }

    /// Eligible-but-unclaimed entries (the `ready_len` gauge).
    #[cfg(feature = "trace")]
    fn ready_len(&self) -> usize {
        self.ready.len()
    }

    fn iter(&self) -> impl Iterator<Item = &QEntry> {
        self.entries.values()
    }

    /// Is `xact` still queued here — validated (its outcome known) but not
    /// yet committed locally? Claimed entries stay in the queue until
    /// `finalize`/`finalize_batch` removes them, so this covers the whole
    /// in-flight window. O(n) scan, but only called on the rare
    /// failover-inquire path.
    fn contains_xact(&self, xact: XactId) -> bool {
        self.entries.values().any(|e| e.xact == xact)
    }

    /// Adjustment-1 local validation: does `ws` conflict with any queued
    /// entry? O(|ws|) probes of the waiter index.
    fn conflicts(&self, ws: &WriteSet) -> bool {
        ws.tuple_ids().any(|id| self.waiters.get(id).is_some_and(|l| !l.is_empty()))
    }

    /// Insert a validated entry. Must be called in tid order (total-order
    /// delivery / sorted bootstrap), so every current waiter on the entry's
    /// keys is a predecessor.
    fn push(&mut self, mut e: QEntry) {
        let mut blockers = 0;
        for id in e.ws.tuple_ids() {
            let list = self.waiters.entry(id.clone()).or_default();
            debug_assert!(list.last().is_none_or(|&t| t < e.tid), "push out of tid order");
            blockers += list.len();
            list.push(e.tid);
        }
        e.blockers = blockers;
        if e.running {
            self.running += 1;
        } else if blockers == 0 {
            self.ready.insert(e.tid);
        }
        let prev = self.entries.insert(e.tid, e);
        debug_assert!(prev.is_none(), "tid queued twice");
    }

    /// Claim the smallest-tid eligible entry for an applier, marking it
    /// running.
    fn pop_ready(&mut self) -> Option<&QEntry> {
        let tid = self.ready.pop_first()?;
        // sirep-lint: allow(no-unwrap-on-protocol-paths): ready ⊆ entries is the queue's structural invariant (every insert/remove maintains it); a miss is a corrupted queue, not a runtime condition
        let e = self.entries.get_mut(&tid).expect("ready tid must be queued");
        debug_assert!(!e.running && e.blockers == 0);
        e.running = true;
        self.running += 1;
        Some(e)
    }

    /// Remove a committed (or discarded) entry, releasing its successors'
    /// blocker edges; newly eligible entries move onto the ready set.
    fn remove(&mut self, tid: GlobalTid) -> Option<QEntry> {
        let e = self.entries.remove(&tid)?;
        if e.running {
            self.running -= 1;
        } else {
            self.ready.remove(&tid);
        }
        for id in e.ws.tuple_ids() {
            let Some(list) = self.waiters.get_mut(id) else { continue };
            if let Some(pos) = list.iter().position(|&t| t == tid) {
                list.remove(pos);
                // sirep-lint: allow(no-unwrap-on-protocol-paths): pos came from position() on this very list — in range by construction
                for &succ in &list[pos..] {
                    let s = self.entries.get_mut(&succ).expect("waiter must be queued"); // sirep-lint: allow(no-unwrap-on-protocol-paths): waiter lists only hold queued tids (the queue's structural invariant)
                    s.blockers -= 1;
                    if s.blockers == 0 && !s.running {
                        self.ready.insert(succ);
                    }
                }
            }
            if list.is_empty() {
                self.waiters.remove(id);
            }
        }
        Some(e)
    }
}

/// A local transaction that has been multicast and awaits its fate. On
/// successful global validation the delivery thread hands the transaction
/// *back* to the waiting session thread, which performs the commit itself —
/// the paper's adjustment 2: a validated local transaction "can commit
/// immediately", without queueing behind the appliers (routing local
/// commits through the applier pool can starve them when every applier is
/// blocked inside the database on a local's tuple lock — a reincarnation of
/// the §4.2 hidden deadlock).
struct PendingLocal {
    txn: TxnHandle,
    responder: Sender<Result<LocalCommitJob, DbError>>,
    /// Keeps the transaction in the hole tracker's set B until it no
    /// longer holds database locks.
    guard: LocalGuard,
    /// Stage timeline, handed back to the session thread with the job.
    trace: TxTrace,
}

/// Handed from the delivery thread back to the session thread on
/// successful validation: everything needed to run the commit step.
struct LocalCommitJob {
    tid: GlobalTid,
    txn: TxnHandle,
    _guard: LocalGuard,
    trace: TxTrace,
}

/// RAII membership in the hole tracker's set B (running local
/// transactions). Dropped when the local transaction terminates — whether
/// by commit, validation failure, rollback, statement abort or session
/// drop — so the count can never leak.
pub struct LocalGuard {
    node: Arc<ReplicaNode>,
}

impl Drop for LocalGuard {
    fn drop(&mut self) {
        let mut st = self.node.state.lock();
        st.holes.local_finished();
        drop(st);
        self.node.cond.notify_all();
    }
}

/// Bounded log of transaction outcomes for in-doubt resolution (§5.4).
/// Cloned wholesale during recovery state transfer so a recovered replica
/// can (a) answer in-doubt inquiries about pre-recovery transactions and
/// (b) recognize — and skip — buffered deliveries that are already covered
/// by the transferred state.
#[derive(Clone)]
struct OutcomeLog {
    map: HashMap<XactId, Outcome>,
    order: VecDeque<XactId>,
    cap: usize,
}

impl OutcomeLog {
    fn new(cap: usize) -> OutcomeLog {
        OutcomeLog { map: HashMap::new(), order: VecDeque::new(), cap }
    }

    fn record(&mut self, xact: XactId, outcome: Outcome) {
        if self.map.insert(xact, outcome).is_none() {
            self.order.push_back(xact);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    fn get(&self, xact: XactId) -> Option<Outcome> {
        self.map.get(&xact).copied()
    }
}

/// A point-in-time snapshot of a replica's protocol state.
#[derive(Debug, Clone)]
pub struct NodeStatus {
    pub replica: ReplicaId,
    pub alive: bool,
    /// `lastvalidated_tid` — how far certification has progressed here.
    pub last_validated: GlobalTid,
    /// Validated writesets not yet committed at this replica.
    pub queued: usize,
    /// Local transactions awaiting their validation outcome.
    pub pending_local: usize,
    /// Whether the commit order currently has holes (adjustment 3 gates
    /// new local begins while true).
    pub holes_open: bool,
    pub running_locals: usize,
    pub waiting_to_start: usize,
    /// Live replicas as processed by this node's delivery thread.
    pub view: Vec<ReplicaId>,
    /// Snapshot of this replica's protocol event counters.
    pub metrics: Metrics,
    /// Snapshot of this replica's per-stage latency histograms (empty when
    /// the `trace` feature is disabled).
    pub stages: StageSnapshot,
    /// Queue-depth gauges with high-water marks (zeros when the `trace`
    /// feature is disabled).
    pub gauges: GaugeSnapshot,
    /// Wire-level counters of this replica's GCS endpoint (empty on the
    /// sim transport, which has no wire).
    pub transport: TransportSnapshot,
}

impl NodeStatus {
    /// A coarse load figure for balancing decisions: work queued or in
    /// flight at this replica.
    pub fn load(&self) -> usize {
        self.queued + self.pending_local + self.running_locals
    }
}

/// Telemetry wire form: fixed field order, `usize` counters as `u64`.
/// Scraped by the per-process telemetry service and merged by the
/// multinode `report` role.
impl sirep_common::wire::Wire for NodeStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        self.replica.encode(out);
        self.alive.encode(out);
        self.last_validated.encode(out);
        (self.queued as u64).encode(out);
        (self.pending_local as u64).encode(out);
        self.holes_open.encode(out);
        (self.running_locals as u64).encode(out);
        (self.waiting_to_start as u64).encode(out);
        self.view.encode(out);
        self.metrics.encode(out);
        self.stages.encode(out);
        self.gauges.encode(out);
        self.transport.encode(out);
    }

    fn decode(
        r: &mut sirep_common::wire::WireReader<'_>,
    ) -> Result<Self, sirep_common::wire::WireError> {
        Ok(NodeStatus {
            replica: ReplicaId::decode(r)?,
            alive: bool::decode(r)?,
            last_validated: GlobalTid::decode(r)?,
            queued: u64::decode(r)? as usize,
            pending_local: u64::decode(r)? as usize,
            holes_open: bool::decode(r)?,
            running_locals: u64::decode(r)? as usize,
            waiting_to_start: u64::decode(r)? as usize,
            view: Vec::decode(r)?,
            metrics: Metrics::decode(r)?,
            stages: StageSnapshot::decode(r)?,
            gauges: GaugeSnapshot::decode(r)?,
            transport: TransportSnapshot::decode(r)?,
        })
    }
}

/// The answer to an in-doubt inquiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InDoubt {
    /// The writeset was received; this is the validation outcome.
    Known(Outcome),
    /// The origin replica crashed and its writeset never arrived — by
    /// uniform delivery the transaction did not commit anywhere.
    NeverReceived,
}

impl sirep_common::wire::Wire for InDoubt {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            InDoubt::Known(outcome) => {
                out.push(0);
                outcome.encode(out);
            }
            InDoubt::NeverReceived => out.push(1),
        }
    }
    fn decode(
        r: &mut sirep_common::wire::WireReader<'_>,
    ) -> Result<Self, sirep_common::wire::WireError> {
        Ok(match u8::decode(r)? {
            0 => InDoubt::Known(Outcome::decode(r)?),
            1 => InDoubt::NeverReceived,
            _ => return Err(sirep_common::wire::WireError::Corrupt("in-doubt tag")),
        })
    }
}

/// Certification state — everything the paper's `wsmutex` must keep atomic
/// with local transaction begins and commits. Guarded by the node's
/// cert-state lock (`node-state` in lint.toml).
struct NodeState {
    wslist: WsList,
    holes: HoleTracker,
    pending_local: HashMap<XactId, PendingLocal>,
    outcomes: OutcomeLog,
    /// Live replicas as of the last view change processed by the delivery
    /// thread (so in-doubt inquiries see exactly the §5.4 guarantee).
    view: Vec<ReplicaId>,
    /// Current incarnation of each replica id (bumps when a previously
    /// departed replica re-joins).
    incarnations: HashMap<ReplicaId, u64>,
    /// (replica, incarnation) pairs whose departure this node has
    /// processed. By uniform delivery, every writeset that incarnation
    /// multicast is already in `outcomes` — so an in-doubt transaction of a
    /// departed incarnation with no outcome was never received, full stop.
    departed: std::collections::HashSet<(ReplicaId, u64)>,
}

/// Applier-side state: the tocommit queue, guarded by its own lock
/// (`node-apply`) so applier wakeups and drains never contend with session
/// begins. Sites that need cert state too take `state` first (the declared
/// `node-state < node-apply` order).
struct ApplyState {
    queue: TocommitQueue,
}

/// Telemetry/bookkeeping state off the protocol hot paths (`node-telem`):
/// recovery markers and the progress-advert cursor. Never nested inside
/// another node lock.
struct TelemState {
    /// Recovery markers processed (see [`ReplMsg::Marker`]).
    markers_seen: std::collections::HashSet<u64>,
    last_progress_sent: GlobalTid,
}

/// Maps GCS member ids to replica ids. Identity at cluster creation; a
/// recovered replica re-joins the group under a fresh member id that is
/// bound back to its logical replica id here.
pub(crate) type MemberRegistry = Arc<Mutex<HashMap<u64, ReplicaId>>>;

/// One middleware/database replica pair.
pub struct ReplicaNode {
    id: ReplicaId,
    db: Database,
    gcs: Box<dyn Cast<ReplMsg>>,
    mode: ReplicationMode,
    state: Mutex<NodeState>,
    cond: Condvar,
    apply: Mutex<ApplyState>,
    apply_cond: Condvar,
    telem: Mutex<TelemState>,
    telem_cond: Condvar,
    shutdown: AtomicBool,
    next_xact: AtomicU64,
    /// This node's own incarnation (times its replica id has re-joined);
    /// encoded in the top bits of every XactId it assigns (via next_xact's
    /// starting value), kept for introspection.
    #[allow(dead_code)]
    incarnation: u64,
    registry: MemberRegistry,
    pub metrics: Arc<Metrics>,
    /// Per-stage latency histograms fed by transaction traces (no-op when
    /// the `trace` feature is disabled).
    pub stages: Arc<StageStats>,
    pub recorder: Arc<Recorder>,
    /// Protocol event journal for this replica (no-op without `trace`).
    pub journal: Journal,
    /// Queue-depth gauges, refreshed at mutation sites under the state
    /// lock (no-op without `trace`).
    pub gauges: ProtocolGauges,
    /// Cluster-wide 1-copy-SI auditor; hooks are invoked under the state
    /// lock (the auditor's own lock is a strict leaf).
    auditor: Arc<Auditor>,
    /// Armed crash-points shared across the cluster (chaos harness).
    crash_plan: Arc<CrashPlan>,
}

/// State transferred from a donor replica during online recovery.
pub(crate) struct Bootstrap {
    pub wslist: WsList,
    pub queue_entries: Vec<(GlobalTid, XactId, Arc<WriteSet>, ReplicaId)>,
    outcomes: OutcomeLog,
    /// Highest tid whose effects are contained in the transferred database
    /// state (modulo the copied queue entries, which are still pending).
    pub max_committed: GlobalTid,
    pub view: Vec<ReplicaId>,
    incarnations: HashMap<ReplicaId, u64>,
    departed: std::collections::HashSet<(ReplicaId, u64)>,
}

/// An active local transaction bound to a session.
pub struct ActiveTxn {
    pub xact: XactId,
    pub txn: TxnHandle,
    /// The commit watermark at begin time — the snapshot this transaction
    /// reads. Journaled (and audited) when the transaction turns out to be
    /// read-only and commits without certification.
    snapshot: GlobalTid,
    guard: LocalGuard,
    trace: TxTrace,
}

impl ReplicaNode {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: ReplicaId,
        db: Database,
        gcs: Box<dyn Cast<ReplMsg>>,
        mode: ReplicationMode,
        outcome_cap: usize,
        record_history: bool,
        registry: MemberRegistry,
        incarnation: u64,
        bootstrap: Option<Bootstrap>,
        journal: Journal,
        auditor: Arc<Auditor>,
        crash_plan: Arc<CrashPlan>,
    ) -> Arc<ReplicaNode> {
        if let Some(b) = &bootstrap {
            // Rebase the auditor's view of this replica on the transferred
            // state before any thread can report events for it.
            auditor.on_replica_reset(
                id,
                b.wslist.last_tid(),
                b.max_committed,
                b.queue_entries.iter().map(|(tid, ..)| *tid),
            );
        }
        let (state, apply) = match bootstrap {
            None => (
                NodeState {
                    wslist: WsList::new(),
                    holes: HoleTracker::new(),
                    pending_local: HashMap::new(),
                    outcomes: OutcomeLog::new(outcome_cap),
                    // The view must only ever reflect view changes this node's
                    // delivery thread has actually processed. Seeding it with
                    // the expected full membership would make the one-by-one
                    // formation view changes look like departures, poisoning
                    // `departed` with (replica, 0) entries that later turn
                    // in-doubt inquiries into false `NeverReceived` answers —
                    // a committed transaction reported to its client as lost.
                    view: Vec::new(),
                    incarnations: HashMap::new(),
                    departed: std::collections::HashSet::new(),
                },
                ApplyState { queue: TocommitQueue::new() },
            ),
            Some(b) => {
                let holes = HoleTracker::bootstrap(
                    b.max_committed,
                    b.queue_entries.iter().map(|(tid, ..)| *tid),
                );
                // Transferred entries are pushed in tid order (the donor
                // sorts them) so the waiter index and blocker counts are
                // rebuilt exactly as delivery order would have built them.
                let mut queue = TocommitQueue::new();
                for (tid, xact, ws, origin) in b.queue_entries {
                    queue.push(QEntry {
                        tid,
                        xact,
                        ws,
                        origin,
                        running: false,
                        blockers: 0,
                        trace: TxTrace::start(),
                    });
                }
                (
                    NodeState {
                        wslist: b.wslist,
                        holes,
                        pending_local: HashMap::new(),
                        outcomes: b.outcomes,
                        view: b.view,
                        incarnations: b.incarnations,
                        departed: b.departed,
                    },
                    ApplyState { queue },
                )
            }
        };
        Arc::new(ReplicaNode {
            id,
            db,
            gcs,
            mode,
            state: Mutex::new(state),
            cond: Condvar::new(),
            apply: Mutex::new(apply),
            apply_cond: Condvar::new(),
            telem: Mutex::new(TelemState {
                markers_seen: std::collections::HashSet::new(),
                last_progress_sent: GlobalTid::ZERO,
            }),
            telem_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_xact: AtomicU64::new(XactId::seq_base(incarnation) + 1),
            incarnation,
            registry,
            metrics: Arc::new(Metrics::new()),
            stages: Arc::new(StageStats::new()),
            recorder: Arc::new(Recorder::new(record_history)),
            journal,
            gauges: ProtocolGauges::new(),
            auditor,
            crash_plan,
        })
    }

    /// If `point` is armed for this replica, crash-stop here: record the
    /// firing, crash the GCS member (survivors get a view change, exactly
    /// as `Cluster::crash` orders it), then fail this node's clients. Must
    /// be called *without* the state lock held — `mark_crashed` takes it.
    fn crash_point(&self, point: CrashPoint) -> bool {
        if !self.crash_plan.fire(point, self.id) {
            return false;
        }
        // sirep-lint: allow(journal-gauge-under-lock): crash-stop record — mark_crashed below takes the state lock itself, so holding it here would self-deadlock; nothing races a replica that is about to die
        self.journal.record(EventKind::CrashPointFired { point });
        self.gcs.crash_self();
        self.mark_crashed();
        true
    }

    /// Block while `point` is armed for this replica — the deterministic
    /// interleaving hook for counterexample-replay tests. Free when
    /// unarmed (one short mutex probe). Must be called *without* protocol
    /// locks held, so a parked thread cannot stall unrelated progress.
    fn pause_point(&self, point: PausePoint) {
        self.crash_plan.pause_at(point, self.id);
    }

    /// Recompute the cert-state gauges. Called at mutation sites under the
    /// state lock; compiles away without `trace`.
    fn refresh_gauges(&self, st: &NodeState) {
        #[cfg(feature = "trace")]
        {
            self.gauges.ws_list_len.set(st.wslist.len() as u64);
            self.gauges.open_holes.set(st.holes.open_holes() as u64);
            self.gauges.cert_index_keys.set(st.wslist.index_len() as u64);
        }
        #[cfg(not(feature = "trace"))]
        let _ = st;
    }

    /// Recompute the queue-depth gauges that live behind the applier lock.
    /// Takes both state refs so call sites prove they hold the cert-state
    /// *and* applier locks (in the declared `node-state < node-apply`
    /// order) — gauge refreshes stay ordered with the queue mutations they
    /// observe. Applier drains deliberately skip this (they only *claim*
    /// entries; depth changes on push and remove).
    fn refresh_apply_gauges(&self, _st: &NodeState, ap: &ApplyState) {
        #[cfg(feature = "trace")]
        {
            self.gauges.tocommit_depth.set(ap.queue.len() as u64);
            self.gauges.applier_backlog.set(ap.queue.backlog() as u64);
            self.gauges.ready_len.set(ap.queue.ready_len() as u64);
        }
        #[cfg(not(feature = "trace"))]
        let _ = ap;
    }

    pub fn id(&self) -> ReplicaId {
        self.id
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn is_alive(&self) -> bool {
        !self.shutdown.load(Ordering::Acquire)
    }

    pub fn mode(&self) -> ReplicationMode {
        self.mode
    }

    /// Current number of queued (validated, uncommitted) writesets.
    pub fn queue_len(&self) -> usize {
        self.apply.lock().queue.len()
    }

    /// A point-in-time snapshot of this replica's protocol state, for
    /// monitoring and load-balancing decisions.
    pub fn status(&self) -> NodeStatus {
        let st = self.state.lock();
        let ap = self.apply.lock();
        self.refresh_gauges(&st);
        self.refresh_apply_gauges(&st, &ap);
        NodeStatus {
            replica: self.id,
            alive: self.is_alive(),
            last_validated: st.wslist.last_tid(),
            queued: ap.queue.len(),
            pending_local: st.pending_local.len(),
            holes_open: st.holes.holes_exist(),
            running_locals: st.holes.running_locals(),
            waiting_to_start: st.holes.waiting_to_start(),
            view: st.view.clone(),
            metrics: Metrics::clone(&self.metrics),
            stages: self.stages.snapshot(),
            gauges: self.gauges.snapshot(self.gcs.in_flight()),
            transport: self.gcs.transport(),
        }
    }

    /// Pending local transactions awaiting validation/commit.
    pub fn pending_len(&self) -> usize {
        self.state.lock().pending_local.len()
    }

    /// `lastvalidated_tid` at this replica.
    pub fn last_validated(&self) -> GlobalTid {
        self.state.lock().wslist.last_tid()
    }

    /// The live view as processed by this node's delivery thread.
    pub fn current_view(&self) -> Vec<ReplicaId> {
        self.state.lock().view.clone()
    }

    /// Block until this node's delivery thread has processed the recovery
    /// marker `token` (and therefore every message sequenced before it).
    /// Waits on the telemetry lock only — marker bookkeeping never touches
    /// certification state.
    pub(crate) fn wait_for_marker(&self, token: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut tl = self.telem.lock();
        while !tl.markers_seen.contains(&token) {
            if !self.is_alive() || std::time::Instant::now() >= deadline {
                return false;
            }
            self.telem_cond.wait_for(&mut tl, WAIT_TICK);
        }
        tl.markers_seen.remove(&token);
        true
    }

    /// Produce a consistent state transfer for a recovering replica (the
    /// paper's §8 "recovery without interrupting transaction processing"):
    /// a fork of this replica's committed database plus the protocol state
    /// needed to continue validation deterministically. The donor is
    /// latched (its state lock) only for the duration of the copy; other
    /// replicas are unaffected.
    ///
    /// Correctness: commits at this replica happen under the state lock,
    /// and queue membership only changes while it is held (pushes and
    /// removes take `state` before `apply`), so while we hold both the
    /// forked database corresponds exactly to "all validated tids except
    /// those still in the queue". The recovering replica must have joined
    /// the group *before* this is taken; every writeset it then receives is
    /// either (a) recorded in the transferred outcome log — covered by the
    /// fork or the copied queue and skipped — or (b) new, and validated
    /// normally against the transferred ws_list.
    pub(crate) fn state_transfer(&self, cost: sirep_storage::CostModel) -> (Database, Bootstrap) {
        let st = self.state.lock();
        let ap = self.apply.lock();
        let db = self.db.fork_latest(cost);
        let mut queue_entries: Vec<_> =
            ap.queue.iter().map(|e| (e.tid, e.xact, Arc::clone(&e.ws), e.origin)).collect();
        // Tid order, so the recovering replica can rebuild its scheduling
        // index with the same incremental pushes delivery would have made.
        queue_entries.sort_by_key(|(tid, ..)| *tid);
        let boot = Bootstrap {
            wslist: st.wslist.clone(),
            queue_entries,
            outcomes: st.outcomes.clone(),
            max_committed: st.holes.max_committed(),
            view: st.view.clone(),
            incarnations: st.incarnations.clone(),
            departed: st.departed.clone(),
        };
        (db, boot)
    }

    // ---------------------------------------------------------------------
    // Client-side protocol (steps I.1, I.2)
    // ---------------------------------------------------------------------

    /// Start a local transaction (step I.1.a): under SRCA-Rep the begin
    /// waits until the commit order has no holes, and is atomic with
    /// commits (both run under the node state lock).
    pub fn begin_local(self: &Arc<Self>) -> Result<ActiveTxn, DbError> {
        if !self.is_alive() {
            return Err(DbError::Aborted(AbortReason::ReplicaCrashed));
        }
        let xact = XactId { origin: self.id, seq: self.next_xact.fetch_add(1, Ordering::Relaxed) };
        let mut trace = TxTrace::start();
        Metrics::inc(&self.metrics.begins_total);
        match self.mode {
            ReplicationMode::SrcaRep => {
                let mut st = self.state.lock();
                if st.holes.holes_exist() {
                    Metrics::inc(&self.metrics.begins_delayed_by_holes);
                    st.holes.start_waiting();
                    // A waiting local throttles hole-creating commits once
                    // no locals are running (liveness protocol of §4.3.3);
                    // existing holes drain.
                    while st.holes.holes_exist() && self.is_alive() {
                        self.cond.wait_for(&mut st, WAIT_TICK);
                    }
                    st.holes.done_waiting();
                    // Wake other throttled commits in case we were the last
                    // waiter.
                    self.cond.notify_all();
                    if !self.is_alive() {
                        return Err(DbError::Aborted(AbortReason::ReplicaCrashed));
                    }
                    trace.mark(Stage::BeginWait);
                }
                self.auditor.on_local_begin(self.id);
                let txn = self.db.begin()?;
                st.holes.local_started();
                // Captured atomically with the begin: the watermark this
                // transaction's snapshot reflects (no holes exist here, so
                // every tid ≤ snapshot is committed locally).
                let snapshot = st.holes.max_committed();
                self.journal.record(EventKind::TxBegin { xact });
                self.recorder.on_begin(xact);
                drop(st);
                Ok(ActiveTxn {
                    xact,
                    txn,
                    snapshot,
                    guard: LocalGuard { node: Arc::clone(self) },
                    trace,
                })
            }
            ReplicationMode::SrcaOpt => {
                // No hole-rule synchronization: begin immediately (1-copy-SI
                // may be lost, which is the point of the ablation). The
                // engine begin and the snapshot-watermark capture still run
                // under one state-lock hold: sirep-model's P3 counterexample
                // (tests/model_replay.rs) showed that taking the engine
                // snapshot before the lock lets a commit slip between the
                // two, making the journaled snapshot claim tids the
                // transaction cannot read.
                self.pause_point(PausePoint::OptBeginPreLock);
                let mut st = self.state.lock();
                let txn = self.db.begin()?;
                st.holes.local_started();
                let snapshot = st.holes.max_committed();
                self.journal.record(EventKind::TxBegin { xact });
                drop(st);
                self.recorder.on_begin(xact);
                Ok(ActiveTxn {
                    xact,
                    txn,
                    snapshot,
                    guard: LocalGuard { node: Arc::clone(self) },
                    trace,
                })
            }
        }
    }

    /// Commit a local transaction (step I.2): extract the writeset, run
    /// local validation against the tocommit queue, multicast in total
    /// order, and block until the transaction's fate is decided.
    pub fn commit_local(self: &Arc<Self>, active: ActiveTxn) -> Result<(), DbError> {
        let ActiveTxn { xact, txn, snapshot, guard, mut trace } = active;
        trace.mark(Stage::Execute);
        let ws = txn.writeset();
        if ws.is_empty() {
            // Certification-free read-only path (step I.2.c): the
            // transaction ran entirely against the local snapshot — commit
            // locally with no multicast, no certification, no sequencer
            // round-trip. Its commit position is irrelevant for 1-copy-SI;
            // the journaled snapshot lets the auditor check the snapshot
            // itself was hole-free.
            self.recorder.on_local_committed(xact, &txn, &ws);
            txn.commit()?;
            self.recorder.on_commit(xact);
            // sirep-lint: allow(journal-gauge-under-lock): read-only commits touch no protocol state — the event is ordered by this session thread alone, and the auditor hook re-checks the begin-time snapshot against its own watermark
            self.journal.record(EventKind::LocalReadOnly { xact, snapshot });
            self.auditor.on_local_readonly(self.id, xact, snapshot);
            Metrics::inc(&self.metrics.commits_readonly);
            trace.mark(Stage::Commit);
            self.stages.absorb(&trace.finish());
            return Ok(());
        }
        trace.mark(Stage::WsExtract);
        if self.crash_point(CrashPoint::BeforeMulticast) {
            // §5.4 case 1/2: the transaction dies with its origin; nothing
            // was multicast, so no replica will ever see this writeset.
            txn.abort(AbortReason::ReplicaCrashed);
            return Err(DbError::Aborted(AbortReason::ReplicaCrashed));
        }
        let (reply_tx, reply_rx) = bounded(1);
        let ws = Arc::new(ws);
        {
            let mut st = self.state.lock();
            // Local validation (adjustment 1): only the tocommit queue —
            // O(|ws|) probes of its waiter index, via a momentary applier
            // lock nested inside the state lock (the declared
            // `node-state < node-apply` order).
            if self.apply.lock().queue.conflicts(&ws) {
                // Journal the abort verdict at the decision point, under the
                // lock, so it cannot interleave after a later transaction's
                // events; only the database-side rollback runs outside.
                self.journal.record(EventKind::Abort { xact });
                drop(st);
                txn.abort(AbortReason::ValidationFailure);
                Metrics::inc(&self.metrics.aborts_validation);
                return Err(DbError::Aborted(AbortReason::ValidationFailure));
            }
            let cert = st.wslist.last_tid();
            self.journal.record(EventKind::CertCapture { xact, cert });
            st.pending_local.insert(xact, PendingLocal { txn, responder: reply_tx, guard, trace });
            // Multicast while still holding the state lock, so that cert
            // capture order equals total-order sequence order. The ws_list
            // pruning protocol depends on this: every cert this replica puts
            // on the wire is an implicit progress promise ("my future certs
            // are ≥ this"), and the group-wide prune watermark is the
            // minimum of those promises. If another session captured a
            // higher cert and got sequenced first, the watermark could
            // overtake this writeset's cert and prune a conflicting entry
            // out of every replica's ws_list before this writeset validates
            // — a silent lost update.
            let msg = ReplMsg::WriteSet(Arc::new(WsMsg {
                origin: self.id,
                xact,
                cert,
                ws: Arc::clone(&ws),
            }));
            if self.gcs.multicast_total(msg).is_err() {
                // We crashed concurrently; the pending entry is cleaned up
                // by the shutdown path.
                return Err(DbError::Aborted(AbortReason::ReplicaCrashed));
            }
            self.journal.record(EventKind::Multicast { xact });
        }
        if self.crash_point(CrashPoint::AfterMulticastBeforeLocalCommit) {
            // §5.4 case 3: the writeset is on the wire (survivors will
            // commit it) but this origin dies before committing or acking —
            // the client's commit is now in doubt and must be resolved via
            // `inquire` at another replica. `mark_crashed` already answered
            // our own pending entry with ReplicaCrashed.
            return Err(DbError::Aborted(AbortReason::ReplicaCrashed));
        }
        match reply_rx.recv() {
            Ok(Ok(job)) => {
                // Adjustment 2: commit immediately on this (the client's)
                // thread — never behind the applier pool.
                let LocalCommitJob { tid, txn, _guard, mut trace } = job;
                trace.mark(Stage::ValidateQueue);
                self.finalize(tid, xact, &ws, txn, trace);
                Metrics::inc(&self.metrics.commits_update);
                Ok(())
            }
            Ok(Err(e)) => Err(e),
            Err(_) => Err(DbError::Aborted(AbortReason::ReplicaCrashed)),
        }
    }

    /// Resolve an in-doubt transaction for a failed-over client (§5.4 case
    /// 3): blocks until the outcome is known or the origin's crash has been
    /// processed — uniform delivery guarantees no writeset can arrive after
    /// that.
    pub fn inquire(&self, xact: XactId) -> Result<InDoubt, DbError> {
        let mut st = self.state.lock();
        loop {
            if let Some(o) = st.outcomes.get(xact) {
                // A committed verdict is recorded at *validation* time, but
                // answering then is a session-order bug sirep-model found
                // (P7, tests/model_replay.rs): the writeset may still sit in
                // the tocommit queue, so a failed-over client told
                // "committed" could begin its next transaction here and
                // miss its own write. Hold the answer until the entry has
                // left the queue (committed locally). Momentary apply lock
                // inside the state lock — the declared node-state <
                // node-apply order, same as local validation.
                let visible =
                    o != Outcome::Committed || !self.apply.lock().queue.contains_xact(xact);
                if visible {
                    return Ok(InDoubt::Known(o));
                }
            } else if st.departed.contains(&(xact.origin, xact.incarnation()))
                || (!st.view.contains(&xact.origin)
                    && st.incarnations.get(&xact.origin).copied() == Some(xact.incarnation()))
            {
                // The transaction's origin *incarnation* has departed:
                // uniform delivery put any writeset it multicast in front of
                // the view change we already processed, so no outcome means
                // no writeset — even if the replica id has since re-joined
                // (recovery). The fallback arm requires a *recorded*
                // incarnation: before this node has processed a view
                // containing the origin, absence from the view means "not
                // seen yet", not "departed". (Guarded on the outcome being
                // absent: a known-but-not-yet-visible outcome must wait
                // below, never degrade to NeverReceived.)
                return Ok(InDoubt::NeverReceived);
            }
            if !self.is_alive() {
                return Err(DbError::Aborted(AbortReason::ReplicaCrashed));
            }
            self.cond.wait_for(&mut st, WAIT_TICK);
        }
    }

    // ---------------------------------------------------------------------
    // Delivery thread (step II: global validation in total order)
    // ---------------------------------------------------------------------

    pub(crate) fn run_delivery(self: Arc<Self>, member: Box<dyn Member<ReplMsg>>) {
        let idle = Duration::from_millis(10);
        loop {
            if !self.is_alive() {
                return;
            }
            match member.recv_timeout(idle) {
                Ok(Delivery::TotalOrder { msg, sequenced_at, .. }) => {
                    self.handle_total(msg, sequenced_at);
                }
                Ok(Delivery::TotalBatch { sequenced_at, entries }) => {
                    // A sequencer batch frame: entries carry ascending
                    // per-message sequence numbers and are processed one by
                    // one in that order, so certification verdicts are
                    // bit-identical to unbatched delivery.
                    for e in entries {
                        if !self.is_alive() {
                            return;
                        }
                        self.handle_total(e.msg, sequenced_at);
                    }
                }
                Ok(Delivery::Fifo { msg: ReplMsg::Progress { from, lastvalidated }, .. }) => {
                    self.handle_progress(from, lastvalidated);
                }
                Ok(Delivery::Fifo { msg: ReplMsg::Marker { token }, .. }) => {
                    self.handle_marker(token);
                }
                Ok(Delivery::Fifo { msg: ReplMsg::WriteSet(_), .. }) => {
                    debug_assert!(false, "writesets travel in total order only");
                }
                Ok(Delivery::ViewChange(v)) => {
                    // Translate member ids to logical replica ids
                    // (recovered replicas re-join under fresh member ids).
                    let reg = self.registry.lock();
                    let mut view: Vec<ReplicaId> = v
                        .members
                        .iter()
                        .map(|m| {
                            // Registry first (the sim tier's cluster-side
                            // mapping), then the transport's own view
                            // metadata (the TCP tier carries the replica id
                            // in view frames), then the raw member id.
                            reg.get(&m.raw())
                                .copied()
                                .or_else(|| member.replica_of(*m).map(ReplicaId::new))
                                .unwrap_or(ReplicaId::new(m.raw()))
                        })
                        .collect();
                    drop(reg);
                    view.sort();
                    view.dedup();
                    let mut st = self.state.lock();
                    // Departure/rejoin bookkeeping for in-doubt resolution.
                    for r in st.view.clone() {
                        if !view.contains(&r) {
                            let inc = st.incarnations.get(&r).copied().unwrap_or(0);
                            st.departed.insert((r, inc));
                        }
                    }
                    for r in &view {
                        let cur = st.incarnations.get(r).copied().unwrap_or(0);
                        if st.departed.contains(&(*r, cur)) {
                            // A previously departed replica re-joined: bump.
                            st.incarnations.insert(*r, cur + 1);
                        } else {
                            st.incarnations.entry(*r).or_insert(0);
                        }
                    }
                    st.view = view;
                    let members = st.view.len() as u64;
                    self.journal.record(EventKind::ViewChange { members });
                    self.cond.notify_all();
                }
                Err(GcsError::Timeout) => self.maybe_send_progress(),
                Err(_) => return, // disconnected: we crashed
            }
        }
    }

    /// Dispatch one totally-ordered message — called for singleton
    /// deliveries and for each entry of a batch frame alike.
    fn handle_total(self: &Arc<Self>, msg: ReplMsg, sequenced_at: Instant) {
        match msg {
            ReplMsg::WriteSet(m) => self.handle_writeset(&m, sequenced_at),
            ReplMsg::Progress { from, lastvalidated } => self.handle_progress(from, lastvalidated),
            ReplMsg::Marker { token } => self.handle_marker(token),
        }
    }

    fn handle_progress(&self, from: ReplicaId, lastvalidated: GlobalTid) {
        let mut st = self.state.lock();
        let view = st.view.clone();
        if let Some((watermark, removed)) = st.wslist.advance_progress(from, lastvalidated, &view) {
            self.auditor.on_prune(self.id, watermark);
            if removed > 0 {
                self.journal.record(EventKind::WsListPruned { watermark, removed });
            }
            self.refresh_gauges(&st);
        }
    }

    fn handle_marker(&self, token: u64) {
        let mut tl = self.telem.lock();
        tl.markers_seen.insert(token);
        drop(tl);
        self.telem_cond.notify_all();
    }

    fn handle_writeset(self: &Arc<Self>, m: &WsMsg, sequenced_at: Instant) {
        let delivered_at = Instant::now();
        if m.origin != self.id {
            // The origin's multicast latency lands on its own trace; remote
            // replicas account it directly (they have no session trace).
            self.stages.record_duration(
                Stage::GcsDeliver,
                delivered_at.saturating_duration_since(sequenced_at),
            );
        }
        let mut st = self.state.lock();
        Metrics::inc(&self.metrics.ws_delivered);
        if st.outcomes.get(m.xact).is_some() {
            // Already decided — only possible on a recovered replica whose
            // delivery buffer overlaps the transferred state (the effect is
            // in the fork or the copied queue). Skip idempotently.
            return;
        }
        self.journal.record(EventKind::TotalOrderDeliver { xact: m.xact, cert: m.cert });
        self.auditor.on_deliver(self.id, m.xact, m.cert);
        {
            let view = st.view.clone();
            if let Some((watermark, removed)) = st.wslist.advance_progress(m.origin, m.cert, &view)
            {
                self.auditor.on_prune(self.id, watermark);
                if removed > 0 {
                    self.journal.record(EventKind::WsListPruned { watermark, removed });
                }
            }
        }
        if st.wslist.passes(m.cert, &m.ws) {
            let tid = st.wslist.append(m.xact, Arc::clone(&m.ws));
            st.holes.on_validated(tid);
            self.journal.record(EventKind::ValidationVerdict {
                xact: m.xact,
                tid: Some(tid),
                passed: true,
            });
            self.auditor.on_verdict(self.id, m.xact, m.cert, Some(tid), &m.ws);
            // A local entry with a waiting session commits on the session
            // thread (adjustment 2); mark it running so no applier picks it.
            let local_job = if m.origin == self.id {
                st.pending_local.remove(&m.xact).map(|p| {
                    let mut trace = p.trace;
                    trace.mark_at(Stage::GcsDeliver, delivered_at);
                    (p.responder, LocalCommitJob { tid, txn: p.txn, _guard: p.guard, trace })
                })
            } else {
                None
            };
            {
                let mut ap = self.apply.lock();
                ap.queue.push(QEntry {
                    tid,
                    xact: m.xact,
                    ws: Arc::clone(&m.ws),
                    origin: m.origin,
                    running: local_job.is_some(),
                    blockers: 0,
                    trace: TxTrace::starting_at(delivered_at),
                });
                self.refresh_apply_gauges(&st, &ap);
            }
            st.outcomes.record(m.xact, Outcome::Committed);
            self.refresh_gauges(&st);
            drop(st);
            if let Some((responder, job)) = local_job {
                let _ = responder.send(Ok(job));
            }
            self.cond.notify_all();
            self.apply_cond.notify_all();
        } else {
            st.outcomes.record(m.xact, Outcome::Aborted);
            Metrics::inc(&self.metrics.ws_discarded);
            self.journal.record(EventKind::ValidationVerdict {
                xact: m.xact,
                tid: None,
                passed: false,
            });
            self.auditor.on_verdict(self.id, m.xact, m.cert, None, &m.ws);
            self.refresh_gauges(&st);
            if m.origin == self.id {
                if let Some(p) = st.pending_local.remove(&m.xact) {
                    // Abort verdict is journaled under the lock (ordered with
                    // the ValidationVerdict above); rollback runs outside.
                    self.journal.record(EventKind::Abort { xact: m.xact });
                    drop(st);
                    p.txn.abort(AbortReason::ValidationFailure);
                    Metrics::inc(&self.metrics.aborts_validation);
                    let _ = p.responder.send(Err(DbError::Aborted(AbortReason::ValidationFailure)));
                    self.cond.notify_all();
                    return;
                }
            }
            self.cond.notify_all();
        }
    }

    /// When idle and the ws_list is growing, advertise our progress so every
    /// replica can prune (we promise future certs ≥ lastvalidated).
    fn maybe_send_progress(&self) {
        const PRUNE_THRESHOLD: usize = 64;
        let (grown, lastvalidated) = {
            let st = self.state.lock();
            (st.wslist.len() > PRUNE_THRESHOLD, st.wslist.last_tid())
        };
        if !grown {
            return;
        }
        // The advert cursor lives behind the telemetry lock: progress
        // adverts are a pruning hint, not certification state.
        let mut tl = self.telem.lock();
        if lastvalidated <= tl.last_progress_sent {
            return;
        }
        // sirep-lint: allow(multicast-under-lock): progress adverts are monotone promises, not certifications — a stale lastvalidated only delays pruning, it cannot reorder certs
        if self.gcs.multicast_fifo(ReplMsg::Progress { from: self.id, lastvalidated }).is_ok() {
            tl.last_progress_sent = lastvalidated;
        }
    }

    // ---------------------------------------------------------------------
    // Applier threads (step III)
    // ---------------------------------------------------------------------

    pub(crate) fn run_applier(self: Arc<Self>) {
        loop {
            // Claim every currently-eligible entry in one sweep, bounded by
            // APPLIER_BATCH_MAX (group commit). Each ready entry has zero
            // blockers against *all* queued predecessors — including the
            // others claimed here — so the batch is mutually
            // non-conflicting and can safely be applied inside a single
            // engine transaction. pop_ready pops the smallest ready tid
            // first, so the batch is ascending by construction.
            let mut batch = {
                let mut ap = self.apply.lock();
                loop {
                    if !self.is_alive() {
                        return;
                    }
                    let mut claimed = Vec::new();
                    while claimed.len() < APPLIER_BATCH_MAX {
                        let Some(e) = ap.queue.pop_ready() else { break };
                        let mut trace = e.trace;
                        trace.mark(Stage::ValidateQueue);
                        claimed.push(BatchItem {
                            tid: e.tid,
                            xact: e.xact,
                            ws: Arc::clone(&e.ws),
                            trace,
                        });
                    }
                    if !claimed.is_empty() {
                        break claimed;
                    }
                    self.apply_cond.wait_for(&mut ap, WAIT_TICK);
                }
            };
            // Claimed entries are still in the queue (until finalize_batch
            // removes them), so a thread parked here models "validated but
            // not yet locally visible" for the P7 replay test.
            self.pause_point(PausePoint::ApplierBeforeCommit);
            if self.crash_point(CrashPoint::AfterDeliverBeforeCommit) {
                // The writesets were delivered and validated here but die
                // uncommitted with the replica; uniform delivery means
                // every survivor still commits them.
                return;
            }
            // Appliers only ever see remote writesets (local entries are
            // committed by their session thread and enter the queue already
            // marked running). A nominally-local entry without a session —
            // transferred during recovery from before our crash — is applied
            // like any remote writeset.
            for item in &batch {
                // sirep-lint: allow(journal-gauge-under-lock): apply runs outside the state lock by design (the paper's adjustment 2 — appliers work in parallel); Apply* events are ordered per-tid by the queue's running flag, not by the lock
                self.journal.record(EventKind::ApplyStart { xact: item.xact, tid: item.tid });
            }
            let Some(handle) = self.apply_batch(&batch) else { return }; // database crashed
            for item in &mut batch {
                item.trace.mark(Stage::Apply);
                // sirep-lint: allow(journal-gauge-under-lock): same as ApplyStart above — apply is deliberately lock-free; finalize_batch re-enters the lock for the commit records
                self.journal.record(EventKind::ApplyDone { xact: item.xact, tid: item.tid });
            }
            self.finalize_batch(batch, handle);
        }
    }

    /// Apply a batch of mutually non-conflicting remote writesets inside
    /// ONE engine transaction — the group-commit half of adjustment 2's
    /// concurrency: n writesets cost n applications but a single commit
    /// log force. Retries the whole batch on database deadlocks (§4.2:
    /// "the middleware has to reapply the writeset until the remote
    /// transaction succeeds"); dropping the handle rolls back every
    /// already-applied member, so a retry starts clean.
    fn apply_batch(&self, batch: &[BatchItem]) -> Option<TxnHandle> {
        'retry: loop {
            if !self.is_alive() {
                return None;
            }
            let Ok(txn) = self.db.begin() else { return None };
            for item in batch {
                match txn.apply_writeset(&item.ws) {
                    Ok(()) => {}
                    Err(DbError::Aborted(AbortReason::Deadlock))
                    | Err(DbError::Aborted(AbortReason::SerializationFailure)) => {
                        Metrics::inc(&self.metrics.ws_apply_retries);
                        continue 'retry;
                    }
                    Err(DbError::Aborted(AbortReason::Shutdown)) => return None,
                    Err(e) => {
                        // Schema divergence would be a bug: surface loudly.
                        // sirep-lint: allow(no-unwrap-on-protocol-paths): a remote writeset that fails for a non-transient reason means the replicas' schemas diverged — continuing would silently fork the copies, so crash instead
                        panic!("writeset application failed irrecoverably: {e}");
                    }
                }
            }
            return Some(txn);
        }
    }

    /// Group-commit a batch of applied remote entries: one log force, one
    /// engine commit, then per-entry protocol bookkeeping in ascending tid
    /// order under the state lock.
    ///
    /// The hole rule gates on the batch's *smallest* tid only. Gating on
    /// every member jointly can deadlock two appliers — batch {t1, t5}
    /// waiting on t3 while the applier holding {t3} waits on t1 — whereas
    /// gating on the smallest preserves liveness by the same induction as
    /// unbatched commits: the smallest pending tid above the watermark is
    /// always allowed through. Later batch members may open holes, exactly
    /// as an unthrottled single commit may; local begins still gate on
    /// `holes_exist`, so 1-copy-SI is intact.
    fn finalize_batch(&self, mut batch: Vec<BatchItem>, txn: TxnHandle) {
        let Some(gate) = batch.first().map(|i| i.tid) else { return };
        // One flush charge for the whole batch — the group-commit saving.
        self.db.cost_model().commit_batch(batch.len());
        let mut st = self.state.lock();
        if self.mode == ReplicationMode::SrcaRep {
            let mut counted = false;
            while !st.holes.may_commit(gate, false) && self.is_alive() {
                if !counted {
                    Metrics::inc(&self.metrics.commits_delayed_for_holes);
                    counted = true;
                }
                self.cond.wait_for(&mut st, WAIT_TICK);
            }
        }
        if !self.is_alive() {
            drop(st);
            txn.abort(AbortReason::Shutdown);
            return;
        }
        // Remote begins are recorded at commit time under the state lock
        // (see RecordingNotes); batch members don't conflict with each
        // other, so one begin spanning a sibling's commit is harmless.
        for item in &batch {
            self.recorder.on_begin(item.xact);
        }
        let res = txn.commit_quiet();
        debug_assert!(res.is_ok(), "validated batch failed to commit: {res:?}");
        for item in &mut batch {
            self.recorder.on_commit(item.xact);
            // The commit stage includes the hole-rule wait above — that
            // delay is part of perceived commit latency.
            item.trace.mark(Stage::Commit);
            let had_holes = st.holes.holes_exist();
            st.holes.on_committed(item.tid);
            let has_holes = st.holes.holes_exist();
            if !had_holes && has_holes {
                self.journal.record(EventKind::HoleOpened { tid: item.tid });
            } else if had_holes && !has_holes {
                self.journal.record(EventKind::HoleClosed { tid: item.tid });
            }
            self.journal.record(EventKind::Commit { xact: item.xact, tid: item.tid });
            self.auditor.on_commit(self.id, item.xact, item.tid);
        }
        {
            // O(|ws| + released edges) per entry: unblocks successors,
            // which the apply_cond notify below wakes the appliers for.
            let mut ap = self.apply.lock();
            for item in &batch {
                ap.queue.remove(item.tid);
            }
            self.refresh_apply_gauges(&st, &ap);
        }
        self.refresh_gauges(&st);
        drop(st);
        for item in &batch {
            // Remote timelines start at delivery, not begin: no total.
            self.stages.absorb(&item.trace);
        }
        self.cond.notify_all();
        self.apply_cond.notify_all();
    }

    /// Commit a validated *local* transaction on its session thread
    /// (adjustment 2): log force outside the lock, then the database commit
    /// and bookkeeping atomically under it. A local transaction sits in the
    /// hole tracker's running set, so the hole rule never throttles it
    /// (`may_commit(tid, is_local=true)` is identically true) — no wait
    /// loop here, unlike [`ReplicaNode::finalize_batch`].
    fn finalize(
        &self,
        tid: GlobalTid,
        xact: XactId,
        ws: &WriteSet,
        txn: TxnHandle,
        mut trace: TxTrace,
    ) {
        self.db.cost_model().commit();
        let mut st = self.state.lock();
        if !self.is_alive() {
            drop(st);
            txn.abort(AbortReason::Shutdown);
            return;
        }
        self.recorder.on_local_committed(xact, &txn, ws);
        let res = txn.commit_quiet();
        debug_assert!(res.is_ok(), "validated transaction failed to commit: {res:?}");
        self.recorder.on_commit(xact);
        trace.mark(Stage::Commit);
        let had_holes = st.holes.holes_exist();
        st.holes.on_committed(tid);
        let has_holes = st.holes.holes_exist();
        if !had_holes && has_holes {
            self.journal.record(EventKind::HoleOpened { tid });
        } else if had_holes && !has_holes {
            self.journal.record(EventKind::HoleClosed { tid });
        }
        self.journal.record(EventKind::Commit { xact, tid });
        self.auditor.on_commit(self.id, xact, tid);
        {
            // O(|ws| + released edges): unblocks successors, which the
            // apply_cond notify below wakes the appliers for.
            let mut ap = self.apply.lock();
            ap.queue.remove(tid);
            self.refresh_apply_gauges(&st, &ap);
        }
        self.refresh_gauges(&st);
        drop(st);
        // Remote timelines start at delivery, not begin; local ones span
        // the whole round trip.
        trace.mark(Stage::Total);
        self.stages.absorb(&trace);
        self.cond.notify_all();
        self.apply_cond.notify_all();
    }

    // ---------------------------------------------------------------------
    // Crash / shutdown
    // ---------------------------------------------------------------------

    /// Bring this replica down: fail all client operations, kill active
    /// database transactions, answer pending commits with a crash error.
    /// The caller must also crash the GCS member so survivors get a view
    /// change.
    pub(crate) fn mark_crashed(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.db.crash();
        let pendings: Vec<PendingLocal> = {
            let mut st = self.state.lock();
            st.pending_local.drain().map(|(_, p)| p).collect()
        };
        for p in pendings {
            p.txn.abort(AbortReason::ReplicaCrashed);
            let _ = p.responder.send(Err(DbError::Aborted(AbortReason::ReplicaCrashed)));
        }
        self.cond.notify_all();
        self.apply_cond.notify_all();
        self.telem_cond.notify_all();
    }
}

/// Remote-begin recording note: the begin of a remote transaction at this
/// replica is recorded in [`ReplicaNode::finalize`] just before its commit,
/// while the state lock is held. Its exact position does not affect
/// 1-copy-SI (remote readsets are empty — Def. 3), but it must not span a
/// conflicting commit, and by recording it at commit time under the lock it
/// never does.
#[allow(dead_code)]
struct RecordingNotes;
