//! Offline auditing of *scraped* protocol journals.
//!
//! The online [`crate::audit::Auditor`] sits inside one process and sees
//! every verdict as it happens. On the multinode TCP tier each node process
//! has its own auditor, which can only check that process's slice of the
//! cluster. The `sirep-cluster report`/`audit` roles therefore scrape every
//! node's journal export and re-run the checks that *can* be evaluated
//! post-hoc over the union:
//!
//! - **per-journal** — validation-pass tids strictly increasing, commit
//!   events agreeing with the recorded verdict, prune watermarks monotone,
//!   hole open/close alternation (adjustments 1–3 of the paper's §4;
//!   hole events mark transitions of the hole *set* between empty and
//!   nonempty, so two opens without a close between them — or a close
//!   from the empty state — mean the tracker lost count);
//! - **cross-journal** — every replica that validated a transaction reached
//!   the same verdict and assigned the same global commit id (the heart of
//!   1-copy-SI's "same decision everywhere").
//!
//! What it **cannot** check: first-committer-wins itself. Journals record
//! verdicts, not writesets, so the offline pass can confirm the replicas
//! *agreed*, not that the agreement was the one SI mandates. That remains
//! the online auditor's job (and the sim tier's history checker). See
//! DESIGN.md §15.
//!
//! Journals are bounded rings, so a scraped journal may be missing its
//! oldest events. A journal whose minimum sequence number is nonzero has
//! been truncated; the hole-alternation check then takes its initial
//! state from the first hole event it sees instead of assuming "no holes"
//! (the transition that established the state may have been dropped).
//! Two entries may carry the same [`ReplicaId`] — a node that was killed
//! and restarted exports a fresh journal — and the per-journal checks
//! treat each entry independently.

use crate::audit::{AuditKind, AuditViolation};
use sirep_common::{Event, EventKind, GlobalTid, ReplicaId, XactId};
use std::collections::BTreeMap;

/// Stop after this many violations — one real bug tends to cascade.
pub const OFFLINE_VIOLATION_CAP: usize = 64;

/// Re-run the post-hoc 1-copy-SI checks over scraped journals (one entry
/// per scraped node process; duplicate replica ids are fine and mean the
/// node restarted). Returns all violations found, capped at
/// [`OFFLINE_VIOLATION_CAP`].
pub fn audit_scraped_journals(journals: &[(ReplicaId, Vec<Event>)]) -> Vec<AuditViolation> {
    let mut out = Vec::new();
    // Transaction → (verdict, first replica that recorded it). `None` means
    // validation-abort; verdicts must agree across every replica.
    let mut verdicts: BTreeMap<XactId, (Option<GlobalTid>, ReplicaId)> = BTreeMap::new();
    for (replica, events) in journals {
        audit_one_journal(*replica, events, &mut verdicts, &mut out);
        if out.len() >= OFFLINE_VIOLATION_CAP {
            break;
        }
    }
    out.truncate(OFFLINE_VIOLATION_CAP);
    out
}

fn audit_one_journal(
    replica: ReplicaId,
    events: &[Event],
    verdicts: &mut BTreeMap<XactId, (Option<GlobalTid>, ReplicaId)>,
    out: &mut Vec<AuditViolation>,
) {
    // Ring truncation: the journal drops oldest-first, and `seq` is dense
    // from 0, so a nonzero minimum means the prefix is gone and the hole
    // state at the journal's start is unknown.
    let truncated = events.first().is_some_and(|e| e.seq > 0);
    let mut push = |kind: AuditKind, detail: String| {
        if out.len() < OFFLINE_VIOLATION_CAP {
            out.push(AuditViolation { kind, replica, detail });
        }
    };
    let mut last_passed: Option<GlobalTid> = None;
    let mut last_watermark: Option<GlobalTid> = None;
    // Hole events mark transitions of the hole set (empty <-> nonempty);
    // the tid is the commit that *caused* the transition, so an open and
    // its matching close carry different tids. `None` = unknown (truncated
    // prefix): adopt whatever the first hole event implies.
    let mut holes_open: Option<bool> = if truncated { None } else { Some(false) };
    let mut last_hole_tid: Option<GlobalTid> = None;
    // This journal's own verdicts, for the commit-vs-verdict check.
    let mut local_verdicts: BTreeMap<XactId, Option<GlobalTid>> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::ValidationVerdict { xact, tid, passed } => {
                if passed != tid.is_some() {
                    push(
                        AuditKind::CommitOrderDivergence,
                        format!(
                            "verdict for {xact:?} is internally inconsistent: passed={passed} tid={tid:?}"
                        ),
                    );
                }
                if let Some(t) = tid {
                    if let Some(prev) = last_passed {
                        if t.raw() <= prev.raw() {
                            push(
                                AuditKind::CommitOrderDivergence,
                                format!(
                                    "validation-pass tids not strictly increasing: {} after {}",
                                    t.raw(),
                                    prev.raw()
                                ),
                            );
                        }
                    }
                    last_passed = Some(t);
                }
                local_verdicts.insert(xact, tid);
                match verdicts.get(&xact) {
                    None => {
                        verdicts.insert(xact, (tid, replica));
                    }
                    Some(&(other, who)) if other != tid => {
                        push(
                            AuditKind::CommitOrderDivergence,
                            format!(
                                "verdict for {xact:?} diverges: {tid:?} here vs {other:?} at replica {}",
                                who.raw()
                            ),
                        );
                    }
                    Some(_) => {}
                }
            }
            EventKind::Commit { xact, tid } => {
                if let Some(&verdict) = local_verdicts.get(&xact) {
                    if verdict != Some(tid) {
                        push(
                            AuditKind::CommitOrderDivergence,
                            format!(
                                "commit of {xact:?} at tid {} contradicts its verdict {verdict:?}",
                                tid.raw()
                            ),
                        );
                    }
                }
            }
            EventKind::WsListPruned { watermark, .. } => {
                if let Some(prev) = last_watermark {
                    if watermark.raw() < prev.raw() {
                        push(
                            AuditKind::PruneWatermarkViolation,
                            format!(
                                "prune watermark moved backwards: {} after {}",
                                watermark.raw(),
                                prev.raw()
                            ),
                        );
                    }
                }
                last_watermark = Some(watermark);
            }
            EventKind::HoleOpened { tid } => {
                if holes_open == Some(true) {
                    push(
                        AuditKind::HoleSyncViolation,
                        format!(
                            "holes opened by commit {} while already open: tracker lost a close",
                            tid.raw()
                        ),
                    );
                }
                holes_open = Some(true);
                last_hole_tid = Some(tid);
            }
            EventKind::HoleClosed { tid } => {
                if holes_open == Some(false) {
                    push(
                        AuditKind::HoleSyncViolation,
                        format!("holes closed by commit {} without a recorded open", tid.raw()),
                    );
                }
                holes_open = Some(false);
            }
            _ => {}
        }
    }
    // A quiesced node must end with its hole set empty; `audit`/`report`
    // scrape after the deployment's convergence check, so a dangling open
    // means the tracker (or adjustment 3) wedged.
    if holes_open == Some(true) {
        let tid = last_hole_tid.map_or(0, GlobalTid::raw);
        push(
            AuditKind::HoleSyncViolation,
            format!("holes still open at end of journal (opened by commit {tid})"),
        );
    }
}

/// Shift every event's timestamp by a signed nanosecond offset (saturating
/// at both ends). The `report` role measures each node's clock offset
/// against the sequencer via the time-probe handshake and shifts its
/// journal onto the sequencer's timeline before rendering the merged
/// Perfetto trace — without this, spans from different processes interleave
/// nonsensically.
pub fn shift_events(events: &mut [Event], offset_ns: i64) {
    for e in events.iter_mut() {
        e.at_ns = if offset_ns >= 0 {
            e.at_ns.saturating_add(offset_ns as u64)
        } else {
            e.at_ns.saturating_sub(offset_ns.unsigned_abs())
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(k: u64) -> ReplicaId {
        ReplicaId::new(k)
    }

    fn ev(seq: u64, replica: ReplicaId, kind: EventKind) -> Event {
        Event { seq, at_ns: seq * 1000, replica, kind }
    }

    fn x(origin: u64, n: u64) -> XactId {
        XactId::new(r(origin), n)
    }

    fn t(n: u64) -> GlobalTid {
        GlobalTid::new(n)
    }

    /// A clean two-replica history: same verdicts, increasing tids, a
    /// properly paired hole, monotone pruning.
    fn clean_journals() -> Vec<(ReplicaId, Vec<Event>)> {
        let mk = |rep: u64| {
            let rid = r(rep);
            vec![
                ev(
                    0,
                    rid,
                    EventKind::ValidationVerdict { xact: x(0, 1), tid: Some(t(1)), passed: true },
                ),
                ev(1, rid, EventKind::Commit { xact: x(0, 1), tid: t(1) }),
                ev(
                    2,
                    rid,
                    EventKind::ValidationVerdict { xact: x(1, 1), tid: Some(t(2)), passed: true },
                ),
                ev(3, rid, EventKind::HoleOpened { tid: t(2) }),
                ev(4, rid, EventKind::HoleClosed { tid: t(2) }),
                ev(5, rid, EventKind::Commit { xact: x(1, 1), tid: t(2) }),
                ev(
                    6,
                    rid,
                    EventKind::ValidationVerdict { xact: x(0, 2), tid: None, passed: false },
                ),
                ev(7, rid, EventKind::WsListPruned { watermark: t(1), removed: 1 }),
                ev(8, rid, EventKind::WsListPruned { watermark: t(2), removed: 1 }),
            ]
        };
        vec![(r(0), mk(0)), (r(1), mk(1))]
    }

    #[test]
    fn clean_history_has_no_violations() {
        assert_eq!(audit_scraped_journals(&clean_journals()), Vec::new());
    }

    #[test]
    fn diverging_verdicts_are_flagged() {
        let mut js = clean_journals();
        // Replica 1 disagrees about x(0,1): says it aborted.
        js[1].1[0] =
            ev(0, r(1), EventKind::ValidationVerdict { xact: x(0, 1), tid: None, passed: false });
        // Its commit then also contradicts its own (new) verdict.
        let v = audit_scraped_journals(&js);
        assert!(v
            .iter()
            .any(|v| v.kind == AuditKind::CommitOrderDivergence && v.detail.contains("diverges")));
        assert!(v.iter().all(|v| v.replica == r(1)));
    }

    #[test]
    fn non_monotone_pass_tids_are_flagged() {
        let rid = r(0);
        let js = vec![(
            rid,
            vec![
                ev(
                    0,
                    rid,
                    EventKind::ValidationVerdict { xact: x(0, 1), tid: Some(t(5)), passed: true },
                ),
                ev(
                    1,
                    rid,
                    EventKind::ValidationVerdict { xact: x(0, 2), tid: Some(t(5)), passed: true },
                ),
            ],
        )];
        let v = audit_scraped_journals(&js);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, AuditKind::CommitOrderDivergence);
        assert!(v[0].detail.contains("strictly increasing"), "{}", v[0].detail);
    }

    #[test]
    fn commit_contradicting_verdict_is_flagged() {
        let rid = r(2);
        let js = vec![(
            rid,
            vec![
                ev(
                    0,
                    rid,
                    EventKind::ValidationVerdict { xact: x(2, 1), tid: Some(t(3)), passed: true },
                ),
                ev(1, rid, EventKind::Commit { xact: x(2, 1), tid: t(4) }),
            ],
        )];
        let v = audit_scraped_journals(&js);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("contradicts"), "{}", v[0].detail);
    }

    #[test]
    fn backwards_watermark_is_flagged() {
        let rid = r(0);
        let js = vec![(
            rid,
            vec![
                ev(0, rid, EventKind::WsListPruned { watermark: t(9), removed: 2 }),
                ev(1, rid, EventKind::WsListPruned { watermark: t(4), removed: 0 }),
            ],
        )];
        let v = audit_scraped_journals(&js);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, AuditKind::PruneWatermarkViolation);
    }

    #[test]
    fn unmatched_hole_close_flagged_only_when_not_truncated() {
        let rid = r(0);
        let fresh = vec![(rid, vec![ev(0, rid, EventKind::HoleClosed { tid: t(7) })])];
        let v = audit_scraped_journals(&fresh);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, AuditKind::HoleSyncViolation);
        // Same journal but ring-truncated (min seq > 0): the open may have
        // been dropped, so the close is forgiven.
        let truncated = vec![(rid, vec![ev(10, rid, EventKind::HoleClosed { tid: t(7) })])];
        assert_eq!(audit_scraped_journals(&truncated), Vec::new());
    }

    #[test]
    fn open_and_close_with_different_tids_is_clean() {
        // The real recorder tags each transition with the commit that
        // caused it: the commit that jumped ahead opens, the commit that
        // drained the last hole closes. The tids differ by design.
        let rid = r(0);
        let js = vec![(
            rid,
            vec![
                ev(0, rid, EventKind::HoleOpened { tid: t(213) }),
                ev(1, rid, EventKind::HoleClosed { tid: t(165) }),
            ],
        )];
        assert_eq!(audit_scraped_journals(&js), Vec::new());
    }

    #[test]
    fn double_open_without_close_is_flagged() {
        let rid = r(0);
        let js = vec![(
            rid,
            vec![
                ev(0, rid, EventKind::HoleOpened { tid: t(3) }),
                ev(1, rid, EventKind::HoleOpened { tid: t(4) }),
                ev(2, rid, EventKind::HoleClosed { tid: t(5) }),
            ],
        )];
        let v = audit_scraped_journals(&js);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, AuditKind::HoleSyncViolation);
        assert!(v[0].detail.contains("already open"), "{}", v[0].detail);
    }

    #[test]
    fn hole_left_open_is_flagged() {
        let rid = r(1);
        let js = vec![(rid, vec![ev(0, rid, EventKind::HoleOpened { tid: t(3) })])];
        let v = audit_scraped_journals(&js);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, AuditKind::HoleSyncViolation);
        assert!(v[0].detail.contains("still open"), "{}", v[0].detail);
    }

    #[test]
    fn duplicate_replica_entries_are_independent() {
        // A restarted node exports a fresh journal under the same replica
        // id; per-journal state (watermarks, holes) must not leak across.
        let rid = r(0);
        let js = vec![
            (rid, vec![ev(0, rid, EventKind::WsListPruned { watermark: t(9), removed: 2 })]),
            (rid, vec![ev(0, rid, EventKind::WsListPruned { watermark: t(1), removed: 0 })]),
        ];
        assert_eq!(audit_scraped_journals(&js), Vec::new());
    }

    #[test]
    fn violation_count_is_capped() {
        let rid = r(0);
        let events: Vec<Event> = (0..(OFFLINE_VIOLATION_CAP as u64 + 40))
            .map(|i| ev(i, rid, EventKind::HoleClosed { tid: t(i) }))
            .collect();
        let v = audit_scraped_journals(&[(rid, events)]);
        assert_eq!(v.len(), OFFLINE_VIOLATION_CAP);
    }

    #[test]
    fn shift_events_is_signed_and_saturating() {
        let rid = r(0);
        let mut events = vec![
            ev(0, rid, EventKind::ViewChange { members: 1 }),
            ev(5, rid, EventKind::ViewChange { members: 2 }),
        ];
        shift_events(&mut events, 100);
        assert_eq!(events[0].at_ns, 100);
        assert_eq!(events[1].at_ns, 5100);
        shift_events(&mut events, -200);
        assert_eq!(events[0].at_ns, 0, "saturates at zero");
        assert_eq!(events[1].at_ns, 4900);
        shift_events(&mut events, i64::MAX);
        shift_events(&mut events, i64::MAX);
        assert_eq!(events[1].at_ns, u64::MAX, "saturates at the top");
    }
}
