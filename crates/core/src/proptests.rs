//! Property-based tests for the protocol data structures.

use crate::holes::HoleTracker;
use crate::model::{check_one_copy_si, is_si_schedule, Op, ReplicatedExecution, Schedule, TxSpec};
use crate::msg::XactId;
use crate::validation::WsList;
use proptest::prelude::*;
use sirep_common::{GlobalTid, ReplicaId};
use sirep_storage::{Key, WriteSet, WsOp};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// HoleTracker vs a naive model
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct NaiveHoles {
    pending: Vec<u64>,
    committed: Vec<u64>,
}

impl NaiveHoles {
    fn holes_exist(&self) -> bool {
        let max_c = self.committed.iter().copied().max().unwrap_or(0);
        self.pending.iter().any(|&t| t < max_c)
    }

    fn creates_new_hole(&self, tid: u64) -> bool {
        let max_c = self.committed.iter().copied().max().unwrap_or(0);
        self.pending.iter().any(|&t| t > max_c && t < tid)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Drive the tracker with random validate-then-commit schedules and
    /// compare every observable against the brute-force model.
    #[test]
    fn hole_tracker_matches_naive_model(commit_order in Just(()).prop_perturb(|_, mut rng| {
        // Random permutation of 1..=n as the commit order.
        let n = (rng.random::<u64>() % 12) + 1;
        let mut v: Vec<u64> = (1..=n).collect();
        for i in (1..v.len()).rev() {
            let j = (rng.random::<u64>() as usize) % (i + 1);
            v.swap(i, j);
        }
        v
    })) {
        let n = commit_order.len() as u64;
        let mut tracker = HoleTracker::new();
        let mut naive = NaiveHoles::default();
        for t in 1..=n {
            tracker.on_validated(GlobalTid::new(t));
            naive.pending.push(t);
        }
        for &t in &commit_order {
            prop_assert_eq!(tracker.holes_exist(), naive.holes_exist(), "before committing {}", t);
            prop_assert_eq!(
                tracker.creates_new_hole(GlobalTid::new(t)),
                naive.creates_new_hole(t),
                "creates_new_hole({})", t
            );
            // The liveness invariant: the smallest pending tid never
            // creates a new hole.
            let min_pending = *naive.pending.iter().min().unwrap();
            prop_assert!(!tracker.creates_new_hole(GlobalTid::new(min_pending)));
            tracker.on_committed(GlobalTid::new(t));
            naive.pending.retain(|&x| x != t);
            naive.committed.push(t);
        }
        prop_assert!(!tracker.holes_exist(), "all committed → no holes");
    }
}

// ---------------------------------------------------------------------------
// WsList vs a naive certification model
// ---------------------------------------------------------------------------

fn ws_of(keys: &[i64]) -> Arc<WriteSet> {
    let mut w = WriteSet::new();
    for &k in keys {
        w.push(Arc::from("t"), Key::single(k), WsOp::Delete);
    }
    Arc::new(w)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// `WsList::passes` equals the definition: no conflicting entry with
    /// tid > cert.
    #[test]
    fn validation_matches_definition(
        entries in prop::collection::vec(prop::collection::vec(0i64..15, 1..4), 1..20),
        candidate in prop::collection::vec(0i64..15, 1..4),
        cert_lag in 0usize..20,
    ) {
        let mut list = WsList::new();
        let mut tids = Vec::new();
        for (i, keys) in entries.iter().enumerate() {
            let tid = list.append(
                XactId { origin: ReplicaId::new(0), seq: i as u64 },
                ws_of(keys),
            );
            tids.push((tid, keys.clone()));
        }
        let cert = GlobalTid::new(
            (entries.len() as u64).saturating_sub(cert_lag as u64),
        );
        let cand = ws_of(&candidate);
        let expected = !tids.iter().any(|(tid, keys)| {
            *tid > cert && keys.iter().any(|k| candidate.contains(k))
        });
        prop_assert_eq!(list.passes(cert, &cand), expected);
    }
}

// ---------------------------------------------------------------------------
// 1-copy-SI checker: metamorphic properties
// ---------------------------------------------------------------------------

// Serial executions — every transaction runs and commits alone, applied in
// the same order at every replica — are always 1-copy-SI.
proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn serial_executions_always_pass(
        specs in prop::collection::vec(
            (
                prop::collection::btree_set(0u8..6, 0..3),
                prop::collection::btree_set(0u8..6, 0..3),
                0usize..3,
            ),
            1..8,
        )
    ) {
        let mut txs: BTreeMap<u32, TxSpec> = BTreeMap::new();
        let mut locality = BTreeMap::new();
        for (i, (reads, writes, local)) in specs.iter().enumerate() {
            let id = i as u32;
            txs.insert(
                id,
                TxSpec::new(
                    reads.iter().map(std::string::ToString::to_string),
                    writes.iter().map(std::string::ToString::to_string),
                ),
            );
            locality.insert(id, *local);
        }
        // Serial schedule at each replica: update txns everywhere,
        // read-only ones only at their local replica.
        let mut schedules: Vec<Schedule<u32>> = vec![Vec::new(); 3];
        for (id, spec) in &txs {
            for (k, sched) in schedules.iter_mut().enumerate() {
                let local = locality[id] == k;
                if spec.is_update() || local {
                    sched.push(Op::Begin(*id));
                    sched.push(Op::Commit(*id));
                }
            }
        }
        let exec = ReplicatedExecution { schedules, locality };
        let witness = check_one_copy_si(&txs, &exec);
        prop_assert!(witness.is_ok(), "serial execution rejected: {:?}", witness.err());
        // And the witness itself is a valid SI-schedule.
        prop_assert!(is_si_schedule(&txs, &witness.unwrap()).is_ok());
    }

    /// Renaming replicas (permuting which schedule is "replica 0") never
    /// changes the verdict.
    #[test]
    fn checker_is_replica_symmetric(
        writes_a in prop::collection::btree_set(0u8..4, 1..3),
        writes_b in prop::collection::btree_set(0u8..4, 1..3),
        flip in any::<bool>(),
    ) {
        let mut txs = BTreeMap::new();
        txs.insert(0u32, TxSpec::new([] as [String; 0], writes_a.iter().map(std::string::ToString::to_string)));
        txs.insert(1u32, TxSpec::new([] as [String; 0], writes_b.iter().map(std::string::ToString::to_string)));
        use Op::{Begin as B, Commit as C};
        let s0 = vec![B(0), C(0), B(1), C(1)];
        let s1 = if flip { vec![B(1), C(1), B(0), C(0)] } else { s0.clone() };
        let exec_fwd = ReplicatedExecution {
            schedules: vec![s0.clone(), s1.clone()],
            locality: [(0, 0), (1, 1)].into_iter().collect(),
        };
        let exec_rev = ReplicatedExecution {
            schedules: vec![s1, s0],
            locality: [(0, 1), (1, 0)].into_iter().collect(),
        };
        prop_assert_eq!(
            check_one_copy_si(&txs, &exec_fwd).is_ok(),
            check_one_copy_si(&txs, &exec_rev).is_ok()
        );
    }
}
