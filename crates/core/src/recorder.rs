//! Execution history recording for 1-copy-SI verification.
//!
//! When enabled, each replica records the begin/commit events of every
//! transaction it runs (local transactions at session start, remote ones at
//! writeset application) in the order they hit the database, and the local
//! replica records each committed transaction's read/writeset. A quiesced
//! cluster can then be checked against [`crate::model::check_one_copy_si`]
//! — this is how the test suite verifies the protocol end-to-end rather
//! than trusting the paper's Theorem 1.

use crate::model::{Op, TxSpec};
use crate::msg::XactId;
use parking_lot::Mutex;
use sirep_storage::{Key, TxnHandle, WriteSet};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-replica event log + local transaction specs.
#[derive(Debug, Default)]
pub struct Recorder {
    enabled: bool,
    events: Mutex<Vec<Op<XactId>>>,
    specs: Mutex<HashMap<XactId, TxSpec>>,
}

/// Canonical object name for a tuple: `table(key)`.
pub fn obj_name(table: &str, key: &Key) -> String {
    format!("{table}{key}")
}

impl Recorder {
    pub fn new(enabled: bool) -> Recorder {
        Recorder { enabled, ..Default::default() }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record a begin (local session start or remote apply start). Must be
    /// called while the caller holds whatever lock makes the begin atomic
    /// with respect to commits, so the recorded order is the real order.
    pub fn on_begin(&self, xact: XactId) {
        if self.enabled {
            self.events.lock().push(Op::Begin(xact));
        }
    }

    /// Record a commit at this replica (same locking caveat as
    /// [`Recorder::on_begin`]).
    pub fn on_commit(&self, xact: XactId) {
        if self.enabled {
            self.events.lock().push(Op::Commit(xact));
        }
    }

    /// Record the read/writeset of a transaction that committed locally.
    /// The readset comes from the engine's read tracking; the writeset from
    /// the extracted [`WriteSet`].
    pub fn on_local_committed(&self, xact: XactId, txn: &TxnHandle, ws: &WriteSet) {
        if !self.enabled {
            return;
        }
        let readset = txn.read_keys().iter().map(|(t, k)| obj_name(t, k)).collect();
        let writeset = ws.entries().iter().map(|e| obj_name(&e.table, &e.key)).collect();
        self.specs.lock().insert(xact, TxSpec { readset, writeset });
    }

    /// Drain the recorded events (cluster history collection).
    pub fn take_events(&self) -> Vec<Op<XactId>> {
        std::mem::take(&mut self.events.lock())
    }

    /// Drain the recorded local specs.
    pub fn take_specs(&self) -> HashMap<XactId, TxSpec> {
        std::mem::take(&mut self.specs.lock())
    }
}

/// Shared handle.
pub type SharedRecorder = Arc<Recorder>;

#[cfg(test)]
mod tests {
    use super::*;
    use sirep_common::ReplicaId;
    use sirep_storage::Value;

    fn x(seq: u64) -> XactId {
        XactId { origin: ReplicaId::new(0), seq }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::new(false);
        r.on_begin(x(1));
        r.on_commit(x(1));
        assert!(r.take_events().is_empty());
    }

    #[test]
    fn events_preserve_order() {
        let r = Recorder::new(true);
        r.on_begin(x(1));
        r.on_begin(x(2));
        r.on_commit(x(2));
        r.on_commit(x(1));
        let ev = r.take_events();
        assert_eq!(ev, vec![Op::Begin(x(1)), Op::Begin(x(2)), Op::Commit(x(2)), Op::Commit(x(1))]);
        assert!(r.take_events().is_empty(), "take drains");
    }

    #[test]
    fn obj_names_are_stable() {
        assert_eq!(obj_name("item", &Key::single(Value::Int(3))), "item(3)");
        assert_eq!(obj_name("ol", &Key::composite(vec![Value::Int(1), Value::Int(2)])), "ol(1, 2)");
    }
}
