//! Client sessions and the system-agnostic connection traits.
//!
//! A [`Session`] models one JDBC connection with `autocommit=off`: the
//! first statement after a commit/rollback implicitly begins a transaction
//! (there is no explicit BEGIN in JDBC — §5.3 of the paper), `commit()`
//! drives the replication protocol, and abort errors doom the transaction
//! until the next statement starts a fresh one.

use crate::msg::XactId;
use crate::node::{ActiveTxn, ReplicaNode};
use sirep_common::{AbortReason, DbError, Metrics, StageSnapshot};
use sirep_sql::{ExecResult, Statement};
use std::sync::Arc;

/// A workload transaction template. Statement-oriented systems replay the
/// statements; the table-level-locking baseline of [20] additionally needs
/// the pre-declared table list (its key usability restriction, which
/// SI-Rep exists to remove).
#[derive(Debug, Clone)]
pub struct TxnTemplate {
    pub statements: Vec<String>,
    /// Tables the transaction will touch — required by the [20] baseline.
    pub tables: Vec<String>,
    /// Purely read-only (lets primary-copy-ish systems route it).
    pub readonly: bool,
}

/// Anything a client can connect to: an SRCA-Rep replica, the centralized
/// SRCA middleware, the [20] baseline, or a plain single database.
pub trait System: Send + Sync {
    fn name(&self) -> &'static str;
    /// Open a client connection. Statement-oriented systems hand out
    /// sessions; the [20] baseline hands out request submitters.
    fn connect(&self) -> Result<Box<dyn Connection>, DbError>;
    /// Aggregated protocol metrics.
    fn metrics(&self) -> Metrics;
    /// Aggregated per-stage latency histograms. Systems without lifecycle
    /// tracing (the centralized baseline, the [20] protocol) report empty.
    fn stages(&self) -> StageSnapshot {
        StageSnapshot::default()
    }
}

/// One client connection.
pub trait Connection: Send {
    /// Execute one SQL statement inside the current transaction (starting
    /// one if needed).
    fn execute(&mut self, sql: &str) -> Result<ExecResult, DbError>;
    /// Commit the current transaction.
    fn commit(&mut self) -> Result<(), DbError>;
    /// Roll back the current transaction (no-op without one).
    fn rollback(&mut self);
    /// Run a whole transaction template: default implementation replays the
    /// statements and commits, which is what the statement-transparent
    /// systems do. The [20] baseline overrides this (it *needs* the
    /// template).
    fn run_template(&mut self, tmpl: &TxnTemplate) -> Result<(), DbError> {
        for sql in &tmpl.statements {
            self.execute(sql)?;
        }
        self.commit()
    }
    /// The current transaction's client-visible id, if one is active
    /// (used by the failover driver for in-doubt resolution).
    fn xact_id(&self) -> Option<XactId> {
        None
    }
}

/// A session pinned to one SRCA-Rep replica.
pub struct Session {
    node: Arc<ReplicaNode>,
    current: Option<ActiveTxn>,
    autocommit: bool,
    /// Declared read-only (JDBC's `Connection.setReadOnly`): writes are
    /// rejected at parse time and every commit takes the certification-free
    /// local fast path — no multicast, no sequencer round-trip.
    readonly: bool,
    /// Client-visible id of the most recently begun transaction, surviving
    /// its commit/abort. The failover driver needs it to resolve an
    /// autocommit statement whose implicit commit crashed mid-flight —
    /// by then `current` is already gone.
    last_xact: Option<XactId>,
}

impl Session {
    pub fn new(node: Arc<ReplicaNode>) -> Session {
        Session { node, current: None, autocommit: false, readonly: false, last_xact: None }
    }

    /// A fresh session with the autocommit mode preset. Unlike
    /// `set_autocommit` on an existing session this can never fail (there
    /// is no open transaction to commit), so failover paths that rebuild a
    /// session have no panic or error case to handle.
    pub fn with_autocommit(node: Arc<ReplicaNode>, on: bool) -> Session {
        Session { node, current: None, autocommit: on, readonly: false, last_xact: None }
    }

    pub fn node(&self) -> &Arc<ReplicaNode> {
        &self.node
    }

    /// JDBC's autocommit mode (the paper's footnote 4: "Otherwise each
    /// statement should be executed in its own transaction"). Off by
    /// default, as in all the experiments. Turning it on commits any open
    /// transaction first, like `Connection.setAutoCommit(true)` does.
    pub fn set_autocommit(&mut self, on: bool) -> Result<(), DbError> {
        if on && self.current.is_some() {
            self.commit()?;
        }
        self.autocommit = on;
        Ok(())
    }

    pub fn autocommit(&self) -> bool {
        self.autocommit
    }

    /// Declare this session read-only (or writable again), mirroring
    /// JDBC's `Connection.setReadOnly`: it cannot change mid-transaction.
    /// While declared, any write statement fails before the engine sees it,
    /// which guarantees the commit's writeset is empty and therefore takes
    /// the certification-free local snapshot path — no multicast, no
    /// certification, no sequencer round-trip.
    pub fn set_readonly(&mut self, on: bool) -> Result<(), DbError> {
        if self.current.is_some() {
            return Err(DbError::Unsupported(
                "cannot change read-only mode inside a transaction".into(),
            ));
        }
        self.readonly = on;
        Ok(())
    }

    pub fn is_readonly(&self) -> bool {
        self.readonly
    }

    /// Whether a transaction is currently open.
    pub fn in_transaction(&self) -> bool {
        self.current.is_some()
    }

    fn ensure_txn(&mut self) -> Result<&ActiveTxn, DbError> {
        // take/insert instead of an is_none + expect round-trip, so there
        // is no panic path here at all.
        let active = match self.current.take() {
            Some(a) => a,
            None => {
                let a = self.node.begin_local()?;
                self.last_xact = Some(a.xact);
                a
            }
        };
        Ok(self.current.insert(active))
    }

    /// Id of the most recently begun transaction on this session, even
    /// after it committed or aborted (in-doubt resolution needs it).
    pub fn last_xact_id(&self) -> Option<XactId> {
        self.last_xact
    }
}

impl Connection for Session {
    fn execute(&mut self, sql: &str) -> Result<ExecResult, DbError> {
        let stmt = sirep_sql::parse(sql)?;
        if matches!(stmt, Statement::CreateTable { .. }) {
            return Err(DbError::Unsupported(
                "DDL must run through Cluster::execute_ddl (identical schemas at all replicas)"
                    .into(),
            ));
        }
        if self.readonly && stmt.is_write() {
            // Rejected before the engine sees it, so the open transaction
            // stays clean (and its writeset provably empty).
            return Err(DbError::Unsupported(
                "session is declared read-only (set_readonly)".into(),
            ));
        }
        let db = self.node.database().clone();
        let active = self.ensure_txn()?;
        match sirep_sql::execute(&db, &active.txn, &stmt) {
            Ok(r) => {
                if self.autocommit {
                    self.commit()?;
                }
                Ok(r)
            }
            Err(e) => {
                if e.is_abort() || matches!(e, DbError::DuplicateKey(_)) {
                    // The engine doomed the transaction (PostgreSQL
                    // semantics); drop our handle.
                    if let DbError::Aborted(reason) = &e {
                        match reason {
                            AbortReason::SerializationFailure => {
                                Metrics::inc(&self.node.metrics.aborts_serialization);
                            }
                            AbortReason::Deadlock => {
                                Metrics::inc(&self.node.metrics.aborts_deadlock);
                            }
                            _ => {}
                        }
                    }
                    self.current = None;
                }
                Err(e)
            }
        }
    }

    fn commit(&mut self) -> Result<(), DbError> {
        match self.current.take() {
            None => Ok(()), // JDBC: commit with no work is a no-op
            Some(active) => self.node.commit_local(active),
        }
    }

    fn rollback(&mut self) {
        if let Some(active) = self.current.take() {
            active.txn.abort(AbortReason::UserRequested);
            Metrics::inc(&self.node.metrics.aborts_user);
        }
    }

    fn xact_id(&self) -> Option<XactId> {
        self.current.as_ref().map(|a| a.xact)
    }

    /// Templates that pre-declare themselves read-only run under the
    /// declared mode for their duration: writes fail fast and the commit is
    /// certification-free. The previous mode is restored afterwards.
    fn run_template(&mut self, tmpl: &TxnTemplate) -> Result<(), DbError> {
        if !tmpl.readonly || self.readonly {
            for sql in &tmpl.statements {
                self.execute(sql)?;
            }
            return self.commit();
        }
        self.set_readonly(true)?;
        let result = (|| {
            for sql in &tmpl.statements {
                self.execute(sql)?;
            }
            self.commit()
        })();
        self.readonly = false;
        result
    }
}

impl System for crate::cluster::Cluster {
    fn name(&self) -> &'static str {
        match self.config().mode {
            crate::node::ReplicationMode::SrcaRep => "SRCA-Rep",
            crate::node::ReplicationMode::SrcaOpt => "SRCA-Opt",
        }
    }

    fn connect(&self) -> Result<Box<dyn Connection>, DbError> {
        // Round-robin over alive replicas (simple load balancing; the
        // driver crate adds discovery + failover on top).
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let alive = self.alive();
        if alive.is_empty() {
            return Err(DbError::Aborted(AbortReason::ReplicaCrashed));
        }
        let pick = NEXT.fetch_add(1, Ordering::Relaxed) % alive.len();
        // sirep-lint: allow(no-unwrap-on-protocol-paths): pick < alive.len() by the modulo, and alive was checked nonempty above
        Ok(Box::new(Session::new(Arc::clone(&alive[pick]))))
    }

    fn metrics(&self) -> Metrics {
        Cluster::metrics(self).metrics
    }

    fn stages(&self) -> StageSnapshot {
        Cluster::metrics(self).stages
    }
}

use crate::cluster::Cluster;
