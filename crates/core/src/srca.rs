//! The centralized **SRCA** middleware of §3 (Fig. 1), with the §4
//! adjustments as selectable variants:
//!
//! - [`SrcaVariant::Serial`] — Fig. 1 exactly: validation against `ws_list`
//!   using `cert = lastcommitted_tid_k` captured under `dbmutex_k` at begin,
//!   and strictly serial processing of each replica's `tocommit_queue`.
//!   This variant is **vulnerable to the hidden deadlock** of §4.2 (a local
//!   transaction's commit queued behind a remote writeset that is blocked
//!   inside the database by another local transaction, which in turn waits
//!   on the first) — the integration test `hidden_deadlock.rs` constructs
//!   it.
//! - [`SrcaVariant::ConcurrentCommit`] — adjustments 1+2: validate local
//!   transactions against the queue only, commit/apply any entry with no
//!   conflicting predecessor. Deadlock-free but not 1-copy-SI.
//! - [`SrcaVariant::HoleSync`] — adjustments 1+2+3: additionally
//!   synchronize transaction starts with commit-order holes; restores
//!   1-copy-SI.
//!
//! The decentralized production system is [`crate::cluster::Cluster`]
//! (SRCA-Rep); this module exists because the paper develops and reasons
//! about the centralized algorithm first, and because the hidden-deadlock
//! phenomenon is easiest to exhibit here.

use crate::holes::HoleTracker;
use crate::msg::XactId;
use crate::session::{Connection, System};
use crate::validation::WsList;
use crossbeam::channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex};
use sirep_common::{AbortReason, DbError, GlobalTid, Metrics, ReplicaId};
use sirep_sql::ExecResult;
use sirep_storage::{CostModel, Database, TxnHandle, WriteSet};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Which stage of the paper's development to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcaVariant {
    /// Fig. 1: serial queues, `ws_list` validation (hidden-deadlock-prone).
    Serial,
    /// Adjustments 1+2 (no 1-copy-SI).
    ConcurrentCommit,
    /// Adjustments 1+2+3 (1-copy-SI restored).
    HoleSync,
}

#[derive(Debug, Clone)]
pub struct SrcaConfig {
    pub replicas: usize,
    pub variant: SrcaVariant,
    pub cost: CostModel,
    /// Applier threads per replica (ignored for `Serial`, which uses 1).
    pub appliers: usize,
}

impl SrcaConfig {
    pub fn test(replicas: usize, variant: SrcaVariant) -> SrcaConfig {
        SrcaConfig { replicas, variant, cost: CostModel::free(), appliers: 2 }
    }
}

const WAIT_TICK: Duration = Duration::from_millis(25);

struct QEntry {
    tid: GlobalTid,
    xact: XactId,
    ws: Arc<WriteSet>,
    /// This entry is local at this queue's replica.
    local: bool,
    running: bool,
}

struct PendingLocal {
    txn: TxnHandle,
    responder: Sender<Result<(), DbError>>,
    /// Keeps the transaction counted as "running local" at its replica
    /// until it no longer holds database locks (see HoleTracker's set B).
    _guard: Option<LocalGuard>,
}

/// RAII membership in a replica's running-locals set (B).
struct LocalGuard {
    shared: Arc<Shared>,
    replica: usize,
}

impl Drop for LocalGuard {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock();
        st.holes[self.replica].local_finished();
        drop(st);
        self.shared.cond.notify_all();
    }
}

struct SrcaState {
    wslist: WsList,
    queues: Vec<VecDeque<QEntry>>,
    holes: Vec<HoleTracker>,
    lastcommitted: Vec<GlobalTid>,
    pending: HashMap<XactId, PendingLocal>,
}

struct Shared {
    dbs: Vec<Database>,
    state: Mutex<SrcaState>,
    cond: Condvar,
    variant: SrcaVariant,
    metrics: Arc<Metrics>,
    shutdown: AtomicBool,
    next_xact: AtomicU64,
    next_conn: AtomicUsize,
}

/// The centralized SRCA middleware over `n` database replicas.
pub struct Srca {
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Srca {
    pub fn new(config: SrcaConfig) -> Srca {
        assert!(config.replicas > 0);
        let dbs: Vec<Database> =
            (0..config.replicas).map(|_| Database::new(config.cost.clone())).collect();
        let shared = Arc::new(Shared {
            dbs,
            state: Mutex::new(SrcaState {
                wslist: WsList::new(),
                queues: (0..config.replicas).map(|_| VecDeque::new()).collect(),
                holes: (0..config.replicas).map(|_| HoleTracker::new()).collect(),
                lastcommitted: vec![GlobalTid::ZERO; config.replicas],
                pending: HashMap::new(),
            }),
            cond: Condvar::new(),
            variant: config.variant,
            metrics: Arc::new(Metrics::new()),
            shutdown: AtomicBool::new(false),
            next_xact: AtomicU64::new(1),
            next_conn: AtomicUsize::new(0),
        });
        let appliers = if config.variant == SrcaVariant::Serial { 1 } else { config.appliers };
        let mut threads = Vec::new();
        for k in 0..config.replicas {
            for _ in 0..appliers {
                let sh = Arc::clone(&shared);
                threads.push(std::thread::spawn(move || applier_loop(sh, k)));
            }
        }
        Srca { shared, threads: Mutex::new(threads) }
    }

    pub fn database(&self, k: usize) -> &Database {
        &self.shared.dbs[k]
    }

    pub fn replicas(&self) -> usize {
        self.shared.dbs.len()
    }

    pub fn variant(&self) -> SrcaVariant {
        self.shared.variant
    }

    /// Install a schema at every replica.
    pub fn execute_ddl(&self, sql: &str) -> Result<(), DbError> {
        for db in &self.shared.dbs {
            let t = db.begin()?;
            sirep_sql::execute_sql(db, &t, sql)?;
            t.commit()?;
        }
        Ok(())
    }

    /// Deterministically populate every replica.
    pub fn load_with(&self, f: impl Fn(&Database) -> Result<(), DbError>) -> Result<(), DbError> {
        for db in &self.shared.dbs {
            db.cost_model().set_suspended(true);
            let r = f(db);
            db.cost_model().set_suspended(false);
            r?;
        }
        Ok(())
    }

    /// Open a session pinned to replica `k` (transactions of one client
    /// stay on one replica so clients read their own writes — the paper's
    /// assignment rule).
    pub fn session(&self, k: usize) -> SrcaConn {
        SrcaConn { shared: Arc::clone(&self.shared), replica: k, current: None }
    }

    /// Total queued writesets across replicas (stall diagnosis).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().queues.iter().map(std::collections::VecDeque::len).sum()
    }

    /// Wait for all queues to drain; returns false on timeout — which is
    /// how the hidden-deadlock test detects the stall.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            {
                let st = self.shared.state.lock();
                if st.queues.iter().all(std::collections::VecDeque::is_empty)
                    && st.pending.is_empty()
                {
                    return true;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for db in &self.shared.dbs {
            db.crash();
        }
        let pendings: Vec<PendingLocal> = {
            let mut st = self.shared.state.lock();
            st.pending.drain().map(|(_, p)| p).collect()
        };
        for p in pendings {
            p.txn.abort(AbortReason::Shutdown);
            let _ = p.responder.send(Err(DbError::Aborted(AbortReason::Shutdown)));
        }
        self.shared.cond.notify_all();
        // Hoisted so the threads guard drops before the joins (a joined
        // thread must be able to take the lock while shutting down).
        let handles = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Srca {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl System for Srca {
    fn name(&self) -> &'static str {
        match self.shared.variant {
            SrcaVariant::Serial => "SRCA (serial)",
            SrcaVariant::ConcurrentCommit => "SRCA (concurrent commit)",
            SrcaVariant::HoleSync => "SRCA (hole sync)",
        }
    }

    fn connect(&self) -> Result<Box<dyn Connection>, DbError> {
        let k = self.shared.next_conn.fetch_add(1, Ordering::Relaxed) % self.shared.dbs.len();
        Ok(Box::new(self.session(k)))
    }

    fn metrics(&self) -> Metrics {
        let m = Metrics::new();
        m.merge(&self.shared.metrics);
        m
    }
}

/// A client connection to the centralized middleware, pinned to replica `k`.
pub struct SrcaConn {
    shared: Arc<Shared>,
    replica: usize,
    current: Option<(XactId, TxnHandle, GlobalTid /* cert */, LocalGuard)>,
}

impl SrcaConn {
    fn begin(&mut self) -> Result<(XactId, TxnHandle, GlobalTid, LocalGuard), DbError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(DbError::Aborted(AbortReason::Shutdown));
        }
        let k = self.replica;
        let xact = XactId {
            origin: ReplicaId::new(k as u64),
            seq: self.shared.next_xact.fetch_add(1, Ordering::Relaxed),
        };
        Metrics::inc(&self.shared.metrics.begins_total);
        // Obtain "dbmutex_k" (the state lock), read lastcommitted_tid_k,
        // begin at R_k (SRCA step I.1). HoleSync additionally waits until
        // the commit order has no holes (adjustment 3).
        let mut st = self.shared.state.lock();
        if self.shared.variant == SrcaVariant::HoleSync && st.holes[k].holes_exist() {
            Metrics::inc(&self.shared.metrics.begins_delayed_by_holes);
            st.holes[k].start_waiting();
            while st.holes[k].holes_exist() && !self.shared.shutdown.load(Ordering::Acquire) {
                self.shared.cond.wait_for(&mut st, WAIT_TICK);
            }
            st.holes[k].done_waiting();
            self.shared.cond.notify_all();
        }
        let cert = st.lastcommitted[k];
        let txn = self.shared.dbs[k].begin()?;
        st.holes[k].local_started();
        drop(st);
        let guard = LocalGuard { shared: Arc::clone(&self.shared), replica: k };
        Ok((xact, txn, cert, guard))
    }
}

impl Connection for SrcaConn {
    fn execute(&mut self, sql: &str) -> Result<ExecResult, DbError> {
        // take/insert instead of an is_none + expect round-trip, so there
        // is no panic path here at all.
        let cur = match self.current.take() {
            Some(c) => c,
            None => self.begin()?,
        };
        let (_, txn, _, _) = &*self.current.insert(cur);
        let db = &self.shared.dbs[self.replica];
        match sirep_sql::execute_sql(db, txn, sql) {
            Ok(r) => Ok(r),
            Err(e) => {
                if e.is_abort() || matches!(e, DbError::DuplicateKey(_)) {
                    if let DbError::Aborted(reason) = &e {
                        match reason {
                            AbortReason::SerializationFailure => {
                                Metrics::inc(&self.shared.metrics.aborts_serialization);
                            }
                            AbortReason::Deadlock => {
                                Metrics::inc(&self.shared.metrics.aborts_deadlock);
                            }
                            _ => {}
                        }
                    }
                    self.current = None;
                }
                Err(e)
            }
        }
    }

    fn commit(&mut self) -> Result<(), DbError> {
        let Some((xact, txn, cert, guard)) = self.current.take() else {
            return Ok(());
        };
        let k = self.replica;
        let ws = txn.writeset();
        if ws.is_empty() {
            txn.commit()?;
            Metrics::inc(&self.shared.metrics.commits_readonly);
            return Ok(());
        }
        let (reply_tx, reply_rx) = bounded(1);
        {
            // "obtain wsmutex" — validation is atomic (step I.3.c-e).
            let mut st = self.shared.state.lock();
            let passes = match self.shared.variant {
                SrcaVariant::Serial => st.wslist.passes(cert, &ws),
                // Adjustment 1: only the local tocommit queue matters.
                _ => !st.queues[k].iter().any(|e| e.ws.intersects(&ws)),
            };
            if !passes {
                drop(st);
                txn.abort(AbortReason::ValidationFailure);
                Metrics::inc(&self.shared.metrics.aborts_validation);
                return Err(DbError::Aborted(AbortReason::ValidationFailure));
            }
            let ws = Arc::new(ws);
            let tid = st.wslist.append(xact, Arc::clone(&ws));
            for (r, queue) in st.queues.iter_mut().enumerate() {
                queue.push_back(QEntry {
                    tid,
                    xact,
                    ws: Arc::clone(&ws),
                    local: r == k,
                    running: false,
                });
            }
            for holes in &mut st.holes {
                holes.on_validated(tid);
            }
            st.pending.insert(xact, PendingLocal { txn, responder: reply_tx, _guard: Some(guard) });
            self.shared.cond.notify_all();
        }
        match reply_rx.recv() {
            Ok(Ok(())) => {
                Metrics::inc(&self.shared.metrics.commits_update);
                Ok(())
            }
            Ok(Err(e)) => Err(e),
            Err(_) => Err(DbError::Aborted(AbortReason::Shutdown)),
        }
    }

    fn rollback(&mut self) {
        if let Some((_, txn, _, _)) = self.current.take() {
            txn.abort(AbortReason::UserRequested);
            Metrics::inc(&self.shared.metrics.aborts_user);
        }
    }

    fn xact_id(&self) -> Option<XactId> {
        self.current.as_ref().map(|(x, _, _, _)| *x)
    }
}

/// Step II (Fig. 1) / step III (adjusted): process a replica's queue.
fn applier_loop(sh: Arc<Shared>, k: usize) {
    loop {
        let picked = {
            let mut st = sh.state.lock();
            loop {
                if sh.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let queue = &mut st.queues[k];
                let idx = match sh.variant {
                    // Fig. 1: strictly the head of the queue.
                    SrcaVariant::Serial => {
                        if queue.front().is_some_and(|e| !e.running) {
                            Some(0)
                        } else {
                            None
                        }
                    }
                    // Adjustment 2: first entry with no conflicting
                    // predecessor.
                    _ => find_eligible(queue),
                };
                if let Some(i) = idx {
                    let e = &mut queue[i];
                    e.running = true;
                    break (e.tid, e.xact, Arc::clone(&e.ws), e.local);
                }
                sh.cond.wait_for(&mut st, WAIT_TICK);
            }
        };
        let (tid, xact, ws, local) = picked;
        let handle = if local {
            // Bind the removal so the state guard drops before finalize()
            // re-locks it.
            let pending = sh.state.lock().pending.remove(&xact);
            match pending {
                Some(p) => {
                    finalize(&sh, k, tid, xact, p.txn, local, Some(p.responder));
                    continue;
                }
                None => {
                    // Shutdown raced us.
                    discard(&sh, k, tid, xact);
                    continue;
                }
            }
        } else {
            match apply_remote(&sh, k, &ws) {
                Some(h) => h,
                None => return,
            }
        };
        finalize(&sh, k, tid, xact, handle, local, None);
    }
}

fn find_eligible(queue: &VecDeque<QEntry>) -> Option<usize> {
    queue.iter().enumerate().find_map(|(i, e)| {
        if e.running {
            return None;
        }
        let blocked = queue.iter().take(i).any(|p| p.ws.intersects(&e.ws));
        (!blocked).then_some(i)
    })
}

fn apply_remote(sh: &Arc<Shared>, k: usize, ws: &WriteSet) -> Option<TxnHandle> {
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            return None;
        }
        let txn = sh.dbs[k].begin().ok()?;
        match txn.apply_writeset(ws) {
            Ok(()) => return Some(txn),
            Err(DbError::Aborted(AbortReason::Deadlock))
            | Err(DbError::Aborted(AbortReason::SerializationFailure)) => {
                Metrics::inc(&sh.metrics.ws_apply_retries);
            }
            Err(DbError::Aborted(AbortReason::Shutdown)) => return None,
            Err(e) => panic!("writeset application failed irrecoverably: {e}"), // sirep-lint: allow(no-unwrap-on-protocol-paths): non-transient apply failure = schema divergence across copies; crashing beats a silent fork (mirrors node.rs apply_remote)
        }
    }
}

fn finalize(
    sh: &Arc<Shared>,
    k: usize,
    tid: GlobalTid,
    xact: XactId,
    txn: TxnHandle,
    local: bool,
    responder: Option<Sender<Result<(), DbError>>>,
) {
    sh.dbs[k].cost_model().commit();
    let result = {
        let mut st = sh.state.lock();
        if sh.variant == SrcaVariant::HoleSync {
            let mut counted = false;
            while !st.holes[k].may_commit(tid, local) && !sh.shutdown.load(Ordering::Acquire) {
                if !counted {
                    Metrics::inc(&sh.metrics.commits_delayed_for_holes);
                    counted = true;
                }
                sh.cond.wait_for(&mut st, WAIT_TICK);
            }
        }
        if sh.shutdown.load(Ordering::Acquire) {
            drop(st);
            txn.abort(AbortReason::Shutdown);
            if let Some(r) = responder {
                let _ = r.send(Err(DbError::Aborted(AbortReason::Shutdown)));
            }
            return;
        }
        let res = txn.commit_quiet().map(|_| ());
        debug_assert!(res.is_ok(), "validated transaction failed to commit: {res:?}");
        st.holes[k].on_committed(tid);
        st.lastcommitted[k] = st.lastcommitted[k].max(tid);
        let queue = &mut st.queues[k];
        if let Some(pos) = queue.iter().position(|e| e.xact == xact) {
            queue.remove(pos);
        }
        // Fig. 1 keeps ws_list entries forever; prune what no future cert
        // can reach (cert = some replica's lastcommitted, so the minimum
        // over replicas is a safe watermark).
        let min = st.lastcommitted.iter().copied().min().unwrap_or(GlobalTid::ZERO);
        let replicas: Vec<ReplicaId> =
            (0..st.lastcommitted.len() as u64).map(ReplicaId::new).collect();
        for r in &replicas {
            let _ = st.wslist.advance_progress(*r, min, &replicas);
        }
        sh.cond.notify_all();
        res
    };
    if let Some(r) = responder {
        let _ = r.send(result);
    }
}

fn discard(sh: &Arc<Shared>, k: usize, tid: GlobalTid, xact: XactId) {
    let mut st = sh.state.lock();
    st.holes[k].on_discarded(tid);
    let queue = &mut st.queues[k];
    if let Some(pos) = queue.iter().position(|e| e.xact == xact) {
        queue.remove(pos);
    }
    sh.cond.notify_all();
}
