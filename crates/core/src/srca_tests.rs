//! Behavioural tests for the centralized SRCA variants and the [20]
//! table-lock baseline.

use crate::session::{Connection, System, TxnTemplate};
use crate::srca::{Srca, SrcaConfig, SrcaVariant};
use crate::tablelock::{TableLockCluster, TableLockConfig};
use sirep_storage::Value;
use std::time::Duration;

const Q: Duration = Duration::from_secs(10);

fn srca(n: usize, v: SrcaVariant) -> Srca {
    let s = Srca::new(SrcaConfig::test(n, v));
    s.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    s
}

fn get(sys: &Srca, k: usize, key: i64) -> Option<i64> {
    let mut s = sys.session(k);
    let r = s.execute(&format!("SELECT v FROM kv WHERE k = {key}")).unwrap();
    let out = r.rows().first().map(|row| row[0].as_int().unwrap());
    s.commit().unwrap();
    out
}

#[test]
fn serial_variant_replicates() {
    let sys = srca(3, SrcaVariant::Serial);
    let mut s = sys.session(0);
    s.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    s.commit().unwrap();
    assert!(sys.quiesce(Q));
    for k in 0..3 {
        assert_eq!(get(&sys, k, 1), Some(10));
    }
}

#[test]
fn hole_sync_variant_replicates_under_concurrency() {
    let sys = std::sync::Arc::new(srca(3, SrcaVariant::HoleSync));
    let mut handles = Vec::new();
    for k in 0..3 {
        let sys2 = std::sync::Arc::clone(&sys);
        handles.push(std::thread::spawn(move || {
            let mut s = sys2.session(k);
            for i in 0..30 {
                let key = (k as i64) * 100 + i;
                s.execute(&format!("INSERT INTO kv VALUES ({key}, {i})")).unwrap();
                s.commit().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(sys.quiesce(Q));
    for k in 0..3 {
        assert_eq!(sys.database(k).table_len("kv"), 90, "replica {k} diverged");
    }
}

#[test]
fn serial_variant_certification_aborts_conflicts() {
    let sys = srca(2, SrcaVariant::Serial);
    {
        let mut s = sys.session(0);
        s.execute("INSERT INTO kv VALUES (1, 0)").unwrap();
        s.commit().unwrap();
    }
    assert!(sys.quiesce(Q));
    let mut a = sys.session(0);
    let mut b = sys.session(1);
    a.execute("UPDATE kv SET v = 1 WHERE k = 1").unwrap();
    b.execute("UPDATE kv SET v = 2 WHERE k = 1").unwrap();
    let ra = a.commit();
    let rb = b.commit();
    assert!(ra.is_ok() ^ rb.is_ok(), "{ra:?} / {rb:?}");
    assert!(sys.quiesce(Q));
    let v = get(&sys, 0, 1);
    assert_eq!(v, get(&sys, 1, 1));
}

#[test]
fn concurrent_commit_variant_survives_contention() {
    let sys = std::sync::Arc::new(srca(2, SrcaVariant::ConcurrentCommit));
    {
        let mut s = sys.session(0);
        s.execute("INSERT INTO kv VALUES (1, 0)").unwrap();
        s.commit().unwrap();
    }
    assert!(sys.quiesce(Q));
    let mut handles = Vec::new();
    for k in 0..2 {
        let sys2 = std::sync::Arc::clone(&sys);
        handles.push(std::thread::spawn(move || {
            let mut s = sys2.session(k);
            let mut done = 0;
            while done < 15 {
                let r = s.execute("UPDATE kv SET v = v + 1 WHERE k = 1").and_then(|_| s.commit());
                if r.is_ok() {
                    done += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(sys.quiesce(Q));
    assert_eq!(get(&sys, 0, 1), Some(30));
    assert_eq!(get(&sys, 1, 1), Some(30));
}

// ---------------------------------------------------------------------------
// Table-lock baseline
// ---------------------------------------------------------------------------

fn tl(n: usize) -> TableLockCluster {
    let c = TableLockCluster::new(TableLockConfig::test(n));
    c.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
    c
}

fn upd_template(statements: Vec<String>) -> TxnTemplate {
    TxnTemplate { statements, tables: vec!["kv".into()], readonly: false }
}

#[test]
fn tablelock_replicates_updates() {
    let c = tl(3);
    let mut conn = c.connect().unwrap();
    conn.run_template(&upd_template(vec!["INSERT INTO kv VALUES (1, 10)".into()])).unwrap();
    assert!(c.quiesce(Q));
    for k in 0..3 {
        let t = c.database(k).begin().unwrap();
        let r = sirep_sql::execute_sql(c.database(k), &t, "SELECT v FROM kv WHERE k = 1").unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(10), "replica {k}");
        t.commit().unwrap();
    }
}

#[test]
fn tablelock_serializes_conflicting_updates() {
    let c = std::sync::Arc::new(tl(2));
    {
        let mut conn = c.connect().unwrap();
        conn.run_template(&upd_template(vec!["INSERT INTO kv VALUES (1, 0)".into()])).unwrap();
    }
    assert!(c.quiesce(Q));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let c2 = std::sync::Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let mut conn = c2.connect().unwrap();
            for _ in 0..20 {
                // Table locks serialize these; no aborts ever.
                conn.run_template(&upd_template(
                    vec!["UPDATE kv SET v = v + 1 WHERE k = 1".into()],
                ))
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(c.quiesce(Q));
    for k in 0..2 {
        let t = c.database(k).begin().unwrap();
        let r = sirep_sql::execute_sql(c.database(k), &t, "SELECT v FROM kv WHERE k = 1").unwrap();
        assert_eq!(r.rows()[0][0], Value::Int(40), "replica {k} lost updates");
        t.commit().unwrap();
    }
    let m = c.metrics();
    assert_eq!(m.forced_aborts(), 0, "table locks must prevent all conflicts");
}

#[test]
fn tablelock_readonly_runs_locally() {
    let c = tl(2);
    {
        let mut conn = c.connect().unwrap();
        conn.run_template(&upd_template(vec!["INSERT INTO kv VALUES (1, 5)".into()])).unwrap();
    }
    assert!(c.quiesce(Q));
    let mut conn = c.connect().unwrap();
    let ro = TxnTemplate {
        statements: vec!["SELECT v FROM kv WHERE k = 1".into()],
        tables: vec!["kv".into()],
        readonly: true,
    };
    conn.run_template(&ro).unwrap();
    let m = c.metrics();
    assert_eq!(sirep_common::Metrics::get(&m.commits_readonly), 1);
}

#[test]
fn tablelock_rejects_statementwise_use() {
    let c = tl(1);
    let mut conn = c.connect().unwrap();
    assert!(conn.execute("SELECT * FROM kv").is_err());
}
