//! The middleware replication protocol of **[20]** (Jiménez-Peris,
//! Patiño-Martínez, Kemme, Alonso — ICDCS 2002), reimplemented as the
//! paper's §6.3 comparison baseline.
//!
//! Protocol (as described in §6.3):
//!
//! - clients submit **parametrized transaction requests** — the whole
//!   transaction plus the set of tables it will access must be known in
//!   advance (exactly the restriction SI-Rep removes);
//! - an update request is **multicast in total order** to all middleware
//!   replicas, which acquire all of its **table-level locks** in delivery
//!   order (all-at-once, so lock acquisition order is consistent and
//!   deadlock-free);
//! - **one replica executes** the transaction (we use the origin — "the
//!   local middleware returns to the client once the transaction has
//!   executed and committed locally"), extracts the writeset and multicasts
//!   it **FIFO** to the remote replicas, which apply it once their locks are
//!   granted;
//! - read-only transactions take shared table locks at the local replica
//!   only.
//!
//! Two messages per update transaction, one client/middleware round trip
//! per transaction — but coarse (table-level) locks. The resulting lock
//! contention is why this baseline saturates earlier than SRCA in Fig. 7.

use crate::msg::XactId;
use crate::session::{Connection, System, TxnTemplate};
use parking_lot::{Condvar, Mutex};
use sirep_common::{AbortReason, DbError, Metrics, ReplicaId};
use sirep_gcs::{Delivery, GroupConfig, SimGroup, SimHandle, SimMember};
use sirep_sql::ExecResult;
use sirep_storage::{CostModel, Database, WriteSet};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages between the middleware replicas of [20].
#[derive(Debug, Clone)]
enum TlMsg {
    /// A transaction request: acquire these table locks in delivery order.
    Request { xact: XactId, origin: ReplicaId, tables: Arc<Vec<String>> },
    /// The executed transaction's writeset (FIFO; applied under the locks).
    Ws { xact: XactId, ws: Arc<WriteSet> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockMode {
    Shared,
    Exclusive,
}

/// A queued table-lock request: all tables at once, granted FIFO.
struct TlLockReq {
    xact: XactId,
    mode: LockMode,
}

#[derive(Default)]
struct TableLockState {
    /// Per-table wait queue; the prefix of compatible requests is granted.
    queues: HashMap<String, VecDeque<TlLockReq>>,
}

impl TableLockState {
    fn enqueue(&mut self, xact: XactId, tables: &[String], mode: LockMode) {
        for t in tables {
            self.queues.entry(t.clone()).or_default().push_back(TlLockReq { xact, mode });
        }
    }

    /// A transaction holds all its locks when, in every table queue it sits
    /// in, it is within the granted prefix (head for exclusive; contiguous
    /// shared run at the head for shared).
    fn granted(&self, xact: XactId, tables: &[String]) -> bool {
        tables.iter().all(|t| {
            let Some(q) = self.queues.get(t) else {
                return false;
            };
            for (i, req) in q.iter().enumerate() {
                if req.xact == xact {
                    return i == 0
                        || (req.mode == LockMode::Shared
                            && q.iter().take(i + 1).all(|r| r.mode == LockMode::Shared));
                }
            }
            false
        })
    }

    fn release(&mut self, xact: XactId, tables: &[String]) {
        for t in tables {
            if let Some(q) = self.queues.get_mut(t) {
                q.retain(|r| r.xact != xact);
                if q.is_empty() {
                    self.queues.remove(t);
                }
            }
        }
    }
}

/// A remote transaction waiting for locks and/or its writeset.
struct RemoteTxn {
    tables: Arc<Vec<String>>,
    ws: Option<Arc<WriteSet>>,
}

struct TlNodeState {
    locks: TableLockState,
    /// Remote update transactions in flight at this replica.
    remote: HashMap<XactId, RemoteTxn>,
    /// Local requests waiting for their locks (signalled via cond).
    _reserved: (),
}

struct TlNode {
    id: ReplicaId,
    db: Database,
    gcs: SimHandle<TlMsg>,
    state: Mutex<TlNodeState>,
    cond: Condvar,
    shutdown: AtomicBool,
    metrics: Arc<Metrics>,
    /// Deliveries fully processed by this node's delivery thread; part of
    /// the `quiesce` fingerprint.
    delivered: AtomicU64,
}

const WAIT_TICK: Duration = Duration::from_millis(25);

impl TlNode {
    /// Handle one delivery (runs on the delivery thread, in order).
    fn on_delivery(self: &Arc<Self>, d: Delivery<TlMsg>) {
        match d {
            Delivery::TotalOrder { msg: TlMsg::Request { xact, origin, tables }, .. } => {
                let mut st = self.state.lock();
                st.locks.enqueue(xact, &tables, LockMode::Exclusive);
                if origin != self.id {
                    st.remote.insert(xact, RemoteTxn { tables, ws: None });
                }
                drop(st);
                self.cond.notify_all();
                self.try_apply_remotes();
            }
            Delivery::Fifo { msg: TlMsg::Ws { xact, ws }, .. } => {
                let mut st = self.state.lock();
                if let Some(r) = st.remote.get_mut(&xact) {
                    r.ws = Some(ws);
                }
                drop(st);
                self.try_apply_remotes();
            }
            Delivery::TotalOrder { msg: TlMsg::Ws { .. }, .. }
            | Delivery::Fifo { msg: TlMsg::Request { .. }, .. } => {
                debug_assert!(false, "message on wrong service level");
            }
            Delivery::ViewChange(_) => {}
            Delivery::TotalBatch { sequenced_at, entries } => {
                // The baseline runs on the sim transport, which may batch:
                // unfold and process entries in order (identical semantics).
                for e in entries {
                    self.on_delivery(Delivery::TotalOrder {
                        seq: e.seq,
                        sender: e.sender,
                        sequenced_at,
                        msg: e.msg,
                    });
                }
            }
        }
    }

    /// Apply every remote transaction whose locks are granted and whose
    /// writeset has arrived.
    fn try_apply_remotes(self: &Arc<Self>) {
        loop {
            let ready = {
                let st = self.state.lock();
                st.remote
                    .iter()
                    .find(|(x, r)| r.ws.is_some() && st.locks.granted(**x, &r.tables))
                    .map(|(x, r)| {
                        (*x, Arc::clone(&r.tables), Arc::clone(r.ws.as_ref().expect("checked")))
                    })
            };
            let Some((xact, tables, ws)) = ready else {
                return;
            };
            // Only this (delivery) thread applies remotes, so the entry can
            // stay in the map until the apply completes — `quiesce` treats
            // a non-empty map as in-flight work.
            let ok = (|| -> Result<(), DbError> {
                let txn = self.db.begin()?;
                txn.apply_writeset(&ws)?;
                self.db.cost_model().commit();
                txn.commit_quiet()?;
                Ok(())
            })();
            if ok.is_err() && !self.shutdown.load(Ordering::Acquire) {
                debug_assert!(false, "remote apply under table locks cannot conflict: {ok:?}");
            }
            let mut st = self.state.lock();
            st.remote.remove(&xact);
            st.locks.release(xact, &tables);
            drop(st);
            self.cond.notify_all();
        }
    }

    /// Wait until `xact` holds all its table locks at this replica.
    fn wait_for_locks(&self, xact: XactId, tables: &[String]) -> Result<(), DbError> {
        let mut st = self.state.lock();
        while !st.locks.granted(xact, tables) {
            if self.shutdown.load(Ordering::Acquire) {
                return Err(DbError::Aborted(AbortReason::Shutdown));
            }
            self.cond.wait_for(&mut st, WAIT_TICK);
        }
        Ok(())
    }

    fn release_locks(&self, xact: XactId, tables: &[String]) {
        let mut st = self.state.lock();
        st.locks.release(xact, tables);
        drop(st);
        self.cond.notify_all();
    }
}

/// Configuration for the [20] baseline cluster.
#[derive(Debug, Clone)]
pub struct TableLockConfig {
    pub replicas: usize,
    pub cost: CostModel,
    pub gcs: GroupConfig,
}

impl TableLockConfig {
    pub fn test(replicas: usize) -> TableLockConfig {
        TableLockConfig { replicas, cost: CostModel::free(), gcs: GroupConfig::instant() }
    }
}

/// The [20] baseline system.
pub struct TableLockCluster {
    nodes: Vec<Arc<TlNode>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicUsize,
    next_xact: AtomicU64,
}

impl TableLockCluster {
    pub fn new(config: TableLockConfig) -> TableLockCluster {
        let group: SimGroup<TlMsg> = SimGroup::new(config.gcs.clone());
        let mut nodes = Vec::new();
        let mut threads = Vec::new();
        for k in 0..config.replicas {
            let member: SimMember<TlMsg> = group.join();
            let node = Arc::new(TlNode {
                id: ReplicaId::new(k as u64),
                db: Database::new(config.cost.clone()),
                gcs: member.handle(),
                state: Mutex::new(TlNodeState {
                    locks: TableLockState::default(),
                    remote: HashMap::new(),
                    _reserved: (),
                }),
                cond: Condvar::new(),
                shutdown: AtomicBool::new(false),
                metrics: Arc::new(Metrics::new()),
                delivered: AtomicU64::new(0),
            });
            let n = Arc::clone(&node);
            threads.push(std::thread::spawn(move || loop {
                if n.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match member.recv_timeout(Duration::from_millis(20)) {
                    Ok(d) => {
                        n.on_delivery(d);
                        n.delivered.fetch_add(1, Ordering::Release);
                    }
                    Err(sirep_gcs::GcsError::Timeout) => {}
                    Err(_) => return,
                }
            }));
            nodes.push(node);
        }
        TableLockCluster {
            nodes,
            threads: Mutex::new(threads),
            next_conn: AtomicUsize::new(0),
            next_xact: AtomicU64::new(1),
        }
    }

    pub fn execute_ddl(&self, sql: &str) -> Result<(), DbError> {
        for n in &self.nodes {
            let t = n.db.begin()?;
            sirep_sql::execute_sql(&n.db, &t, sql)?;
            t.commit()?;
        }
        Ok(())
    }

    pub fn load_with(&self, f: impl Fn(&Database) -> Result<(), DbError>) -> Result<(), DbError> {
        for n in &self.nodes {
            n.db.cost_model().set_suspended(true);
            let r = f(&n.db);
            n.db.cost_model().set_suspended(false);
            r?;
        }
        Ok(())
    }

    pub fn database(&self, k: usize) -> &Database {
        &self.nodes[k].db
    }

    /// Wait for all remote work to drain. An empty `remote` map alone is
    /// not enough: a Request/Ws can still sit undelivered in the GCS (the
    /// map is only populated at delivery), so also require zero in-flight
    /// messages and a delivery count that stays stable across rounds —
    /// the same fingerprint discipline as the SRCA-Rep cluster's quiesce.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut stable_rounds = 0;
        let mut last_delivered = u64::MAX;
        while std::time::Instant::now() < deadline {
            let in_flight = self.nodes[0].gcs.in_flight().current;
            let drained = self.nodes.iter().all(|n| n.state.lock().remote.is_empty());
            let delivered: u64 =
                self.nodes.iter().map(|n| n.delivered.load(Ordering::Acquire)).sum();
            if in_flight == 0 && drained && delivered == last_delivered {
                stable_rounds += 1;
                if stable_rounds >= 3 {
                    return true;
                }
            } else {
                stable_rounds = 0;
            }
            last_delivered = delivered;
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    pub fn shutdown(&self) {
        for n in &self.nodes {
            n.shutdown.store(true, Ordering::Release);
            n.db.crash();
            n.cond.notify_all();
        }
        // Hoisted so the threads guard drops before the joins (a joined
        // thread must be able to take the lock while shutting down).
        let handles = std::mem::take(&mut *self.threads.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for TableLockCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl System for TableLockCluster {
    fn name(&self) -> &'static str {
        "table-lock [20]"
    }

    fn connect(&self) -> Result<Box<dyn Connection>, DbError> {
        let k = self.next_conn.fetch_add(1, Ordering::Relaxed) % self.nodes.len();
        Ok(Box::new(TlConn {
            node: Arc::clone(&self.nodes[k]),
            seq: Arc::new(AtomicU64::new(self.next_xact.fetch_add(1_000_000, Ordering::Relaxed))),
        }))
    }

    fn metrics(&self) -> Metrics {
        let m = Metrics::new();
        for n in &self.nodes {
            m.merge(&n.metrics);
        }
        m
    }
}

/// A client connection to the [20] middleware. Only whole-transaction
/// templates are supported — per-statement execution needs table sets the
/// middleware cannot know, which is precisely the usability gap the paper
/// criticizes.
pub struct TlConn {
    node: Arc<TlNode>,
    seq: Arc<AtomicU64>,
}

impl Connection for TlConn {
    fn execute(&mut self, _sql: &str) -> Result<ExecResult, DbError> {
        Err(DbError::Unsupported(
            "the [20] baseline requires pre-declared transactions; use run_template".into(),
        ))
    }

    fn commit(&mut self) -> Result<(), DbError> {
        Ok(())
    }

    fn rollback(&mut self) {}

    fn run_template(&mut self, tmpl: &TxnTemplate) -> Result<(), DbError> {
        let node = &self.node;
        if node.shutdown.load(Ordering::Acquire) {
            return Err(DbError::Aborted(AbortReason::Shutdown));
        }
        let xact = XactId { origin: node.id, seq: self.seq.fetch_add(1, Ordering::Relaxed) };
        Metrics::inc(&node.metrics.begins_total);
        if tmpl.readonly {
            // Queries: local shared table locks only.
            let mut st = node.state.lock();
            st.locks.enqueue(xact, &tmpl.tables, LockMode::Shared);
            drop(st);
            node.wait_for_locks(xact, &tmpl.tables)?;
            let result = (|| -> Result<(), DbError> {
                let txn = node.db.begin()?;
                for sql in &tmpl.statements {
                    sirep_sql::execute_sql(&node.db, &txn, sql)?;
                }
                txn.commit()?;
                Ok(())
            })();
            node.release_locks(xact, &tmpl.tables);
            if result.is_ok() {
                Metrics::inc(&node.metrics.commits_readonly);
            }
            return result;
        }
        // Update transaction: request multicast in total order; every
        // replica (including us) enqueues the exclusive table locks in
        // delivery order.
        let tables = Arc::new(tmpl.tables.clone());
        node.gcs
            .multicast_total(TlMsg::Request { xact, origin: node.id, tables: Arc::clone(&tables) })
            .map_err(|_| DbError::Aborted(AbortReason::ReplicaCrashed))?;
        node.wait_for_locks(xact, &tables)?;
        // Execute locally under the table locks, commit, then ship the
        // writeset FIFO.
        let result = (|| -> Result<Arc<WriteSet>, DbError> {
            let txn = node.db.begin()?;
            for sql in &tmpl.statements {
                sirep_sql::execute_sql(&node.db, &txn, sql)?;
            }
            let ws = Arc::new(txn.writeset());
            node.db.cost_model().commit();
            txn.commit_quiet()?;
            Ok(ws)
        })();
        match result {
            Ok(ws) => {
                if !ws.is_empty() {
                    let _ = node.gcs.multicast_fifo(TlMsg::Ws { xact, ws });
                } else {
                    // Nothing to replicate; tell remotes to release by
                    // shipping the empty writeset.
                    let _ =
                        node.gcs.multicast_fifo(TlMsg::Ws { xact, ws: Arc::new(WriteSet::new()) });
                }
                node.release_locks(xact, &tables);
                Metrics::inc(&node.metrics.commits_update);
                Ok(())
            }
            Err(e) => {
                // Under exclusive table locks conflicts cannot happen; an
                // error here is a statement error (bad SQL). Release
                // everywhere via an empty writeset.
                let _ = node.gcs.multicast_fifo(TlMsg::Ws { xact, ws: Arc::new(WriteSet::new()) });
                node.release_locks(xact, &tables);
                Metrics::inc(&node.metrics.aborts_user);
                Err(e)
            }
        }
    }
}
