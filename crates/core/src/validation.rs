//! Certification: the `ws_list` and the validation test.
//!
//! A transaction `T_i` passes validation iff no transaction that validated
//! after `T_i.cert` has an overlapping writeset (SRCA step I.3.d / SRCA-Rep
//! step II.2):
//!
//! > if ∃ Tj ∈ ws_list such that Ti.cert < Tj.tid ∧ Ti.WS ∩ Tj.WS ≠ ∅
//! > then abort else Ti.tid := ++lastvalidated.
//!
//! Every replica runs this test in total-order delivery order with the same
//! inputs, so every replica assigns the same `tid`s and makes the same
//! decisions — the heart of the paper's determinism argument.
//!
//! ## Key-indexed certification
//!
//! The paper's formulation is a reverse scan: every certified entry newer
//! than `cert`, pairwise-intersected with the candidate — O(list · |ws|)
//! per delivered writeset, all of it on the single total-order delivery
//! thread. [`WsList`] instead maintains a **last-certifier index**: for
//! every tuple id written by a live entry, the highest tid that wrote it.
//! The test collapses to O(|ws|) hash probes, because
//!
//! > ∃ Tj ∈ ws_list: cert < Tj.tid ∧ WS ∩ Tj.WS ≠ ∅
//! > ⟺ ∃ id ∈ WS: max{ Tj.tid | Tj live, id ∈ Tj.WS } > cert
//!
//! and the index stores exactly that per-id maximum. [`WsList::append`]
//! overwrites the index entries of the keys it writes (the new tid is
//! always the largest), and pruning removes an index entry only when the
//! pruned list entry *is* the last certifier of that key — so the index is
//! always exactly `{id → max live tid writing id}` and verdicts are
//! bit-for-bit those of the scan. [`WsList::passes_scan`] keeps the paper's
//! literal formulation as the differential oracle (and bench baseline).
//!
//! The `ws_list` would grow without bound; entries with
//! `tid <= min(cert of any future message)` can never participate in a
//! validation again. Replicas advertise their `lastvalidated` (piggybacked
//! on every writeset's `cert`, plus explicit [`ReplMsg::Progress`] messages
//! when idle), and the list is pruned below the group-wide minimum.
//!
//! [`ReplMsg::Progress`]: crate::msg::ReplMsg::Progress

use crate::msg::XactId;
use sirep_common::{GlobalTid, ReplicaId};
use sirep_storage::{TupleId, WriteSet};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// One validated writeset.
#[derive(Debug, Clone)]
pub struct CertEntry {
    pub tid: GlobalTid,
    pub xact: XactId,
    pub ws: Arc<WriteSet>,
}

/// The list of validated writesets, ordered by tid (ascending), plus the
/// last-certifier index that makes validation O(|ws|).
#[derive(Debug, Default, Clone)]
pub struct WsList {
    entries: VecDeque<CertEntry>,
    last_tid: GlobalTid,
    /// Latest `lastvalidated` advertised by each replica (for pruning).
    progress: HashMap<ReplicaId, GlobalTid>,
    /// Tuple id → tid of the newest live entry that wrote it. Invariants
    /// (checked by the differential property test and `debug_validate`):
    /// the domain is exactly the tuple ids written by live entries, and the
    /// value is the maximum tid among the live writers of that id.
    last_certifier: HashMap<TupleId, GlobalTid>,
}

impl WsList {
    pub fn new() -> WsList {
        WsList::default()
    }

    /// `lastvalidated_tid`: the tid of the most recently validated txn.
    pub fn last_tid(&self) -> GlobalTid {
        self.last_tid
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of keys tracked by the last-certifier index (bounded by the
    /// total tuple count of live entries; exported as a gauge).
    pub fn index_len(&self) -> usize {
        self.last_certifier.len()
    }

    /// The validation test: does `ws` conflict with any entry validated
    /// after `cert`? O(|ws|) index probes.
    pub fn passes(&self, cert: GlobalTid, ws: &WriteSet) -> bool {
        ws.tuple_ids().all(|id| self.last_certifier.get(id).is_none_or(|&last| last <= cert))
    }

    /// The paper's literal reverse-scan formulation of the validation test
    /// — O(list · |ws|). Kept as the differential oracle for [`Self::passes`]
    /// (Theorem 1 verdicts must be bit-for-bit identical) and as the
    /// baseline of the certification micro-bench.
    pub fn passes_scan(&self, cert: GlobalTid, ws: &WriteSet) -> bool {
        // Entries are tid-ascending; scan from the back and stop at cert.
        for e in self.entries.iter().rev() {
            if e.tid <= cert {
                break;
            }
            if e.ws.intersects(ws) {
                return false;
            }
        }
        true
    }

    /// Assign the next tid and append (the caller must have called
    /// [`WsList::passes`] under the same lock).
    pub fn append(&mut self, xact: XactId, ws: Arc<WriteSet>) -> GlobalTid {
        self.last_tid = self.last_tid.next();
        for id in ws.tuple_ids() {
            // The fresh tid is larger than every live one: overwrite.
            self.last_certifier.insert(id.clone(), self.last_tid);
        }
        self.entries.push_back(CertEntry { tid: self.last_tid, xact, ws });
        self.last_tid
    }

    /// Record a replica's advertised progress and prune entries no future
    /// message can be certified against. `alive` lists replicas still in
    /// the view (crashed replicas must not hold the watermark back).
    ///
    /// Returns the group-wide watermark and how many entries this call
    /// pruned, or `None` while some live replica has yet to report (the
    /// journal and the prune-watermark audit consume this).
    ///
    /// Cost: O(|alive| + pruned work) — each pruned entry pays O(|ws|) to
    /// drop its index keys, and a key is dropped only when the pruned entry
    /// is still its last certifier.
    pub fn advance_progress(
        &mut self,
        from: ReplicaId,
        lastvalidated: GlobalTid,
        alive: &[ReplicaId],
    ) -> Option<(GlobalTid, u64)> {
        let e = self.progress.entry(from).or_insert(GlobalTid::ZERO);
        *e = (*e).max(lastvalidated);
        let alive_set: HashSet<ReplicaId> = alive.iter().copied().collect();
        self.progress.retain(|r, _| alive_set.contains(r));
        // Until every live replica has reported at least once, don't prune.
        if alive.iter().any(|r| !self.progress.contains_key(r)) {
            return None;
        }
        let watermark = self.progress.values().copied().min().unwrap_or(GlobalTid::ZERO);
        let mut removed = 0u64;
        while self.entries.front().is_some_and(|e| e.tid <= watermark) {
            let e = self.entries.pop_front().expect("front checked above");
            for id in e.ws.tuple_ids() {
                if let Entry::Occupied(o) = self.last_certifier.entry(id.clone()) {
                    // A newer live entry re-certified this key: keep it.
                    if *o.get() == e.tid {
                        o.remove();
                    }
                }
            }
            removed += 1;
        }
        Some((watermark, removed))
    }

    /// Iterate entries with `tid > cert` (test/debug).
    pub fn entries_after(&self, cert: GlobalTid) -> impl Iterator<Item = &CertEntry> {
        self.entries.iter().filter(move |e| e.tid > cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirep_storage::{Key, WsOp};

    fn ws(keys: &[i64]) -> Arc<WriteSet> {
        let mut w = WriteSet::new();
        for &k in keys {
            w.push(Arc::from("t"), Key::single(k), WsOp::Delete);
        }
        Arc::new(w)
    }

    fn xact(seq: u64) -> XactId {
        XactId { origin: ReplicaId::new(0), seq }
    }

    #[test]
    fn tids_are_dense_and_increasing() {
        let mut l = WsList::new();
        assert_eq!(l.last_tid(), GlobalTid::ZERO);
        let t1 = l.append(xact(1), ws(&[1]));
        let t2 = l.append(xact(2), ws(&[2]));
        assert_eq!(t1, GlobalTid::new(1));
        assert_eq!(t2, GlobalTid::new(2));
        assert_eq!(l.last_tid(), t2);
    }

    #[test]
    fn validation_checks_only_after_cert() {
        let mut l = WsList::new();
        l.append(xact(1), ws(&[1])); // tid 1
        l.append(xact(2), ws(&[2])); // tid 2
                                     // cert = 0: conflicts with tid 1.
        assert!(!l.passes(GlobalTid::ZERO, &ws(&[1])));
        // cert = 1: tid 1 is no longer concurrent → passes.
        assert!(l.passes(GlobalTid::new(1), &ws(&[1])));
        // cert = 1 but conflicts with tid 2 → fails.
        assert!(!l.passes(GlobalTid::new(1), &ws(&[2])));
        // Disjoint always passes.
        assert!(l.passes(GlobalTid::ZERO, &ws(&[99])));
    }

    #[test]
    fn rewritten_key_tracks_newest_certifier() {
        let mut l = WsList::new();
        l.append(xact(1), ws(&[7])); // tid 1 writes key 7
        l.append(xact(2), ws(&[7])); // tid 2 re-writes key 7
        assert_eq!(l.index_len(), 1, "one key, one index entry");
        // cert = 1 still conflicts: the *newest* certifier of key 7 is 2.
        assert!(!l.passes(GlobalTid::new(1), &ws(&[7])));
        assert!(l.passes(GlobalTid::new(2), &ws(&[7])));
    }

    #[test]
    fn progress_pruning_waits_for_all_replicas() {
        let mut l = WsList::new();
        for i in 1..=10 {
            l.append(xact(i), ws(&[i as i64]));
        }
        let alive = vec![ReplicaId::new(0), ReplicaId::new(1)];
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(10), &alive);
        assert_eq!(l.len(), 10, "must not prune before all replicas report");
        let _ = l.advance_progress(ReplicaId::new(1), GlobalTid::new(4), &alive);
        assert_eq!(l.len(), 6, "prunes to min watermark");
        // Validation against surviving entries still works.
        assert!(!l.passes(GlobalTid::new(4), &ws(&[5])));
    }

    #[test]
    fn crashed_replicas_do_not_hold_watermark() {
        let mut l = WsList::new();
        for i in 1..=5 {
            l.append(xact(i), ws(&[i as i64]));
        }
        let both = vec![ReplicaId::new(0), ReplicaId::new(1)];
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(5), &both);
        let _ = l.advance_progress(ReplicaId::new(1), GlobalTid::new(1), &both);
        assert_eq!(l.len(), 4);
        // R1 crashes; its stale watermark is dropped.
        let only0 = vec![ReplicaId::new(0)];
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(5), &only0);
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn progress_is_monotonic() {
        let mut l = WsList::new();
        for i in 1..=3 {
            l.append(xact(i), ws(&[i as i64]));
        }
        let alive = vec![ReplicaId::new(0)];
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(3), &alive);
        assert!(l.is_empty());
        // A stale (smaller) report cannot resurrect anything or regress.
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(1), &alive);
        assert!(l.is_empty());
    }

    /// Pruning is O(pruned): the index never outlives the entries that feed
    /// it, so its size tracks the live tuple count exactly — no residue
    /// accumulates across prune cycles.
    #[test]
    fn index_size_tracks_live_entries_through_pruning() {
        let mut l = WsList::new();
        let alive = vec![ReplicaId::new(0)];
        // Disjoint single-key writesets: index_len == live entry count.
        for i in 1..=100 {
            l.append(xact(i), ws(&[i as i64]));
        }
        assert_eq!(l.index_len(), 100);
        let (_, removed) = l
            .advance_progress(ReplicaId::new(0), GlobalTid::new(60), &alive)
            .expect("sole replica reported");
        assert_eq!(removed, 60);
        assert_eq!(l.len(), 40);
        assert_eq!(l.index_len(), 40, "pruned entries must drop their index keys");
        // Overlapping writers: the shared key stays owned by the newest —
        // the re-write transfers ownership instead of adding an entry.
        l.append(xact(200), ws(&[70])); // key 70 also written by tid 70
        assert_eq!(l.index_len(), 40);
        let (_, _) = l
            .advance_progress(ReplicaId::new(0), GlobalTid::new(100), &alive)
            .expect("sole replica reported");
        assert_eq!(l.len(), 1, "only tid 101 (the re-writer) survives");
        assert_eq!(l.index_len(), 1, "key 70 still indexed — by its newest writer");
        assert!(!l.passes(GlobalTid::new(100), &ws(&[70])));
        // Full prune leaves a completely empty index.
        let _ = l.advance_progress(ReplicaId::new(0), l.last_tid(), &alive);
        assert!(l.is_empty());
        assert_eq!(l.index_len(), 0);
    }

    /// The indexed test and the paper's scan agree on *every* cert value,
    /// including ones below the prune watermark (the protocol never sends
    /// those, but the equivalence is unconditional).
    #[test]
    fn indexed_and_scan_agree_after_pruning() {
        let mut l = WsList::new();
        let alive = vec![ReplicaId::new(0)];
        for i in 1..=20 {
            l.append(xact(i), ws(&[(i % 7) as i64]));
        }
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(12), &alive);
        for cert in 0..=20 {
            for key in 0..8 {
                let cand = ws(&[key]);
                let cert = GlobalTid::new(cert);
                assert_eq!(
                    l.passes(cert, &cand),
                    l.passes_scan(cert, &cand),
                    "divergence at cert {cert}, key {key}"
                );
            }
        }
    }
}

#[cfg(test)]
mod differential {
    //! The differential property test guarding Theorem 1: a replica running
    //! the key-indexed validation and a replica running the paper's scan
    //! formulation, fed the same total-order stream (writesets + progress
    //! messages), must produce identical verdicts AND identical tid
    //! assignments — otherwise replicas would diverge silently.

    use super::*;
    use proptest::prelude::*;
    use sirep_storage::{Key, WsOp};

    #[derive(Debug, Clone)]
    enum Msg {
        /// A writeset over the given keys, with cert lagging `last_tid` by
        /// `cert_lag` (saturating at zero).
        WriteSet { keys: Vec<i64>, cert_lag: u64 },
        /// A progress report from one of three replicas, `lag` behind.
        Progress { from: u64, lag: u64 },
    }

    fn msg() -> impl Strategy<Value = Msg> {
        prop_oneof![
            4 => (proptest::collection::vec(0i64..40, 1..6), 0u64..12)
                .prop_map(|(keys, cert_lag)| Msg::WriteSet { keys, cert_lag }),
            1 => (0u64..3, 0u64..10).prop_map(|(from, lag)| Msg::Progress { from, lag }),
        ]
    }

    fn build_ws(keys: &[i64]) -> Arc<WriteSet> {
        let mut w = WriteSet::new();
        for &k in keys {
            w.push(Arc::from("t"), Key::single(k), WsOp::Delete);
        }
        Arc::new(w)
    }

    // A replica fed sequencer *batch frames* must behave bit-identically
    // to one fed the same messages as singleton deliveries: batching is a
    // wire-level coalescing optimization and must be semantically
    // invisible. The stream is re-partitioned into random batch sizes and
    // replayed; verdicts, tid assignments, prune watermarks, and each
    // accepted writeset's conflicting-predecessor set (the tids an applier
    // would block on) must all match the unbatched replica.
    proptest! {
        #[test]
        fn batched_differential(
            stream in proptest::collection::vec(msg(), 1..120),
            cuts in proptest::collection::vec(1usize..8, 1..40),
        ) {
            let alive: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
            let mut flat = WsList::new();    // singleton deliveries
            let mut batched = WsList::new(); // batch frames
            // Partition the stream into batches of the generated sizes
            // (cycled); a batch boundary must never change anything.
            let mut frames: Vec<&[Msg]> = Vec::new();
            {
                let mut rest = stream.as_slice();
                let mut i = 0;
                while !rest.is_empty() {
                    let take = cuts[i % cuts.len()].min(rest.len());
                    let (head, tail) = rest.split_at(take);
                    frames.push(head);
                    rest = tail;
                    i += 1;
                }
            }
            let mut seq = 0u64;
            let process = |l: &mut WsList, m: &Msg, seq: u64| -> (Option<bool>, Option<GlobalTid>, Vec<GlobalTid>) {
                match m {
                    Msg::WriteSet { keys, cert_lag } => {
                        let ws = build_ws(keys);
                        let cert = GlobalTid::new(l.last_tid().raw().saturating_sub(*cert_lag));
                        let verdict = l.passes(cert, &ws);
                        if verdict {
                            // The tids this writeset certified against and
                            // overlaps — what its applier would block on.
                            let blockers: Vec<GlobalTid> = l
                                .entries_after(cert)
                                .filter(|e| e.ws.intersects(&ws))
                                .map(|e| e.tid)
                                .collect();
                            let xact = XactId { origin: ReplicaId::new(0), seq };
                            let tid = l.append(xact, ws);
                            (Some(verdict), Some(tid), blockers)
                        } else {
                            (Some(verdict), None, Vec::new())
                        }
                    }
                    Msg::Progress { from, lag } => {
                        let lv = GlobalTid::new(l.last_tid().raw().saturating_sub(*lag));
                        let _ = l.advance_progress(ReplicaId::new(*from), lv, &alive);
                        (None, None, Vec::new())
                    }
                }
            };
            let mut flat_results = Vec::new();
            for m in &stream {
                seq += 1;
                flat_results.push(process(&mut flat, m, seq));
            }
            seq = 0;
            let mut batched_results = Vec::new();
            for frame in &frames {
                // One "frame" arrives as a unit, exactly like
                // Delivery::TotalBatch: entries processed in order.
                for m in *frame {
                    seq += 1;
                    batched_results.push(process(&mut batched, m, seq));
                }
            }
            prop_assert_eq!(&flat_results, &batched_results,
                "batch framing changed verdicts, tids, or blocker sets");
            prop_assert_eq!(flat.len(), batched.len());
            prop_assert_eq!(flat.last_tid(), batched.last_tid());
            prop_assert_eq!(flat.index_len(), batched.index_len());
        }
    }

    proptest! {
        #[test]
        fn indexed_replica_matches_scan_replica(stream in proptest::collection::vec(msg(), 1..120)) {
            let alive: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
            let mut indexed = WsList::new(); // replica A: key-indexed passes
            let mut scan = WsList::new();    // replica B: the paper's scan
            let mut seq = 0u64;
            for m in &stream {
                match m {
                    Msg::WriteSet { keys, cert_lag } => {
                        seq += 1;
                        let ws = build_ws(keys);
                        let cert =
                            GlobalTid::new(indexed.last_tid().raw().saturating_sub(*cert_lag));
                        let va = indexed.passes(cert, &ws);
                        let vb = scan.passes_scan(cert, &ws);
                        prop_assert_eq!(va, vb, "verdict divergence at seq {}", seq);
                        if va {
                            let xact = XactId { origin: ReplicaId::new(0), seq };
                            let ta = indexed.append(xact, Arc::clone(&ws));
                            let tb = scan.append(xact, ws);
                            prop_assert_eq!(ta, tb, "tid divergence at seq {}", seq);
                        }
                    }
                    Msg::Progress { from, lag } => {
                        let lv = GlobalTid::new(indexed.last_tid().raw().saturating_sub(*lag));
                        let ra = indexed.advance_progress(ReplicaId::new(*from), lv, &alive);
                        let rb = scan.advance_progress(ReplicaId::new(*from), lv, &alive);
                        prop_assert_eq!(ra, rb, "prune divergence at seq {}", seq);
                    }
                }
                prop_assert_eq!(indexed.len(), scan.len());
                // Index invariant: the domain is the live entries' tuple
                // ids, so it can never exceed their total tuple count.
                let live_tuples: usize =
                    indexed.entries_after(GlobalTid::ZERO).map(|e| e.ws.len()).sum();
                prop_assert!(indexed.index_len() <= live_tuples,
                    "index has {} keys but live entries only carry {} tuples",
                    indexed.index_len(), live_tuples);
            }
        }
    }
}
