//! Certification: the `ws_list` and the validation test.
//!
//! A transaction `T_i` passes validation iff no transaction that validated
//! after `T_i.cert` has an overlapping writeset (SRCA step I.3.d / SRCA-Rep
//! step II.2):
//!
//! > if ∃ Tj ∈ ws_list such that Ti.cert < Tj.tid ∧ Ti.WS ∩ Tj.WS ≠ ∅
//! > then abort else Ti.tid := ++lastvalidated.
//!
//! Every replica runs this test in total-order delivery order with the same
//! inputs, so every replica assigns the same `tid`s and makes the same
//! decisions — the heart of the paper's determinism argument.
//!
//! The `ws_list` would grow without bound; entries with
//! `tid <= min(cert of any future message)` can never participate in a
//! validation again. Replicas advertise their `lastvalidated` (piggybacked
//! on every writeset's `cert`, plus explicit [`ReplMsg::Progress`] messages
//! when idle), and the list is pruned below the group-wide minimum.
//!
//! [`ReplMsg::Progress`]: crate::msg::ReplMsg::Progress

use crate::msg::XactId;
use sirep_common::{GlobalTid, ReplicaId};
use sirep_storage::WriteSet;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One validated writeset.
#[derive(Debug, Clone)]
pub struct CertEntry {
    pub tid: GlobalTid,
    pub xact: XactId,
    pub ws: Arc<WriteSet>,
}

/// The list of validated writesets, ordered by tid (ascending).
#[derive(Debug, Default, Clone)]
pub struct WsList {
    entries: VecDeque<CertEntry>,
    last_tid: GlobalTid,
    /// Latest `lastvalidated` advertised by each replica (for pruning).
    progress: HashMap<ReplicaId, GlobalTid>,
}

impl WsList {
    pub fn new() -> WsList {
        WsList::default()
    }

    /// `lastvalidated_tid`: the tid of the most recently validated txn.
    pub fn last_tid(&self) -> GlobalTid {
        self.last_tid
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The validation test: does `ws` conflict with any entry validated
    /// after `cert`?
    pub fn passes(&self, cert: GlobalTid, ws: &WriteSet) -> bool {
        // Entries are tid-ascending; scan from the back and stop at cert.
        for e in self.entries.iter().rev() {
            if e.tid <= cert {
                break;
            }
            if e.ws.intersects(ws) {
                return false;
            }
        }
        true
    }

    /// Assign the next tid and append (the caller must have called
    /// [`WsList::passes`] under the same lock).
    pub fn append(&mut self, xact: XactId, ws: Arc<WriteSet>) -> GlobalTid {
        self.last_tid = self.last_tid.next();
        self.entries.push_back(CertEntry { tid: self.last_tid, xact, ws });
        self.last_tid
    }

    /// Record a replica's advertised progress and prune entries no future
    /// message can be certified against. `alive` lists replicas still in
    /// the view (crashed replicas must not hold the watermark back).
    ///
    /// Returns the group-wide watermark and how many entries this call
    /// pruned, or `None` while some live replica has yet to report (the
    /// journal and the prune-watermark audit consume this).
    pub fn advance_progress(
        &mut self,
        from: ReplicaId,
        lastvalidated: GlobalTid,
        alive: &[ReplicaId],
    ) -> Option<(GlobalTid, u64)> {
        let e = self.progress.entry(from).or_insert(GlobalTid::ZERO);
        *e = (*e).max(lastvalidated);
        self.progress.retain(|r, _| alive.contains(r));
        // Until every live replica has reported at least once, don't prune.
        if alive.iter().any(|r| !self.progress.contains_key(r)) {
            return None;
        }
        let watermark = self.progress.values().copied().min().unwrap_or(GlobalTid::ZERO);
        let mut removed = 0u64;
        while self.entries.front().is_some_and(|e| e.tid <= watermark) {
            self.entries.pop_front();
            removed += 1;
        }
        Some((watermark, removed))
    }

    /// Iterate entries with `tid > cert` (test/debug).
    pub fn entries_after(&self, cert: GlobalTid) -> impl Iterator<Item = &CertEntry> {
        self.entries.iter().filter(move |e| e.tid > cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirep_storage::{Key, WsOp};

    fn ws(keys: &[i64]) -> Arc<WriteSet> {
        let mut w = WriteSet::new();
        for &k in keys {
            w.push(Arc::from("t"), Key::single(k), WsOp::Delete);
        }
        Arc::new(w)
    }

    fn xact(seq: u64) -> XactId {
        XactId { origin: ReplicaId::new(0), seq }
    }

    #[test]
    fn tids_are_dense_and_increasing() {
        let mut l = WsList::new();
        assert_eq!(l.last_tid(), GlobalTid::ZERO);
        let t1 = l.append(xact(1), ws(&[1]));
        let t2 = l.append(xact(2), ws(&[2]));
        assert_eq!(t1, GlobalTid::new(1));
        assert_eq!(t2, GlobalTid::new(2));
        assert_eq!(l.last_tid(), t2);
    }

    #[test]
    fn validation_checks_only_after_cert() {
        let mut l = WsList::new();
        l.append(xact(1), ws(&[1])); // tid 1
        l.append(xact(2), ws(&[2])); // tid 2
                                     // cert = 0: conflicts with tid 1.
        assert!(!l.passes(GlobalTid::ZERO, &ws(&[1])));
        // cert = 1: tid 1 is no longer concurrent → passes.
        assert!(l.passes(GlobalTid::new(1), &ws(&[1])));
        // cert = 1 but conflicts with tid 2 → fails.
        assert!(!l.passes(GlobalTid::new(1), &ws(&[2])));
        // Disjoint always passes.
        assert!(l.passes(GlobalTid::ZERO, &ws(&[99])));
    }

    #[test]
    fn progress_pruning_waits_for_all_replicas() {
        let mut l = WsList::new();
        for i in 1..=10 {
            l.append(xact(i), ws(&[i as i64]));
        }
        let alive = vec![ReplicaId::new(0), ReplicaId::new(1)];
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(10), &alive);
        assert_eq!(l.len(), 10, "must not prune before all replicas report");
        let _ = l.advance_progress(ReplicaId::new(1), GlobalTid::new(4), &alive);
        assert_eq!(l.len(), 6, "prunes to min watermark");
        // Validation against surviving entries still works.
        assert!(!l.passes(GlobalTid::new(4), &ws(&[5])));
    }

    #[test]
    fn crashed_replicas_do_not_hold_watermark() {
        let mut l = WsList::new();
        for i in 1..=5 {
            l.append(xact(i), ws(&[i as i64]));
        }
        let both = vec![ReplicaId::new(0), ReplicaId::new(1)];
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(5), &both);
        let _ = l.advance_progress(ReplicaId::new(1), GlobalTid::new(1), &both);
        assert_eq!(l.len(), 4);
        // R1 crashes; its stale watermark is dropped.
        let only0 = vec![ReplicaId::new(0)];
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(5), &only0);
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn progress_is_monotonic() {
        let mut l = WsList::new();
        for i in 1..=3 {
            l.append(xact(i), ws(&[i as i64]));
        }
        let alive = vec![ReplicaId::new(0)];
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(3), &alive);
        assert!(l.is_empty());
        // A stale (smaller) report cannot resurrect anything or regress.
        let _ = l.advance_progress(ReplicaId::new(0), GlobalTid::new(1), &alive);
        assert!(l.is_empty());
    }
}
