//! # sirep-driver
//!
//! The SI-Rep client driver — the analogue of the paper's JDBC driver
//! (§5.4): *"A client is connected to one middleware replica via a standard
//! JDBC interface [...] we provide automatic failover in case of site or
//! process crashes."*
//!
//! What it reproduces:
//!
//! - **Discovery**: instead of connecting to a fixed address, the driver
//!   asks the group for replicas willing to take load ("the middleware as a
//!   whole has a fixed IP multicast address"; replicas "respond with their
//!   IP address/port") and picks one by a pluggable [`Policy`] — the
//!   paper's §8 names load balancing as future work, so policies beyond
//!   round-robin are an extension.
//! - **Failover** on middleware crash, distinguishing the paper's three
//!   connection states:
//!   1. *no active transaction* → reconnect transparently;
//!   2. *transaction active, commit not yet submitted* → the transaction is
//!      lost; the driver surfaces a retryable error but the connection
//!      remains usable (reconnected);
//!   3. *commit submitted* → the driver reconnects and resolves the
//!      **in-doubt** transaction by its identifier: if the new replica
//!      received the writeset the recorded validation outcome is returned
//!      (possibly a fully transparent success); if it did not, uniform
//!      delivery guarantees the transaction committed nowhere.
//!
//! ```
//! use sirep_core::{Cluster, ClusterConfig, Connection};
//! use sirep_driver::{Driver, DriverConfig};
//! use std::sync::Arc;
//!
//! let cluster = Arc::new(Cluster::new(ClusterConfig::builder().replicas(3).build()));
//! cluster.execute_ddl("CREATE TABLE t (a INT, PRIMARY KEY (a))").unwrap();
//! let driver = Driver::new(Arc::clone(&cluster), DriverConfig::default());
//! let mut conn = driver.connect().unwrap();
//! conn.execute("INSERT INTO t VALUES (1)").unwrap();
//! conn.commit().unwrap();
//! ```

pub mod remote;
pub mod telemetry;

pub use remote::{NodeServer, RemoteConn, RemoteDriver, RemoteStatus};
pub use telemetry::{
    scrape_clock_offset, scrape_gauges, scrape_journal, scrape_prometheus, scrape_report,
    scrape_status, scrape_with_timeout, TelemetryReq, TelemetryResp, TelemetryServer,
    SCRAPE_TIMEOUT,
};

use sirep_common::{AbortReason, DbError};
use sirep_core::{Cluster, Connection, InDoubt, Outcome, ReplicaNode, Session, XactId};
use sirep_sql::ExecResult;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cap on the exponential in-doubt-inquiry backoff.
const BACKOFF_CAP: Duration = Duration::from_millis(100);

/// Replica choice policy (load balancing — paper §8 future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Rotate over alive replicas.
    #[default]
    RoundRobin,
    /// Pick the alive replica with the least queued replication work.
    LeastLoaded,
    /// Always prefer the lowest-numbered alive replica (deterministic;
    /// useful in tests).
    Primary,
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    pub policy: Policy,
    /// How many replicas to try before giving up on a failover.
    /// **`0` means unlimited** (keep trying while any replica is alive) —
    /// use [`DriverConfigBuilder::max_failover_attempts`] for an explicit
    /// bound.
    pub max_failover_attempts: usize,
    /// How many in-doubt inquiry rounds to attempt before declaring the
    /// service [`DbError::Unavailable`]. Each round asks one replica;
    /// between rounds the driver backs off exponentially and fails over if
    /// it can.
    pub inquiry_attempts: usize,
    /// First inter-inquiry backoff; doubles per round, capped at 100 ms.
    pub backoff_base: Duration,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        DriverConfig {
            policy: Policy::default(),
            max_failover_attempts: 0,
            inquiry_attempts: 6,
            backoff_base: Duration::from_millis(1),
        }
    }
}

impl DriverConfig {
    /// Start building a configuration. Defaults match [`Default`]:
    /// round-robin policy, unlimited failover.
    pub fn builder() -> DriverConfigBuilder {
        DriverConfigBuilder { cfg: DriverConfig::default() }
    }
}

/// Fluent construction for [`DriverConfig`]:
///
/// ```
/// use sirep_driver::{DriverConfig, Policy};
///
/// let cfg = DriverConfig::builder()
///     .policy(Policy::LeastLoaded)
///     .max_failover_attempts(3)
///     .build();
/// assert_eq!(cfg.max_failover_attempts, 3);
/// ```
#[derive(Debug, Clone)]
pub struct DriverConfigBuilder {
    cfg: DriverConfig,
}

impl DriverConfigBuilder {
    pub fn policy(mut self, policy: Policy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Bound the number of replicas tried per failover. Rejects `0` (the
    /// legacy unlimited sentinel) — say [`Self::unlimited_failover`] if
    /// that is what you mean.
    pub fn max_failover_attempts(mut self, n: usize) -> Self {
        assert!(n > 0, "0 is the legacy 'unlimited' sentinel; call unlimited_failover()");
        self.cfg.max_failover_attempts = n;
        self
    }

    /// Keep failing over while any replica is alive (the default).
    pub fn unlimited_failover(mut self) -> Self {
        self.cfg.max_failover_attempts = 0;
        self
    }

    /// Bound the in-doubt inquiry rounds (must be positive; resolution
    /// must ask at least once).
    pub fn inquiry_attempts(mut self, n: usize) -> Self {
        assert!(n > 0, "in-doubt resolution needs at least one inquiry");
        self.cfg.inquiry_attempts = n;
        self
    }

    /// First inter-inquiry backoff (doubles per round, capped at 100 ms).
    pub fn backoff_base(mut self, d: Duration) -> Self {
        self.cfg.backoff_base = d;
        self
    }

    pub fn build(self) -> DriverConfig {
        self.cfg
    }
}

/// The driver: a connection factory bound to one cluster (the "multicast
/// address" of the middleware group).
pub struct Driver {
    cluster: Arc<Cluster>,
    config: DriverConfig,
    rr: AtomicUsize,
}

impl Driver {
    pub fn new(cluster: Arc<Cluster>, config: DriverConfig) -> Driver {
        Driver { cluster, config, rr: AtomicUsize::new(0) }
    }

    /// Discovery + replica choice.
    fn discover(&self, exclude: Option<&Arc<ReplicaNode>>) -> Result<Arc<ReplicaNode>, DbError> {
        let mut alive = self.cluster.alive();
        if let Some(ex) = exclude {
            alive.retain(|n| n.id() != ex.id());
        }
        if alive.is_empty() {
            return Err(DbError::ConnectionLost { in_doubt: false });
        }
        // Failover discovery must never panic the client thread: even the
        // "cannot happen" empty cases route through DbError.
        let pick = match self.config.policy {
            Policy::RoundRobin => {
                let i = self.rr.fetch_add(1, Ordering::Relaxed) % alive.len();
                alive.get(i).map(Arc::clone)
            }
            Policy::LeastLoaded => alive.iter().min_by_key(|n| n.status().load()).map(Arc::clone),
            Policy::Primary => alive.iter().min_by_key(|n| n.id()).map(Arc::clone),
        };
        pick.ok_or(DbError::ConnectionLost { in_doubt: false })
    }

    /// Open a failover-capable connection.
    pub fn connect(&self) -> Result<DriverConnection<'_>, DbError> {
        let node = self.discover(None)?;
        Ok(DriverConnection { driver: self, session: Session::new(node), failovers: 0 })
    }
}

/// A client connection with transparent failover.
pub struct DriverConnection<'d> {
    driver: &'d Driver,
    session: Session,
    /// Total failovers performed on this connection (observable for tests
    /// and metrics).
    failovers: usize,
}

impl DriverConnection<'_> {
    pub fn failovers(&self) -> usize {
        self.failovers
    }

    /// The replica this connection is currently pinned to.
    pub fn replica(&self) -> sirep_common::ReplicaId {
        self.session.node().id()
    }

    /// JDBC autocommit mode, preserved across failovers.
    pub fn set_autocommit(&mut self, on: bool) -> Result<(), DbError> {
        self.session.set_autocommit(on)
    }

    pub fn autocommit(&self) -> bool {
        self.session.autocommit()
    }

    fn is_crash(e: &DbError) -> bool {
        matches!(
            e,
            DbError::Aborted(AbortReason::ReplicaCrashed)
                | DbError::Aborted(AbortReason::Shutdown)
                | DbError::ConnectionLost { .. }
        )
    }

    /// Reconnect to another replica. Returns an error only when no replica
    /// is left.
    fn reconnect(&mut self) -> Result<(), DbError> {
        let max = if self.driver.config.max_failover_attempts == 0 {
            usize::MAX
        } else {
            self.driver.config.max_failover_attempts
        };
        if self.failovers >= max {
            return Err(DbError::ConnectionLost { in_doubt: false });
        }
        let current = Arc::clone(self.session.node());
        let next = self.driver.discover(Some(&current))?;
        // The failover is visible in the *new* replica's journal: it is the
        // one that takes over the client.
        next.journal.record(sirep_common::EventKind::ClientFailover { from: current.id() });
        // `with_autocommit` preserves the mode without the fallible
        // `set_autocommit` round-trip (a fresh session has nothing to
        // commit, so that call could never legitimately fail anyway).
        self.session = Session::with_autocommit(next, self.session.autocommit());
        self.failovers += 1;
        Ok(())
    }
}

impl Connection for DriverConnection<'_> {
    fn execute(&mut self, sql: &str) -> Result<ExecResult, DbError> {
        let had_txn = self.session.in_transaction();
        let prev_xact = self.session.last_xact_id();
        match self.session.execute(sql) {
            Ok(r) => Ok(r),
            Err(e) if Self::is_crash(&e) => {
                // In autocommit mode the statement's implicit commit runs
                // *inside* `execute`, so this crash may sit anywhere on the
                // §5.4 case-1..3 spectrum. A fresh `last_xact_id` tells us a
                // transaction was begun for this statement — if so its
                // writeset may already have been multicast, and blindly
                // re-executing would apply the statement twice.
                let stmt_xact = if !had_txn && self.session.autocommit() {
                    self.session.last_xact_id().filter(|x| Some(*x) != prev_xact)
                } else {
                    None
                };
                if let Err(re) = self.reconnect() {
                    // No replica reachable. With an in-doubt autocommit
                    // statement outstanding this is *not* a clean
                    // connection loss — the commit may have happened.
                    return Err(if stmt_xact.is_some() { DbError::Unavailable } else { re });
                }
                if had_txn {
                    // §5.4 case 2: the transaction was local to the crashed
                    // replica and is lost; the client may retry on the (now
                    // reconnected) connection.
                    Err(DbError::Aborted(AbortReason::ReplicaCrashed))
                } else if let Some(xact) = stmt_xact {
                    // Case 3 in autocommit clothing: resolve by id first.
                    match self.resolve_in_doubt(xact) {
                        // It committed. The row count died with the origin,
                        // so report zero rather than re-running (which
                        // would double-apply).
                        Ok(()) => Ok(ExecResult::Affected(0)),
                        // It committed nowhere — replaying is safe.
                        Err(DbError::Aborted(_)) => self.session.execute(sql),
                        Err(e) => Err(e),
                    }
                } else {
                    // Case 1: nothing was in flight — fully transparent.
                    self.session.execute(sql)
                }
            }
            Err(e) => Err(e),
        }
    }

    fn commit(&mut self) -> Result<(), DbError> {
        // Capture the in-doubt identifier before submitting the commit.
        let xact = self.session.xact_id();
        match self.session.commit() {
            Ok(()) => Ok(()),
            Err(e) if Self::is_crash(&e) => {
                // §5.4 case 3: the commit was submitted but the replica
                // died. Fail over and resolve by transaction id.
                if let Err(re) = self.reconnect() {
                    // Nobody left to ask whether the commit landed.
                    return Err(if xact.is_some() { DbError::Unavailable } else { re });
                }
                let Some(xact) = xact else {
                    return Err(DbError::Aborted(AbortReason::ReplicaCrashed));
                };
                self.resolve_in_doubt(xact)
            }
            Err(e) => Err(e),
        }
    }

    fn rollback(&mut self) {
        self.session.rollback();
    }

    fn xact_id(&self) -> Option<XactId> {
        self.session.xact_id()
    }
}

impl DriverConnection<'_> {
    /// Resolve an in-doubt transaction by id, with bounded retry.
    ///
    /// Each round asks the currently pinned replica; if that replica also
    /// crashes mid-inquiry the driver backs off exponentially and fails
    /// over. Once `inquiry_attempts` rounds are exhausted (every replica
    /// down, or crashing faster than we can ask), the outcome is
    /// unknowable from here and the *terminal* [`DbError::Unavailable`] is
    /// surfaced — the transaction may or may not have committed. The old
    /// behavior was an unbounded loop that hung forever with the whole
    /// cluster down.
    fn resolve_in_doubt(&mut self, xact: XactId) -> Result<(), DbError> {
        let attempts = self.driver.config.inquiry_attempts.max(1);
        let mut backoff = self.driver.config.backoff_base;
        for round in 0..attempts {
            match self.session.node().inquire(xact) {
                Ok(InDoubt::Known(Outcome::Committed)) => return Ok(()),
                Ok(InDoubt::Known(Outcome::Aborted)) => {
                    return Err(DbError::Aborted(AbortReason::ValidationFailure));
                }
                Ok(InDoubt::NeverReceived) => {
                    // Uniform delivery: the writeset reached nobody — the
                    // transaction is simply lost, safe to retry.
                    return Err(DbError::Aborted(AbortReason::ReplicaCrashed));
                }
                Err(_) => {
                    // The replica we asked also crashed. Back off, then
                    // fail over if anyone is reachable; if not, retry the
                    // discovery next round — a recovery may be in flight.
                    if round + 1 == attempts {
                        break;
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                    let _ = self.reconnect();
                }
            }
        }
        Err(DbError::Unavailable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirep_core::ClusterConfig;

    fn cluster(n: usize) -> Arc<Cluster> {
        let c = Arc::new(Cluster::new(ClusterConfig::builder().replicas(n).build()));
        c.execute_ddl("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))").unwrap();
        c
    }

    #[test]
    fn basic_connect_and_commit() {
        let c = cluster(3);
        let d = Driver::new(Arc::clone(&c), DriverConfig::default());
        let mut conn = d.connect().unwrap();
        conn.execute("INSERT INTO kv VALUES (1, 1)").unwrap();
        conn.commit().unwrap();
        assert_eq!(conn.failovers(), 0);
    }

    #[test]
    fn round_robin_spreads_connections() {
        let c = cluster(3);
        let d = Driver::new(Arc::clone(&c), DriverConfig::default());
        let replicas: std::collections::HashSet<_> =
            (0..3).map(|_| d.connect().unwrap().replica()).collect();
        assert_eq!(replicas.len(), 3);
    }

    #[test]
    fn case1_transparent_failover_without_txn() {
        let c = cluster(3);
        let d =
            Driver::new(Arc::clone(&c), DriverConfig::builder().policy(Policy::Primary).build());
        let mut conn = d.connect().unwrap();
        conn.execute("INSERT INTO kv VALUES (1, 1)").unwrap();
        conn.commit().unwrap();
        assert!(c.quiesce(std::time::Duration::from_secs(5)));
        let victim = conn.replica();
        c.crash(victim.index());
        // No transaction was active: the next statement succeeds unnoticed.
        let r = conn.execute("SELECT v FROM kv WHERE k = 1").unwrap();
        assert_eq!(r.rows()[0][0], sirep_storage::Value::Int(1));
        conn.commit().unwrap();
        assert_eq!(conn.failovers(), 1);
        assert_ne!(conn.replica(), victim);
    }

    #[test]
    fn case2_active_txn_is_lost_but_connection_survives() {
        let c = cluster(3);
        let d =
            Driver::new(Arc::clone(&c), DriverConfig::builder().policy(Policy::Primary).build());
        let mut conn = d.connect().unwrap();
        conn.execute("INSERT INTO kv VALUES (5, 5)").unwrap(); // txn active
        c.crash(conn.replica().index());
        let err = conn.execute("INSERT INTO kv VALUES (6, 6)").unwrap_err();
        assert_eq!(err, DbError::Aborted(AbortReason::ReplicaCrashed));
        // The connection failed over; a retry of the whole txn succeeds.
        conn.execute("INSERT INTO kv VALUES (5, 5)").unwrap();
        conn.execute("INSERT INTO kv VALUES (6, 6)").unwrap();
        conn.commit().unwrap();
        assert!(c.quiesce(std::time::Duration::from_secs(5)));
    }

    #[test]
    fn least_loaded_policy_picks_alive() {
        let c = cluster(2);
        let d = Driver::new(
            Arc::clone(&c),
            DriverConfig::builder().policy(Policy::LeastLoaded).build(),
        );
        c.crash(0);
        let conn = d.connect().unwrap();
        assert_eq!(conn.replica().index(), 1);
    }

    #[test]
    fn autocommit_statement_not_double_applied_on_mid_commit_crash() {
        use sirep_common::CrashPoint;
        let c = cluster(3);
        {
            let mut s = c.session(0);
            s.execute("INSERT INTO kv VALUES (1, 1)").unwrap();
            s.commit().unwrap();
        }
        assert!(c.quiesce(std::time::Duration::from_secs(5)));
        let d =
            Driver::new(Arc::clone(&c), DriverConfig::builder().policy(Policy::Primary).build());
        let mut conn = d.connect().unwrap();
        conn.set_autocommit(true).unwrap();
        assert_eq!(conn.replica().index(), 0);
        // The replica dies after the writeset is multicast but before the
        // local commit/ack: the implicit autocommit commit is in doubt,
        // although the survivors will commit it.
        c.arm_crash_point(CrashPoint::AfterMulticastBeforeLocalCommit, 0);
        let r = conn.execute("UPDATE kv SET v = v + 1 WHERE k = 1").unwrap();
        // The origin died with the row count; zero is the documented stand-in.
        assert_eq!(r.affected(), 0);
        assert!(conn.autocommit(), "autocommit mode must survive the failover");
        assert!(conn.failovers() >= 1);
        assert!(c.quiesce(std::time::Duration::from_secs(5)));
        // Exactly one increment: the pre-fix driver re-executed the
        // statement on the new replica and produced v = 3.
        let mut check = c.session(1);
        let r = check.execute("SELECT v FROM kv WHERE k = 1").unwrap();
        assert_eq!(r.rows()[0][0], sirep_storage::Value::Int(2));
        assert!(c.audit_is_clean());
    }

    #[test]
    fn in_doubt_with_all_replicas_down_is_unavailable_not_a_hang() {
        use sirep_common::CrashPoint;
        let c = cluster(2);
        let d = Driver::new(
            Arc::clone(&c),
            DriverConfig::builder()
                .policy(Policy::Primary)
                .inquiry_attempts(4)
                .backoff_base(std::time::Duration::from_millis(1))
                .build(),
        );
        let mut conn = d.connect().unwrap();
        conn.execute("INSERT INTO kv VALUES (9, 9)").unwrap();
        // Kill the only other replica, then crash the origin mid-commit:
        // the outcome is unknowable and the pre-fix driver spun forever.
        c.crash(1);
        c.arm_crash_point(CrashPoint::AfterMulticastBeforeLocalCommit, 0);
        let err = conn.commit().unwrap_err();
        assert_eq!(err, DbError::Unavailable);
    }

    #[test]
    fn all_replicas_down_is_connection_lost() {
        let c = cluster(1);
        let d = Driver::new(Arc::clone(&c), DriverConfig::default());
        c.crash(0);
        let Err(err) = d.connect() else { panic!("connect must fail with every replica down") };
        assert!(matches!(err, DbError::ConnectionLost { .. }));
    }
}
