//! Remote client/server protocol: the driver over a real socket.
//!
//! The in-process [`Driver`](crate::Driver) hands each connection an
//! `Arc<ReplicaNode>`; in a multi-process deployment the middleware runs in
//! its own process and clients reach it over TCP. This module carries the
//! *same* JDBC-style surface and the same §5.4 failover semantics across a
//! length-prefixed [`Wire`] frame protocol:
//!
//! - [`NodeServer`] — per-middleware-process listener; one thread and one
//!   [`Session`] per client connection, so statement/commit ordering per
//!   client is exactly the in-process driver's.
//! - [`RemoteDriver`]/[`RemoteConn`] — client side; mirrors
//!   [`DriverConnection`](crate::DriverConnection): transparent failover to
//!   another node address on connection loss, and in-doubt commit
//!   resolution via [`ClientReq::Inquire`] against a surviving node.
//!
//! One §5.4 case is weaker than in-process: an **autocommit** statement
//! whose response frame is lost leaves the client without the transaction
//! id (the id rides on the response), so there is nobody it can ask whether
//! the implicit commit happened. The in-process driver peeks at the shared
//! session to recover the id; a remote client cannot. That case surfaces as
//! [`DbError::ConnectionLost`]` { in_doubt: true }` — exactly the "result
//! unknown, do not blindly retry non-idempotent work" exception the paper
//! prescribes when failover cannot mask a crash.

use sirep_common::wire::{read_frame, write_frame, Wire, WireError, WireReader};
use sirep_common::{AbortReason, DbError};
use sirep_core::{Cluster, Connection, InDoubt, Outcome, Session, XactId};
use sirep_sql::ExecResult;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Upper bound on one reconnect-backoff step (matches the in-process
/// driver's `BACKOFF_CAP`).
const BACKOFF_CAP: Duration = Duration::from_millis(100);

/// One request frame, client → node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientReq {
    /// Execute one SQL statement in this client's session.
    Exec {
        sql: String,
    },
    Commit,
    Rollback,
    SetAutocommit(bool),
    /// §5.4 in-doubt inquiry: what happened to `xact`?
    Inquire {
        xact: XactId,
    },
    /// Observability probe (used by workloads to await convergence).
    Status,
    Ping,
}

impl Wire for ClientReq {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientReq::Exec { sql } => {
                out.push(0);
                sql.encode(out);
            }
            ClientReq::Commit => out.push(1),
            ClientReq::Rollback => out.push(2),
            ClientReq::SetAutocommit(on) => {
                out.push(3);
                on.encode(out);
            }
            ClientReq::Inquire { xact } => {
                out.push(4);
                xact.encode(out);
            }
            ClientReq::Status => out.push(5),
            ClientReq::Ping => out.push(6),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => ClientReq::Exec { sql: String::decode(r)? },
            1 => ClientReq::Commit,
            2 => ClientReq::Rollback,
            3 => ClientReq::SetAutocommit(bool::decode(r)?),
            4 => ClientReq::Inquire { xact: XactId::decode(r)? },
            5 => ClientReq::Status,
            6 => ClientReq::Ping,
            _ => return Err(WireError::Corrupt("client req tag")),
        })
    }
}

/// Node-health snapshot returned by [`ClientReq::Status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteStatus {
    pub replica: u64,
    pub alive: bool,
    /// `lastvalidated_tid` — certification progress at this node.
    pub last_validated: u64,
    /// Validated writesets not yet committed here.
    pub queued: u64,
    /// Local transactions awaiting a validation outcome.
    pub pending_local: u64,
    /// Committed transactions observed by this node.
    pub commits: u64,
    /// 1-copy-SI auditor violations recorded in this process.
    pub audit_violations: u64,
}

impl Wire for RemoteStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        self.replica.encode(out);
        self.alive.encode(out);
        self.last_validated.encode(out);
        self.queued.encode(out);
        self.pending_local.encode(out);
        self.commits.encode(out);
        self.audit_violations.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RemoteStatus {
            replica: u64::decode(r)?,
            alive: bool::decode(r)?,
            last_validated: u64::decode(r)?,
            queued: u64::decode(r)?,
            pending_local: u64::decode(r)?,
            commits: u64::decode(r)?,
            audit_violations: u64::decode(r)?,
        })
    }
}

/// One response frame, node → client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientResp {
    /// Statement result. `xact` is the session's most recent transaction id
    /// — the client records it so a later crashed commit can be resolved by
    /// inquiry on another node.
    Exec {
        result: ExecResult,
        xact: Option<XactId>,
    },
    /// Commit / rollback / set-autocommit acknowledged.
    Done,
    Resolved(InDoubtWire),
    Status(RemoteStatus),
    Pong,
    Err(DbError),
}

/// [`InDoubt`] as it crosses the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InDoubtWire {
    Committed,
    Aborted,
    NeverReceived,
}

impl From<InDoubt> for InDoubtWire {
    fn from(d: InDoubt) -> InDoubtWire {
        match d {
            InDoubt::Known(Outcome::Committed) => InDoubtWire::Committed,
            InDoubt::Known(Outcome::Aborted) => InDoubtWire::Aborted,
            InDoubt::NeverReceived => InDoubtWire::NeverReceived,
        }
    }
}

impl Wire for InDoubtWire {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            InDoubtWire::Committed => 0,
            InDoubtWire::Aborted => 1,
            InDoubtWire::NeverReceived => 2,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => InDoubtWire::Committed,
            1 => InDoubtWire::Aborted,
            2 => InDoubtWire::NeverReceived,
            _ => return Err(WireError::Corrupt("in-doubt wire tag")),
        })
    }
}

impl Wire for ClientResp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientResp::Exec { result, xact } => {
                out.push(0);
                result.encode(out);
                xact.encode(out);
            }
            ClientResp::Done => out.push(1),
            ClientResp::Resolved(d) => {
                out.push(2);
                d.encode(out);
            }
            ClientResp::Status(s) => {
                out.push(3);
                s.encode(out);
            }
            ClientResp::Pong => out.push(4),
            ClientResp::Err(e) => {
                out.push(5);
                e.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => ClientResp::Exec { result: ExecResult::decode(r)?, xact: Option::decode(r)? },
            1 => ClientResp::Done,
            2 => ClientResp::Resolved(InDoubtWire::decode(r)?),
            3 => ClientResp::Status(RemoteStatus::decode(r)?),
            4 => ClientResp::Pong,
            5 => ClientResp::Err(DbError::decode(r)?),
            _ => return Err(WireError::Corrupt("client resp tag")),
        })
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// TCP front-end for one middleware replica: accepts client connections and
/// serves each from its own thread + [`Session`], exactly like a pool of
/// in-process driver connections.
pub struct NodeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl NodeServer {
    /// Bind `bind` (e.g. `"127.0.0.1:0"`) and serve sessions against node
    /// `k` of `cluster`.
    pub fn spawn(bind: &str, cluster: Arc<Cluster>, k: usize) -> io::Result<NodeServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let accept = thread::Builder::new().name(format!("node-server-{k}")).spawn(move || {
            for conn in listener.incoming() {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                // Client requests are small request/response frames; Nagle
                // would add a full RTT of buffering to every commit ack.
                let _ = stream.set_nodelay(true);
                let cluster = cluster.clone();
                let _ = thread::Builder::new()
                    .name("node-server-conn".into())
                    .spawn(move || serve_conn(stream, &cluster, k));
            }
        })?;
        Ok(NodeServer { addr, stop, accept: Some(accept) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections. Existing client connections drain on
    /// their own when the peer hangs up or the node dies.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Nudge the accept loop out of `incoming()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_conn(stream: TcpStream, cluster: &Arc<Cluster>, k: usize) {
    let mut session = Session::new(cluster.node(k));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        // Any read error — disconnect, malformed frame — ends the
        // connection; an open transaction dies with its session, which is
        // precisely the §5.4 crash semantics the client failover expects.
        let Ok(req) = read_frame::<_, ClientReq>(&mut reader) else { return };
        let resp = handle_req(&mut session, cluster, req);
        if write_frame(&mut writer, &resp).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

fn handle_req(session: &mut Session, cluster: &Arc<Cluster>, req: ClientReq) -> ClientResp {
    match req {
        ClientReq::Exec { sql } => match session.execute(&sql) {
            Ok(result) => ClientResp::Exec { result, xact: session.last_xact_id() },
            Err(e) => ClientResp::Err(e),
        },
        ClientReq::Commit => match session.commit() {
            Ok(()) => ClientResp::Done,
            Err(e) => ClientResp::Err(e),
        },
        ClientReq::Rollback => {
            session.rollback();
            ClientResp::Done
        }
        ClientReq::SetAutocommit(on) => match session.set_autocommit(on) {
            Ok(()) => ClientResp::Done,
            Err(e) => ClientResp::Err(e),
        },
        ClientReq::Inquire { xact } => match session.node().inquire(xact) {
            Ok(d) => ClientResp::Resolved(d.into()),
            Err(e) => ClientResp::Err(e),
        },
        ClientReq::Status => {
            let s = session.node().status();
            ClientResp::Status(RemoteStatus {
                replica: s.replica.raw(),
                alive: s.alive,
                last_validated: s.last_validated.raw(),
                queued: s.queued as u64,
                pending_local: s.pending_local as u64,
                commits: s.metrics.commits(),
                audit_violations: cluster.audit_violations().len() as u64,
            })
        }
        ClientReq::Ping => ClientResp::Pong,
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Client-side entry point: a list of node addresses plus failover policy.
pub struct RemoteDriver {
    addrs: Vec<String>,
    /// Rounds of in-doubt inquiry before giving up with `Unavailable`.
    inquiry_attempts: usize,
    /// Reconnect sweeps over the address list before `Unavailable`.
    connect_sweeps: usize,
}

impl RemoteDriver {
    pub fn new(addrs: Vec<String>) -> RemoteDriver {
        RemoteDriver { addrs, inquiry_attempts: 6, connect_sweeps: 5 }
    }

    pub fn inquiry_attempts(mut self, n: usize) -> RemoteDriver {
        self.inquiry_attempts = n.max(1);
        self
    }

    pub fn connect_sweeps(mut self, n: usize) -> RemoteDriver {
        self.connect_sweeps = n.max(1);
        self
    }

    /// Open a connection to the first reachable node.
    pub fn connect(&self) -> Result<RemoteConn<'_>, DbError> {
        let mut conn = RemoteConn {
            driver: self,
            link: None,
            addr_idx: 0,
            autocommit: false,
            in_txn: false,
            last_xact: None,
            failovers: 0,
        };
        conn.reconnect(0)?;
        Ok(conn)
    }
}

struct Link {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// One client connection, failing over across the driver's address list.
pub struct RemoteConn<'d> {
    driver: &'d RemoteDriver,
    link: Option<Link>,
    addr_idx: usize,
    autocommit: bool,
    in_txn: bool,
    /// Most recent transaction id reported by the server — the handle for
    /// §5.4 in-doubt resolution after a crashed commit.
    last_xact: Option<XactId>,
    failovers: usize,
}

impl RemoteConn<'_> {
    /// How many times this connection failed over to another node.
    pub fn failovers(&self) -> usize {
        self.failovers
    }

    /// The address currently connected to.
    pub fn addr(&self) -> &str {
        self.driver.addrs.get(self.addr_idx).map_or("", String::as_str)
    }

    pub fn autocommit(&self) -> bool {
        self.autocommit
    }

    /// Execute one statement, failing over on connection loss (§5.4 cases
    /// 1–2). Inside an explicit transaction a crash loses the transaction:
    /// the statement returns [`AbortReason::ReplicaCrashed`] and the client
    /// may retry from BEGIN on the (already re-connected) connection.
    pub fn execute(&mut self, sql: &str) -> Result<ExecResult, DbError> {
        match self.request(&ClientReq::Exec { sql: sql.into() }) {
            Ok(ClientResp::Exec { result, xact }) => {
                self.last_xact = xact.or(self.last_xact);
                self.in_txn = !self.autocommit;
                Ok(result)
            }
            Ok(other) => Err(protocol_err("exec", &other)),
            Err(e) if is_crash(&e) => self.exec_crashed(e),
            Err(e) => Err(e),
        }
    }

    fn exec_crashed(&mut self, e: DbError) -> Result<ExecResult, DbError> {
        let was_in_txn = std::mem::replace(&mut self.in_txn, false);
        let autocommit_in_flight = self.autocommit && matches!(e, DbError::ConnectionLost { .. });
        self.failovers += 1;
        self.reconnect(self.addr_idx + 1)?;
        if was_in_txn {
            // Case 2: statements of the open transaction are lost with the
            // crashed node; surface a retryable abort on the new node.
            Err(DbError::Aborted(AbortReason::ReplicaCrashed))
        } else if autocommit_in_flight {
            // The implicit commit may or may not have happened and the
            // response carrying its transaction id is gone — nothing to
            // inquire about (see module docs).
            Err(DbError::ConnectionLost { in_doubt: true })
        } else {
            Err(DbError::Aborted(AbortReason::ReplicaCrashed))
        }
    }

    /// Commit the open transaction; a crashed node triggers in-doubt
    /// resolution by inquiry on a surviving node (§5.4 case 3).
    pub fn commit(&mut self) -> Result<(), DbError> {
        let xact = self.last_xact;
        self.in_txn = false;
        match self.request(&ClientReq::Commit) {
            Ok(ClientResp::Done) => Ok(()),
            Ok(other) => Err(protocol_err("commit", &other)),
            Err(e) if is_crash(&e) => {
                self.failovers += 1;
                self.reconnect(self.addr_idx + 1)?;
                match xact {
                    Some(x) => self.resolve_in_doubt(x),
                    // No statement ever ran — nothing could have committed.
                    None => Err(DbError::Aborted(AbortReason::ReplicaCrashed)),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Roll back the open transaction. A crash achieves the rollback (the
    /// transaction died with the node), so after failover this succeeds.
    pub fn rollback(&mut self) -> Result<(), DbError> {
        self.in_txn = false;
        match self.request(&ClientReq::Rollback) {
            Ok(ClientResp::Done) => Ok(()),
            Ok(other) => Err(protocol_err("rollback", &other)),
            Err(e) if is_crash(&e) => {
                self.failovers += 1;
                self.reconnect(self.addr_idx + 1)?;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    pub fn set_autocommit(&mut self, on: bool) -> Result<(), DbError> {
        match self.request(&ClientReq::SetAutocommit(on)) {
            Ok(ClientResp::Done) => {
                self.autocommit = on;
                if on {
                    self.in_txn = false;
                }
                Ok(())
            }
            Ok(other) => Err(protocol_err("set_autocommit", &other)),
            Err(e) => Err(e),
        }
    }

    /// Status of the node currently connected to.
    pub fn status(&mut self) -> Result<RemoteStatus, DbError> {
        match self.request(&ClientReq::Status) {
            Ok(ClientResp::Status(s)) => Ok(s),
            Ok(other) => Err(protocol_err("status", &other)),
            Err(e) => Err(e),
        }
    }

    pub fn ping(&mut self) -> Result<(), DbError> {
        match self.request(&ClientReq::Ping) {
            Ok(ClientResp::Pong) => Ok(()),
            Ok(other) => Err(protocol_err("ping", &other)),
            Err(e) => Err(e),
        }
    }

    /// Ask the connected node what happened to `xact`.
    pub fn inquire(&mut self, xact: XactId) -> Result<InDoubtWire, DbError> {
        match self.request(&ClientReq::Inquire { xact }) {
            Ok(ClientResp::Resolved(d)) => Ok(d),
            Ok(other) => Err(protocol_err("inquire", &other)),
            Err(e) => Err(e),
        }
    }

    /// §5.4 case 3 on the client side: keep asking surviving nodes about
    /// `xact` until one answers (bounded rounds, exponential backoff).
    fn resolve_in_doubt(&mut self, xact: XactId) -> Result<(), DbError> {
        let mut backoff = Duration::from_millis(5);
        for round in 0..self.driver.inquiry_attempts {
            if round > 0 {
                thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
            match self.request(&ClientReq::Inquire { xact }) {
                Ok(ClientResp::Resolved(InDoubtWire::Committed)) => return Ok(()),
                Ok(ClientResp::Resolved(InDoubtWire::Aborted)) => {
                    return Err(DbError::Aborted(AbortReason::ValidationFailure));
                }
                Ok(ClientResp::Resolved(InDoubtWire::NeverReceived)) => {
                    return Err(DbError::Aborted(AbortReason::ReplicaCrashed));
                }
                // Node can't answer yet (e.g. still recovering) or died
                // under us — hop to the next one and ask again.
                Ok(_) | Err(_) => {
                    let _ = self.reconnect(self.addr_idx + 1);
                }
            }
        }
        Err(DbError::Unavailable)
    }

    /// One request/response round trip on the current link. A transport
    /// failure drops the link and reports as `ConnectionLost` (the response,
    /// if any, is gone); a server-side `DbError` comes back as `Err` too so
    /// callers pattern-match one error channel.
    fn request(&mut self, req: &ClientReq) -> Result<ClientResp, DbError> {
        let link = self.link.as_mut().ok_or(DbError::ConnectionLost { in_doubt: false })?;
        let io_result = write_frame(&mut link.writer, req)
            .and_then(|()| link.writer.flush())
            .and_then(|()| read_frame::<_, ClientResp>(&mut link.reader));
        match io_result {
            Ok(ClientResp::Err(e)) => Err(e),
            Ok(resp) => Ok(resp),
            Err(_) => {
                self.link = None;
                Err(DbError::ConnectionLost { in_doubt: false })
            }
        }
    }

    /// Sweep the address list (starting at `from`) until a node accepts and
    /// the session's autocommit mode is re-established.
    fn reconnect(&mut self, from: usize) -> Result<(), DbError> {
        let n = self.driver.addrs.len();
        let mut backoff = Duration::from_millis(5);
        for sweep in 0..self.driver.connect_sweeps {
            if sweep > 0 {
                thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
            for step in 0..n {
                let idx = (from + step) % n;
                let Some(addr) = self.driver.addrs.get(idx) else { continue };
                let Ok(stream) = TcpStream::connect(addr) else { continue };
                // Small frames both ways: disable Nagle on the client leg
                // too, or each statement pays a delayed-ack round trip.
                let _ = stream.set_nodelay(true);
                let Ok(rstream) = stream.try_clone() else { continue };
                self.link =
                    Some(Link { reader: BufReader::new(rstream), writer: BufWriter::new(stream) });
                self.addr_idx = idx;
                // Fresh server session defaults to autocommit off; replay
                // this connection's mode so semantics survive failover.
                match self.request(&ClientReq::SetAutocommit(self.autocommit)) {
                    Ok(ClientResp::Done) => return Ok(()),
                    _ => self.link = None,
                }
            }
        }
        Err(DbError::Unavailable)
    }
}

/// Crash-shaped errors that should trigger failover, mirroring the
/// in-process driver's `is_crash`. A lost link reports as `ConnectionLost`.
fn is_crash(e: &DbError) -> bool {
    matches!(
        e,
        DbError::Aborted(AbortReason::ReplicaCrashed)
            | DbError::Aborted(AbortReason::Shutdown)
            | DbError::ConnectionLost { .. }
    )
}

fn protocol_err(what: &str, got: &ClientResp) -> DbError {
    DbError::Internal(format!("protocol violation: unexpected response to {what}: {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirep_core::ClusterConfig;
    use sirep_gcs::GroupConfig;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire();
        assert_eq!(&T::from_wire(&bytes).expect("decode"), v);
        for cut in 0..bytes.len() {
            assert!(T::from_wire(&bytes[..cut]).is_err(), "truncation must fail");
        }
    }

    #[test]
    fn request_frames_round_trip() {
        round_trip(&ClientReq::Exec { sql: "SELECT * FROM t".into() });
        round_trip(&ClientReq::Commit);
        round_trip(&ClientReq::Rollback);
        round_trip(&ClientReq::SetAutocommit(true));
        round_trip(&ClientReq::Inquire {
            xact: XactId::new(sirep_common::ReplicaId::new(2), XactId::seq_base(1) + 9),
        });
        round_trip(&ClientReq::Status);
        round_trip(&ClientReq::Ping);
        assert!(ClientReq::from_wire(&[99]).is_err());
    }

    #[test]
    fn response_frames_round_trip() {
        round_trip(&ClientResp::Exec {
            result: ExecResult::Rows {
                columns: vec!["a".into(), "b".into()],
                rows: vec![vec![
                    sirep_storage::Value::Int(1),
                    sirep_storage::Value::Text("x".into()),
                ]],
            },
            xact: Some(XactId::new(sirep_common::ReplicaId::new(0), 3)),
        });
        round_trip(&ClientResp::Exec { result: ExecResult::Affected(7), xact: None });
        round_trip(&ClientResp::Exec { result: ExecResult::Created, xact: None });
        round_trip(&ClientResp::Done);
        round_trip(&ClientResp::Resolved(InDoubtWire::Committed));
        round_trip(&ClientResp::Resolved(InDoubtWire::Aborted));
        round_trip(&ClientResp::Resolved(InDoubtWire::NeverReceived));
        round_trip(&ClientResp::Status(RemoteStatus {
            replica: 2,
            alive: true,
            last_validated: 41,
            queued: 1,
            pending_local: 0,
            commits: 40,
            audit_violations: 0,
        }));
        round_trip(&ClientResp::Pong);
        round_trip(&ClientResp::Err(DbError::Aborted(AbortReason::SerializationFailure)));
        round_trip(&ClientResp::Err(DbError::DuplicateKey("k".into())));
        assert!(ClientResp::from_wire(&[99]).is_err());
    }

    fn cluster_and_servers(n: usize) -> (Arc<Cluster>, Vec<NodeServer>, Vec<String>) {
        let cluster = Arc::new(Cluster::new(
            ClusterConfig::builder().replicas(n).gcs(GroupConfig::instant()).build(),
        ));
        cluster.execute_ddl("CREATE TABLE t (id INT, body TEXT, PRIMARY KEY (id))").expect("ddl");
        let servers: Vec<NodeServer> = (0..n)
            .map(|k| NodeServer::spawn("127.0.0.1:0", cluster.clone(), k).expect("bind"))
            .collect();
        let addrs = servers.iter().map(|s| s.addr().to_string()).collect();
        (cluster, servers, addrs)
    }

    #[test]
    fn statements_and_transactions_over_the_wire() {
        let (_cluster, _servers, addrs) = cluster_and_servers(2);
        let driver = RemoteDriver::new(addrs);
        let mut conn = driver.connect().expect("connect");
        conn.ping().expect("ping");

        conn.set_autocommit(true).expect("autocommit on");
        let r = conn.execute("INSERT INTO t VALUES (1, 'one')").expect("insert");
        assert_eq!(r, ExecResult::Affected(1));

        conn.set_autocommit(false).expect("autocommit off");
        conn.execute("INSERT INTO t VALUES (2, 'two')").expect("insert in txn");
        conn.commit().expect("commit");

        conn.execute("INSERT INTO t VALUES (3, 'three')").expect("insert");
        conn.rollback().expect("rollback");

        let rows = conn.execute("SELECT id FROM t ORDER BY id").expect("select");
        let ExecResult::Rows { rows, .. } = rows else { panic!("expected rows") };
        assert_eq!(rows.len(), 2, "rolled-back row must be invisible: {rows:?}");
        conn.commit().expect("read-only commit");

        let status = conn.status().expect("status");
        assert!(status.alive);
        assert_eq!(status.audit_violations, 0);
    }

    #[test]
    fn db_errors_cross_the_wire_intact() {
        let (_cluster, _servers, addrs) = cluster_and_servers(1);
        let driver = RemoteDriver::new(addrs);
        let mut conn = driver.connect().expect("connect");
        conn.set_autocommit(true).expect("autocommit");
        conn.execute("INSERT INTO t VALUES (1, 'one')").expect("insert");
        let dup = conn.execute("INSERT INTO t VALUES (1, 'again')");
        assert!(matches!(dup, Err(DbError::DuplicateKey(_))), "got {dup:?}");
        let missing = conn.execute("SELECT * FROM nope");
        assert!(matches!(missing, Err(DbError::UnknownTable(_))), "got {missing:?}");
        let parse = conn.execute("FROB the database");
        assert!(matches!(parse, Err(DbError::Parse(_))), "got {parse:?}");
    }

    #[test]
    fn failover_masks_a_crashed_node() {
        let (cluster, _servers, addrs) = cluster_and_servers(3);
        let driver = RemoteDriver::new(addrs);
        let mut conn = driver.connect().expect("connect");
        conn.set_autocommit(false).expect("autocommit off");
        conn.execute("INSERT INTO t VALUES (10, 'doomed')").expect("insert");

        cluster.crash(0);

        // §5.4 case 2: the open transaction is lost, the connection is not.
        let lost = conn.execute("INSERT INTO t VALUES (11, 'after crash')");
        assert_eq!(lost, Err(DbError::Aborted(AbortReason::ReplicaCrashed)));
        assert_eq!(conn.failovers(), 1);

        // Retry the business transaction on the failed-over connection.
        conn.execute("INSERT INTO t VALUES (10, 'retried')").expect("retry insert");
        conn.execute("INSERT INTO t VALUES (11, 'retried')").expect("retry insert");
        conn.commit().expect("commit after failover");
        let rows = conn.execute("SELECT id FROM t ORDER BY id").expect("select");
        assert_eq!(rows.rows().len(), 2);
        conn.commit().expect("close read txn");
    }

    #[test]
    fn crashed_commit_resolves_by_inquiry_on_a_survivor() {
        let (cluster, _servers, addrs) = cluster_and_servers(3);
        let driver = RemoteDriver::new(addrs);
        let mut conn = driver.connect().expect("connect");
        conn.set_autocommit(false).expect("autocommit off");
        conn.execute("INSERT INTO t VALUES (20, 'in doubt')").expect("insert");

        cluster.crash(0);

        // §5.4 case 3: the commit's fate is resolved by asking a survivor.
        // The writeset was never multicast (crash before submit), so uniform
        // delivery guarantees it committed nowhere.
        let r = conn.commit();
        assert_eq!(r, Err(DbError::Aborted(AbortReason::ReplicaCrashed)), "got {r:?}");

        let rows = conn.execute("SELECT id FROM t").expect("select on survivor");
        assert_eq!(rows.rows().len(), 0, "in-doubt txn must not have committed");
        conn.commit().expect("close read txn");
    }

    #[test]
    fn connect_skips_dead_addresses() {
        let (_cluster, _servers, mut addrs) = cluster_and_servers(1);
        // A listener that is already gone: connection refused.
        let dead = TcpListener::bind("127.0.0.1:0").expect("bind");
        let dead_addr = dead.local_addr().expect("addr").to_string();
        drop(dead);
        addrs.insert(0, dead_addr);

        let driver = RemoteDriver::new(addrs);
        let mut conn = driver.connect().expect("connect must skip the dead node");
        conn.ping().expect("ping");
        assert_eq!(conn.addr(), conn.driver.addrs[1]);
    }
}
