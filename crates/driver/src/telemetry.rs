//! Per-node telemetry service + scrape client: the cross-process
//! observability plane (DESIGN.md §15).
//!
//! Every `sirep-cluster` node process embeds a [`TelemetryServer`] next to
//! its client-facing [`NodeServer`](crate::NodeServer). It answers
//! [`Wire`]-framed scrape requests with point-in-time snapshots:
//!
//! - [`TelemetryReq::Status`] — one [`NodeStatus`] per replica hosted here;
//! - [`TelemetryReq::Report`] — the process's merged [`ClusterReport`]
//!   (counters, stage histograms, gauges, transport rollup, auditor
//!   violations, per-node statuses);
//! - [`TelemetryReq::Prometheus`] — the report rendered as Prometheus text;
//! - [`TelemetryReq::Journal`] — the raw protocol event journals, for the
//!   scraped-journal auditor and the merged Perfetto trace;
//! - [`TelemetryReq::Gauges`] — just the queue-depth gauge rollup;
//! - [`TelemetryReq::ClockProbe`] — the clock handshake: the node samples
//!   its own journal clock around a live sequencer time probe and returns
//!   the signed offset that maps its journal timestamps onto the
//!   sequencer's timeline (`0` on the sim transport, which shares one
//!   process and one epoch anyway).
//!
//! **Lock discipline**: every response is fully materialized (owned data,
//! short internal locks inside `Cluster` accessors) *before* the first
//! response byte is written — no node-state lock is ever held across a
//! socket write, so a stalled scraper cannot back-pressure the commit path.
//!
//! **Scrape totality**: the client helpers put a timeout on the socket and
//! decode with the same total `Wire` discipline as the transport tier — a
//! node killed mid-frame yields `Err`, never a panic or a hang.

use sirep_common::wire::{read_frame, write_frame, Wire, WireError, WireReader};
use sirep_common::{Event, GaugeSnapshot, ReplicaId};
use sirep_core::{Cluster, ClusterReport, NodeStatus, Transport};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Default socket timeout for scrape round trips: long enough for a busy
/// node to snapshot, short enough that `report` over a dead node fails
/// promptly.
pub const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// One telemetry request frame, scraper → node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryReq {
    /// Per-replica status snapshots for every replica this process hosts.
    Status,
    /// The process-local merged [`ClusterReport`].
    Report,
    /// The report rendered in Prometheus text exposition format.
    Prometheus,
    /// The raw protocol event journals (for offline audit / trace merge).
    Journal,
    /// The queue-depth gauge rollup only.
    Gauges,
    /// Run the clock handshake against the sequencer and report the offset.
    ClockProbe,
}

impl Wire for TelemetryReq {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            TelemetryReq::Status => 0,
            TelemetryReq::Report => 1,
            TelemetryReq::Prometheus => 2,
            TelemetryReq::Journal => 3,
            TelemetryReq::Gauges => 4,
            TelemetryReq::ClockProbe => 5,
        });
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => TelemetryReq::Status,
            1 => TelemetryReq::Report,
            2 => TelemetryReq::Prometheus,
            3 => TelemetryReq::Journal,
            4 => TelemetryReq::Gauges,
            5 => TelemetryReq::ClockProbe,
            _ => return Err(WireError::Corrupt("telemetry req tag")),
        })
    }
}

/// One telemetry response frame, node → scraper. (No `PartialEq`:
/// [`ClusterReport`] carries live atomic counters; equality is
/// byte-equality of the wire form.)
#[derive(Debug, Clone)]
pub enum TelemetryResp {
    Status(Vec<NodeStatus>),
    Report(Box<ClusterReport>),
    Prometheus(String),
    Journal(Vec<(ReplicaId, Vec<Event>)>),
    Gauges(GaugeSnapshot),
    /// Signed nanoseconds to *add* to this node's journal timestamps to land
    /// them on the sequencer's timeline.
    Clock {
        offset_ns: i64,
    },
    /// The node could not answer (e.g. the sequencer was unreachable during
    /// a clock probe).
    Err(String),
}

impl Wire for TelemetryResp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TelemetryResp::Status(statuses) => {
                out.push(0);
                statuses.encode(out);
            }
            TelemetryResp::Report(report) => {
                out.push(1);
                report.encode(out);
            }
            TelemetryResp::Prometheus(text) => {
                out.push(2);
                text.encode(out);
            }
            TelemetryResp::Journal(journals) => {
                out.push(3);
                journals.encode(out);
            }
            TelemetryResp::Gauges(gauges) => {
                out.push(4);
                gauges.encode(out);
            }
            TelemetryResp::Clock { offset_ns } => {
                out.push(5);
                offset_ns.encode(out);
            }
            TelemetryResp::Err(msg) => {
                out.push(6);
                msg.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match u8::decode(r)? {
            0 => TelemetryResp::Status(Vec::<NodeStatus>::decode(r)?),
            1 => TelemetryResp::Report(Box::new(ClusterReport::decode(r)?)),
            2 => TelemetryResp::Prometheus(String::decode(r)?),
            3 => TelemetryResp::Journal(Vec::<(ReplicaId, Vec<Event>)>::decode(r)?),
            4 => TelemetryResp::Gauges(GaugeSnapshot::decode(r)?),
            5 => TelemetryResp::Clock { offset_ns: i64::decode(r)? },
            6 => TelemetryResp::Err(String::decode(r)?),
            _ => return Err(WireError::Corrupt("telemetry resp tag")),
        })
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Scrape endpoint embedded in every node process: accepts connections,
/// serves any number of request frames per connection, one thread per
/// scraper (scrapers are few and short-lived).
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `bind` (e.g. `"127.0.0.1:0"`) and serve telemetry for `cluster`.
    pub fn spawn(bind: &str, cluster: Arc<Cluster>) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let accept = thread::Builder::new().name("telemetry-server".into()).spawn(move || {
            for conn in listener.incoming() {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                let Ok(stream) = conn else { continue };
                // Scrape responses are single small frames; don't let Nagle
                // hold them back.
                let _ = stream.set_nodelay(true);
                let cluster = cluster.clone();
                let _ = thread::Builder::new()
                    .name("telemetry-conn".into())
                    .spawn(move || serve_scraper(stream, &cluster));
            }
        })?;
        Ok(TelemetryServer { addr, stop, accept: Some(accept) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new scrapers.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_scraper(mut stream: TcpStream, cluster: &Arc<Cluster>) {
    // A scraper that stalls mid-request must not pin this thread forever.
    let _ = stream.set_read_timeout(Some(SCRAPE_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SCRAPE_TIMEOUT));
    loop {
        let Ok(req) = read_frame::<_, TelemetryReq>(&mut stream) else { return };
        // Materialize the whole response before writing: `Cluster` accessors
        // take their internal locks briefly and return owned data, so no
        // shared lock spans the socket write below.
        let resp = handle_req(cluster, req);
        if write_frame(&mut stream, &resp).is_err() {
            return;
        }
    }
}

fn handle_req(cluster: &Arc<Cluster>, req: TelemetryReq) -> TelemetryResp {
    match req {
        TelemetryReq::Status => {
            TelemetryResp::Status(cluster.nodes().iter().map(|n| n.status()).collect())
        }
        TelemetryReq::Report => TelemetryResp::Report(Box::new(cluster.metrics())),
        TelemetryReq::Prometheus => TelemetryResp::Prometheus(cluster.metrics().prometheus_text()),
        TelemetryReq::Journal => TelemetryResp::Journal(cluster.journal_events()),
        TelemetryReq::Gauges => TelemetryResp::Gauges(cluster.metrics().gauges),
        TelemetryReq::ClockProbe => match clock_probe(cluster) {
            Ok(offset_ns) => TelemetryResp::Clock { offset_ns },
            Err(e) => TelemetryResp::Err(format!("clock probe failed: {e}")),
        },
    }
}

/// The clock handshake: sample this process's journal clock around a live
/// sequencer time probe; the probe's midpoint is the best estimate of when
/// the sequencer read its clock, so `seq_now - midpoint` maps journal time
/// onto sequencer time. On the sim transport every replica already shares
/// one epoch, so the offset is zero by construction.
fn clock_probe(cluster: &Arc<Cluster>) -> io::Result<i64> {
    match &cluster.config().transport {
        Transport::Sim => Ok(0),
        Transport::Tcp { sequencer } => {
            let t0 = cluster.epoch_elapsed_ns();
            let seq_now = sirep_gcs::probe_seq_time(sequencer)?;
            let t1 = cluster.epoch_elapsed_ns();
            let midpoint = t0 + (t1 - t0) / 2;
            Ok(seq_now as i64 - midpoint as i64)
        }
    }
}

// ---------------------------------------------------------------------------
// Scrape client
// ---------------------------------------------------------------------------

/// One request/response round trip with an explicit timeout. Any transport
/// or decode failure — connection refused, node killed mid-frame, corrupt
/// bytes — is an `Err`; decode is total, so malicious or truncated input
/// cannot panic, and the timeout bounds a node that stops mid-response.
pub fn scrape_with_timeout(
    addr: &str,
    req: TelemetryReq,
    timeout: Duration,
) -> io::Result<TelemetryResp> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_frame(&mut stream, &req)?;
    read_frame(&mut stream)
}

fn scrape(addr: &str, req: TelemetryReq) -> io::Result<TelemetryResp> {
    scrape_with_timeout(addr, req, SCRAPE_TIMEOUT)
}

fn unexpected(what: &str, got: TelemetryResp) -> io::Error {
    let msg = match got {
        TelemetryResp::Err(e) => format!("telemetry {what}: node reported: {e}"),
        other => format!("telemetry {what}: unexpected response {other:?}"),
    };
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Scrape one [`NodeStatus`] per replica hosted at `addr`.
pub fn scrape_status(addr: &str) -> io::Result<Vec<NodeStatus>> {
    match scrape(addr, TelemetryReq::Status)? {
        TelemetryResp::Status(s) => Ok(s),
        other => Err(unexpected("status", other)),
    }
}

/// Scrape the process-local merged [`ClusterReport`] at `addr`.
pub fn scrape_report(addr: &str) -> io::Result<ClusterReport> {
    match scrape(addr, TelemetryReq::Report)? {
        TelemetryResp::Report(r) => Ok(*r),
        other => Err(unexpected("report", other)),
    }
}

/// Scrape the Prometheus text exposition at `addr`.
pub fn scrape_prometheus(addr: &str) -> io::Result<String> {
    match scrape(addr, TelemetryReq::Prometheus)? {
        TelemetryResp::Prometheus(t) => Ok(t),
        other => Err(unexpected("prometheus", other)),
    }
}

/// Scrape the raw protocol event journals at `addr`.
pub fn scrape_journal(addr: &str) -> io::Result<Vec<(ReplicaId, Vec<Event>)>> {
    match scrape(addr, TelemetryReq::Journal)? {
        TelemetryResp::Journal(j) => Ok(j),
        other => Err(unexpected("journal", other)),
    }
}

/// Scrape the queue-depth gauge rollup at `addr`.
pub fn scrape_gauges(addr: &str) -> io::Result<GaugeSnapshot> {
    match scrape(addr, TelemetryReq::Gauges)? {
        TelemetryResp::Gauges(g) => Ok(g),
        other => Err(unexpected("gauges", other)),
    }
}

/// Ask the node at `addr` to run the clock handshake; returns the signed
/// nanosecond offset that maps its journal timestamps onto the sequencer's
/// timeline.
pub fn scrape_clock_offset(addr: &str) -> io::Result<i64> {
    match scrape(addr, TelemetryReq::ClockProbe)? {
        TelemetryResp::Clock { offset_ns } => Ok(offset_ns),
        other => Err(unexpected("clock probe", other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sirep_core::{ClusterConfig, Connection};
    use std::io::{Read as _, Write as _};

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(back.to_wire(), bytes, "re-encode must be bit-identical");
        for cut in 0..bytes.len() {
            assert!(T::from_wire(&bytes[..cut]).is_err(), "truncation at {cut} must fail");
        }
    }

    /// Round trip by wire-form equality, for types without `PartialEq`.
    fn round_trip_bytes<T: Wire + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("decode");
        assert_eq!(back.to_wire(), bytes, "re-encode must be bit-identical");
        for cut in 0..bytes.len() {
            assert!(T::from_wire(&bytes[..cut]).is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn request_frames_round_trip() {
        for req in [
            TelemetryReq::Status,
            TelemetryReq::Report,
            TelemetryReq::Prometheus,
            TelemetryReq::Journal,
            TelemetryReq::Gauges,
            TelemetryReq::ClockProbe,
        ] {
            round_trip(&req);
        }
        assert_eq!(TelemetryReq::from_wire(&[6]), Err(WireError::Corrupt("telemetry req tag")));
    }

    #[test]
    fn response_frames_round_trip() {
        // Use a live (sim) cluster so the payloads carry real shapes.
        let cluster = Cluster::new(ClusterConfig::builder().replicas(2).build());
        cluster.execute_ddl("CREATE TABLE t (a INT, PRIMARY KEY (a))").unwrap();
        let mut s = cluster.session(0);
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        s.commit().unwrap();
        assert!(cluster.quiesce(Duration::from_secs(5)));

        round_trip_bytes(&TelemetryResp::Status(
            cluster.nodes().iter().map(|n| n.status()).collect::<Vec<_>>(),
        ));
        round_trip_bytes(&TelemetryResp::Report(Box::new(cluster.metrics())));
        round_trip_bytes(&TelemetryResp::Prometheus(cluster.metrics().prometheus_text()));
        round_trip_bytes(&TelemetryResp::Journal(cluster.journal_events()));
        round_trip_bytes(&TelemetryResp::Gauges(cluster.metrics().gauges));
        round_trip_bytes(&TelemetryResp::Clock { offset_ns: -1_234_567 });
        round_trip_bytes(&TelemetryResp::Err("sequencer unreachable".into()));
        assert!(matches!(
            TelemetryResp::from_wire(&[7]),
            Err(WireError::Corrupt("telemetry resp tag"))
        ));
    }

    proptest! {
        #[test]
        fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = TelemetryReq::from_wire(&bytes);
            let _ = TelemetryResp::from_wire(&bytes);
        }
    }

    #[test]
    fn end_to_end_scrape_over_sim_cluster() {
        let cluster = Arc::new(Cluster::new(ClusterConfig::builder().replicas(3).build()));
        cluster.execute_ddl("CREATE TABLE t (a INT, PRIMARY KEY (a))").unwrap();
        for i in 0..5 {
            let mut s = cluster.session(i % 3);
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            s.commit().unwrap();
        }
        assert!(cluster.quiesce(Duration::from_secs(5)));

        let server = TelemetryServer::spawn("127.0.0.1:0", Arc::clone(&cluster)).expect("bind");
        let addr = server.addr().to_string();

        let statuses = scrape_status(&addr).expect("status");
        assert_eq!(statuses.len(), 3);
        assert!(statuses.iter().all(|s| s.alive));

        let report = scrape_report(&addr).expect("report");
        assert_eq!(report.commits(), cluster.metrics().commits());
        assert!(report.violations.is_empty());
        assert_eq!(report.per_node.len(), 3);

        let prom = scrape_prometheus(&addr).expect("prometheus");
        assert!(prom.contains("sirep_commits_update_total"));
        assert!(prom.contains("sirep_transport_frames_in_total"));

        if cfg!(feature = "trace") {
            let journals = scrape_journal(&addr).expect("journal");
            assert_eq!(journals.len(), 3);
            assert!(journals.iter().any(|(_, events)| !events.is_empty()));
        }

        let _ = scrape_gauges(&addr).expect("gauges");
        assert_eq!(scrape_clock_offset(&addr).expect("clock"), 0, "sim shares one epoch");

        // Several requests on one scraper connection also work.
        let mut stream = TcpStream::connect(&addr).unwrap();
        write_frame(&mut stream, &TelemetryReq::Status).unwrap();
        let _: TelemetryResp = read_frame(&mut stream).unwrap();
        write_frame(&mut stream, &TelemetryReq::Gauges).unwrap();
        let _: TelemetryResp = read_frame(&mut stream).unwrap();
    }

    /// A node killed mid-frame must surface as `Err` at the scraper —
    /// never a panic, never a hang (satellite: scrape resilience).
    #[test]
    fn killed_mid_frame_is_an_error_not_a_hang() {
        // A fake "node" that reads the request, then writes a frame header
        // promising 1 MiB and dies after 10 bytes of payload.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 64];
            let _ = conn.read(&mut buf);
            let _ = conn.write_all(&(1u32 << 20).to_le_bytes());
            let _ = conn.write_all(&[0u8; 10]);
            // Drop: RST/EOF mid-frame.
        });
        let err = scrape_with_timeout(&addr, TelemetryReq::Report, Duration::from_secs(2))
            .expect_err("truncated frame must error");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
            ),
            "got {err:?}"
        );
        t.join().unwrap();
    }

    /// A node that accepts and then goes silent must hit the read timeout.
    #[test]
    fn silent_node_times_out() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            // Hold the connection open, never respond.
            thread::sleep(Duration::from_millis(500));
            drop(conn);
        });
        let start = std::time::Instant::now();
        let err = scrape_with_timeout(&addr, TelemetryReq::Status, Duration::from_millis(100))
            .expect_err("silent node must time out");
        assert!(
            matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut),
            "got {err:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(2), "timeout must be prompt");
        t.join().unwrap();
    }

    /// Corrupt response bytes decode to `Err` (total decode), and a corrupt
    /// *request* makes the server drop the connection rather than wedge.
    #[test]
    fn corrupt_frames_are_rejected_end_to_end() {
        let cluster = Arc::new(Cluster::new(ClusterConfig::builder().replicas(1).build()));
        let server = TelemetryServer::spawn("127.0.0.1:0", Arc::clone(&cluster)).expect("bind");
        let addr = server.addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        // Valid length prefix, garbage tag.
        stream.write_all(&1u32.to_le_bytes()).unwrap();
        stream.write_all(&[200u8]).unwrap();
        let mut buf = Vec::new();
        let n = stream.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server must hang up on a corrupt request, not answer");
    }
}
