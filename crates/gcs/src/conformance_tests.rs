//! Transport conformance suite: the GCS contract (total order, uniform
//! reliable delivery, view synchrony — see [`crate::traits`]) exercised
//! through the trait objects only, and run against **every** backend.
//!
//! These tests are deliberately weaker than `group_tests.rs` where the
//! contract allows a networked backend latitude the sim tier doesn't need:
//!
//! - sequence numbers are asserted *consecutive and increasing*, not
//!   zero-based — the absolute origin is not contractual;
//! - a crashed member's `multicast_total` must fail *eventually* (a
//!   networked backend learns of its eviction asynchronously), not on the
//!   very next call;
//! - uniform delivery asserts the survivors deliver an identical **prefix**
//!   of the crashed sender's submissions, all before the crash view — the
//!   "not at all" arm lets a fire-and-forget transport drop in-flight
//!   tails, where the sim tier delivers everything sent before the crash.
//! - `Group::in_flight` is **per-process** on the TCP backend: it sums the
//!   pending-send and receive-queue gauges of the endpoints *this handle*
//!   created (the sim tier counts group-wide, because it owns every
//!   queue), and its high-water mark is the max over endpoints rather
//!   than a true group-wide concurrent peak. It is no longer the silent
//!   zero it once was — `tcp_only::in_flight_gauge_is_honest` pins the
//!   honest behaviour.
//!
//! Sim-only semantics (simulated latency, deterministic faults, synchronous
//! sequencing) stay in `group_tests.rs`.

use crate::group::GroupConfig;
use crate::tcp::{Sequencer, TcpGroup};
use crate::traits::{Delivery, GcsError, Group, Member, View};
use crate::SimGroup;
use sirep_common::MemberId;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Poll interval while waiting for asynchronous effects.
const STEP: Duration = Duration::from_millis(50);
/// Per-assertion deadline; generous because the TCP backend runs real
/// sockets on shared CI machines.
const TIMEOUT: Duration = Duration::from_secs(10);

/// One backend under test. Holding the struct keeps backend-owned services
/// (the TCP sequencer) alive for the duration of the test.
struct Backend {
    group: Arc<dyn Group<u64>>,
    _seq: Option<Sequencer>,
}

fn sim() -> Backend {
    Backend { group: Arc::new(SimGroup::new(GroupConfig::instant())), _seq: None }
}

/// The sim tier with receiver-side writeset batching disabled — pins the
/// pre-batching delivery shape (`TotalOrder` only) against the same contract.
fn sim_unbatched() -> Backend {
    Backend { group: Arc::new(SimGroup::new(GroupConfig::instant().unbatched())), _seq: None }
}

fn tcp() -> Backend {
    let seq = Sequencer::spawn("127.0.0.1:0").expect("bind sequencer");
    let group = TcpGroup::<u64>::new(seq.addr().to_string(), 0);
    Backend { group: Arc::new(group), _seq: Some(seq) }
}

/// The TCP tier with sequencer-side batching disabled (batch_max = 1): every
/// total-order message rides its own `DownFrame::Total`.
fn tcp_unbatched() -> Backend {
    let seq = Sequencer::spawn_with_batching("127.0.0.1:0", 1).expect("bind sequencer");
    let group = TcpGroup::<u64>::new(seq.addr().to_string(), 0);
    Backend { group: Arc::new(group), _seq: Some(seq) }
}

/// Receive until a view with exactly `n` members arrives, discarding
/// everything else. Only for membership phases where no payload traffic is
/// outstanding.
fn await_members(m: &dyn Member<u64>, n: usize) -> View {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        assert!(Instant::now() < deadline, "no view with {n} members within {TIMEOUT:?}");
        match m.recv_timeout(STEP) {
            Ok(Delivery::ViewChange(v)) if v.members.len() == n => return v,
            Ok(_) | Err(GcsError::Timeout) => {}
            Err(e) => panic!("recv failed while awaiting view: {e}"),
        }
    }
}

/// Collect the next `n` total-order deliveries as `(seq, sender, msg)`,
/// skipping view changes and FIFOs.
fn collect_total(m: &dyn Member<u64>, n: usize) -> Vec<(u64, MemberId, u64)> {
    let deadline = Instant::now() + TIMEOUT;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        assert!(
            Instant::now() < deadline,
            "only {} of {n} total-order deliveries within {TIMEOUT:?}",
            out.len()
        );
        match m.recv_timeout(STEP) {
            Ok(Delivery::TotalOrder { seq, sender, msg, .. }) => out.push((seq, sender, msg)),
            Ok(Delivery::TotalBatch { entries, .. }) => {
                out.extend(entries.into_iter().map(|e| (e.seq, e.sender, e.msg)));
            }
            Ok(_) | Err(GcsError::Timeout) => {}
            Err(e) => panic!("recv failed while collecting: {e}"),
        }
    }
    out
}

/// Collect the next `n` FIFO deliveries as `(sender, msg)`.
fn collect_fifo(m: &dyn Member<u64>, n: usize) -> Vec<(MemberId, u64)> {
    let deadline = Instant::now() + TIMEOUT;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        assert!(
            Instant::now() < deadline,
            "only {} of {n} fifo deliveries within {TIMEOUT:?}",
            out.len()
        );
        match m.recv_timeout(STEP) {
            Ok(Delivery::Fifo { sender, msg }) => out.push((sender, msg)),
            Ok(_) | Err(GcsError::Timeout) => {}
            Err(e) => panic!("recv failed while collecting: {e}"),
        }
    }
    out
}

/// Everything a member delivers up to (and including) the first view that
/// no longer contains `gone`, plus a short quiet-period drain afterwards to
/// catch contract-violating stragglers.
fn collect_until_member_gone(m: &dyn Member<u64>, gone: MemberId) -> Vec<Delivery<u64>> {
    // Flatten batches into the individual deliveries they stand for, so the
    // per-delivery assertions downstream see one shape regardless of backend
    // batching configuration.
    fn flatten(d: Delivery<u64>, out: &mut Vec<Delivery<u64>>) {
        match d {
            Delivery::TotalBatch { sequenced_at, entries } => {
                out.extend(entries.into_iter().map(|e| Delivery::TotalOrder {
                    seq: e.seq,
                    sender: e.sender,
                    sequenced_at,
                    msg: e.msg,
                }));
            }
            other => out.push(other),
        }
    }
    let deadline = Instant::now() + TIMEOUT;
    let mut out = Vec::new();
    loop {
        assert!(Instant::now() < deadline, "no view without {gone:?} within {TIMEOUT:?}");
        match m.recv_timeout(STEP) {
            Ok(d) => {
                let done = matches!(&d, Delivery::ViewChange(v) if !v.contains(gone));
                flatten(d, &mut out);
                if done {
                    break;
                }
            }
            Err(GcsError::Timeout) => {}
            Err(e) => panic!("recv failed: {e}"),
        }
    }
    let quiet_until = Instant::now() + Duration::from_millis(300);
    while Instant::now() < quiet_until {
        if let Ok(d) = m.recv_timeout(STEP) {
            flatten(d, &mut out);
        }
    }
    out
}

/// Sequence numbers must be strictly consecutive (total order with no
/// gaps); the origin is backend-specific.
fn assert_consecutive(stream: &[(u64, MemberId, u64)]) {
    for pair in stream.windows(2) {
        assert_eq!(pair[1].0, pair[0].0 + 1, "sequence gap: {pair:?}");
    }
}

// ---------------------------------------------------------------------------
// The conformance tests proper. Each takes an already-constructed backend;
// the macros at the bottom instantiate every test for every backend.
// ---------------------------------------------------------------------------

fn total_order_is_identical_across_members(b: Backend) {
    let members: Vec<_> = (0..3).map(|_| b.group.join().expect("join")).collect();
    for m in &members {
        await_members(m.as_ref(), 3);
    }
    for (i, m) in members.iter().enumerate() {
        let h = m.handle();
        for k in 0..10u64 {
            h.multicast_total(i as u64 * 100 + k).expect("multicast");
        }
    }
    let streams: Vec<_> = members.iter().map(|m| collect_total(m.as_ref(), 30)).collect();
    for s in &streams[1..] {
        assert_eq!(s, &streams[0], "members disagree on the total order");
    }
    assert_consecutive(&streams[0]);
    // Per-sender messages appear in submission order within the total order.
    for (i, m) in members.iter().enumerate() {
        let mine: Vec<u64> = streams[0]
            .iter()
            .filter(|&&(_, sender, _)| sender == m.id())
            .map(|&(_, _, msg)| msg)
            .collect();
        let expect: Vec<u64> = (0..10).map(|k| i as u64 * 100 + k).collect();
        assert_eq!(mine, expect, "sender {i}'s submission order not preserved");
    }
}

fn fifo_preserves_per_sender_order(b: Backend) {
    let a = b.group.join().expect("join");
    let c = b.group.join().expect("join");
    await_members(a.as_ref(), 2);
    await_members(c.as_ref(), 2);
    let (ha, hc) = (a.handle(), c.handle());
    for k in 0..10u64 {
        ha.multicast_fifo(k).expect("fifo");
        hc.multicast_fifo(100 + k).expect("fifo");
    }
    for m in [&a, &c] {
        let got = collect_fifo(m.as_ref(), 20);
        for sender in [a.id(), c.id()] {
            let from: Vec<u64> =
                got.iter().filter(|&&(s, _)| s == sender).map(|&(_, msg)| msg).collect();
            assert_eq!(from.len(), 10);
            assert!(from.windows(2).all(|w| w[0] < w[1]), "per-sender order violated: {from:?}");
        }
    }
}

fn view_changes_on_join_and_crash(b: Backend) {
    let a = b.group.join().expect("join");
    let v1 = await_members(a.as_ref(), 1);
    assert!(v1.contains(a.id()));

    let c = b.group.join().expect("join");
    let va = await_members(a.as_ref(), 2);
    let vc = await_members(c.as_ref(), 2);
    assert_eq!(va.members, vc.members, "members disagree on the join view");
    assert!(va.contains(a.id()) && va.contains(c.id()));

    b.group.crash(c.id());
    let v3 = await_members(a.as_ref(), 1);
    assert!(v3.contains(a.id()) && !v3.contains(c.id()));

    // The group handle converges to the same membership.
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let v = b.group.view();
        if v.members == vec![a.id()] {
            break;
        }
        assert!(Instant::now() < deadline, "group view never converged: {v:?}");
        thread::sleep(STEP);
    }
}

fn crashed_member_eventually_cannot_multicast(b: Backend) {
    let a = b.group.join().expect("join");
    let c = b.group.join().expect("join");
    await_members(a.as_ref(), 2);
    await_members(c.as_ref(), 2);
    b.group.crash(c.id());
    // A networked backend learns of its own eviction asynchronously; the
    // contract is that multicasts *eventually* fail, and an Err guarantees
    // non-delivery.
    let h = c.handle();
    let deadline = Instant::now() + TIMEOUT;
    loop {
        if h.multicast_total(999).is_err() {
            break;
        }
        assert!(Instant::now() < deadline, "crashed member still multicasting after {TIMEOUT:?}");
        thread::sleep(STEP);
    }
    // And it stays failed.
    assert!(h.multicast_total(1000).is_err());
}

fn uniform_delivery_is_a_prefix_before_the_crash_view(b: Backend) {
    let a = b.group.join().expect("join");
    let c = b.group.join().expect("join");
    let x = b.group.join().expect("join");
    for m in [&a, &c, &x] {
        await_members(m.as_ref(), 3);
    }
    let h = x.handle();
    for k in 0..50u64 {
        h.multicast_total(k).expect("multicast");
    }
    h.crash_self();

    let sa = collect_until_member_gone(a.as_ref(), x.id());
    let sc = collect_until_member_gone(c.as_ref(), x.id());
    for stream in [&sa, &sc] {
        let crash_at = stream
            .iter()
            .position(|d| matches!(d, Delivery::ViewChange(v) if !v.contains(x.id())))
            .expect("crash view delivered");
        // Nothing from the crashed sender after its crash view: "before the
        // crash view, or not at all".
        for d in &stream[crash_at..] {
            if let Delivery::TotalOrder { sender, .. } = d {
                assert_ne!(*sender, x.id(), "delivery from crashed member after its crash view");
            }
        }
        // What was delivered is a prefix of the submission order.
        let got: Vec<u64> = stream
            .iter()
            .filter_map(|d| match d {
                Delivery::TotalOrder { sender, msg, .. } if *sender == x.id() => Some(*msg),
                _ => None,
            })
            .collect();
        let expect: Vec<u64> = (0..got.len() as u64).collect();
        assert_eq!(got, expect, "survivor saw a non-prefix of the crashed sender's submissions");
    }
    // Uniformity: both survivors delivered the *same* prefix.
    let count = |s: &[Delivery<u64>]| {
        s.iter()
            .filter(|d| matches!(d, Delivery::TotalOrder { sender, .. } if *sender == x.id()))
            .count()
    };
    assert_eq!(count(&sa), count(&sc), "survivors disagree on the delivered prefix");
}

fn leave_produces_a_view_change(b: Backend) {
    let a = b.group.join().expect("join");
    let c = b.group.join().expect("join");
    await_members(a.as_ref(), 2);
    await_members(c.as_ref(), 2);
    c.leave();
    let v = await_members(a.as_ref(), 1);
    assert!(v.contains(a.id()) && !v.contains(c.id()));
}

fn handles_multicast_from_other_threads(b: Backend) {
    let a = b.group.join().expect("join");
    let c = b.group.join().expect("join");
    await_members(a.as_ref(), 2);
    await_members(c.as_ref(), 2);
    let workers: Vec<_> = (0..3u64)
        .map(|t| {
            let h = a.handle();
            thread::spawn(move || {
                for k in 0..10u64 {
                    h.multicast_total(t * 1000 + k).expect("multicast");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    let sa = collect_total(a.as_ref(), 30);
    let sc = collect_total(c.as_ref(), 30);
    assert_eq!(sa, sc, "threaded multicasts broke total-order agreement");
    assert_consecutive(&sa);
    let mut msgs: Vec<u64> = sa.iter().map(|&(_, _, msg)| msg).collect();
    msgs.sort_unstable();
    let mut expect: Vec<u64> =
        (0..3u64).flat_map(|t| (0..10u64).map(move |k| t * 1000 + k)).collect();
    expect.sort_unstable();
    assert_eq!(msgs, expect);
}

/// Instantiate every conformance test for one backend.
macro_rules! conformance {
    ($backend:ident: $($test:ident),* $(,)?) => {
        mod $backend {
            $(
                #[test]
                fn $test() {
                    super::$test(super::$backend());
                }
            )*
        }
    };
}

/// Instantiate every conformance test for every backend, with batching both
/// on (the default) and off — the contract must be indistinguishable.
macro_rules! all_backends {
    ($($test:ident),* $(,)?) => {
        conformance!(sim: $($test),*);
        conformance!(sim_unbatched: $($test),*);
        conformance!(tcp: $($test),*);
        conformance!(tcp_unbatched: $($test),*);
    };
}

all_backends!(
    total_order_is_identical_across_members,
    fifo_preserves_per_sender_order,
    view_changes_on_join_and_crash,
    crashed_member_eventually_cannot_multicast,
    uniform_delivery_is_a_prefix_before_the_crash_view,
    leave_produces_a_view_change,
    handles_multicast_from_other_threads,
);

// ---------------------------------------------------------------------------
// TCP-specific guarantees (beyond the shared contract): full-log replay to
// joiners and incarnation bookkeeping — the restart-recovery story.
// ---------------------------------------------------------------------------

mod tcp_only {
    use super::*;
    use crate::tcp::seq::MEMBER_INCARNATION_SHIFT;

    #[test]
    fn joiner_replays_full_history() {
        let b = tcp();
        let a = b.group.join().expect("join");
        await_members(a.as_ref(), 1);
        let h = a.handle();
        for k in 0..5u64 {
            h.multicast_total(k).expect("multicast");
        }
        collect_total(a.as_ref(), 5);
        // The late joiner must see the complete sequenced stream — the 5
        // messages — *before* the view that admits it.
        let c = b.group.join().expect("join");
        let replay = collect_total(c.as_ref(), 5);
        let msgs: Vec<u64> = replay.iter().map(|&(_, _, msg)| msg).collect();
        assert_eq!(msgs, vec![0, 1, 2, 3, 4]);
        assert_consecutive(&replay);
        await_members(c.as_ref(), 2);
    }

    #[test]
    fn restart_bumps_incarnation() {
        let seq = Sequencer::spawn("127.0.0.1:0").expect("bind");
        let group = TcpGroup::<u64>::new(seq.addr().to_string(), 0);
        let first = group.join_as(7).expect("join");
        assert_eq!(first.incarnation(), 0);
        assert_eq!(first.id().raw(), 7);
        first.leave();
        let second = group.join_as(7).expect("rejoin");
        assert_eq!(second.incarnation(), 1, "join count must survive the restart");
        assert_eq!(second.id().raw(), (1 << MEMBER_INCARNATION_SHIFT) | 7);
    }

    /// The fix for the old silent-zero gauge: `Group::in_flight` on the
    /// TCP backend reports real pending-send + receive-queue depth for
    /// this process's endpoints (see the module docs for the documented
    /// per-process weakening versus the sim tier).
    #[test]
    fn in_flight_gauge_is_honest() {
        let b = tcp();
        let a = b.group.join().expect("join");
        await_members(a.as_ref(), 1);
        let h = a.handle();
        for k in 0..5u64 {
            h.multicast_total(k).expect("multicast");
        }
        collect_total(a.as_ref(), 5);
        // Everything sent has been sequenced (our own deliveries came
        // back) and everything delivered has been received: current must
        // be zero, and the high-water mark must prove the gauge moved.
        let reading = b.group.in_flight();
        assert_eq!(reading.current, 0, "in-flight must drain to zero: {reading:?}");
        assert!(reading.high_water >= 1, "gauge never moved: {reading:?}");
    }

    #[test]
    fn transport_counters_track_wire_traffic() {
        let b = tcp();
        let a = b.group.join().expect("join");
        let c = b.group.join().expect("join");
        await_members(a.as_ref(), 2);
        await_members(c.as_ref(), 2);
        let h = a.handle();
        for k in 0..3u64 {
            h.multicast_total(k).expect("multicast");
        }
        collect_total(a.as_ref(), 3);
        collect_total(c.as_ref(), 3);

        let ta = a.transport();
        assert_eq!(ta.frames_out, 3, "sender frames_out: {ta:?}");
        assert!(ta.bytes_out > 0 && ta.bytes_in > 0, "byte counters never moved: {ta:?}");
        // The reader saw the totals plus at least one view frame. The
        // sequencer may coalesce adjacent totals into one TotalBatch wire
        // frame, so the floor is 2 frames, not 4.
        assert!(ta.frames_in >= 2, "reader frames_in: {ta:?}");
        assert_eq!(ta.decode_failures, 0);
        assert_eq!(ta.pending_sends.current, 0, "sends all sequenced: {ta:?}");
        assert!(ta.pending_sends.high_water >= 1);
        let tc = c.transport();
        assert_eq!(tc.frames_out, 0, "c never multicast: {tc:?}");
        // Same batching caveat: a's 3 multicasts may arrive at c as one
        // TotalBatch frame on top of c's join view.
        assert!(tc.frames_in >= 2, "c delivered a's multicasts: {tc:?}");

        // The group rollup covers both endpoints and counts churn.
        let tg = b.group.transport();
        assert_eq!(tg.frames_out, 3);
        assert!(tg.frames_in >= ta.frames_in + tc.frames_in);
        assert_eq!(tg.evictions, 0);
        c.leave();
        await_members(a.as_ref(), 1);
        assert!(b.group.transport().evictions >= 1, "leave must count as an eviction");
    }

    /// Dropped endpoints fold their final counters into the group rollup,
    /// so `Group::transport()` stays monotonic across member churn.
    #[test]
    fn group_rollup_survives_member_drop() {
        let b = tcp();
        let a = b.group.join().expect("join");
        await_members(a.as_ref(), 1);
        let h = a.handle();
        for k in 0..3u64 {
            h.multicast_total(k).expect("multicast");
        }
        collect_total(a.as_ref(), 3);
        a.leave();
        drop(h);
        drop(a);
        // The reader thread releases its handle asynchronously after the
        // socket shutdown; poll until the retired fold lands.
        let deadline = Instant::now() + TIMEOUT;
        loop {
            let t = b.group.transport();
            if t.frames_out == 3 {
                break;
            }
            assert!(Instant::now() < deadline, "retired counters never folded in: {t:?}");
            thread::sleep(STEP);
        }
    }

    /// The sequencer's admin scrape: log length, next sequence number,
    /// view id and per-member fan-out backlog.
    #[test]
    fn sequencer_stats_scrape() {
        let seq = Sequencer::spawn("127.0.0.1:0").expect("bind");
        let addr = seq.addr().to_string();
        let group = TcpGroup::<u64>::new(addr.clone(), 0);
        let a = group.join_as(0).expect("join");
        await_members(&a, 1);
        let h = Member::handle(&a);
        for k in 0..4u64 {
            h.multicast_total(k).expect("multicast");
        }
        collect_total(&a, 4);
        let stats = crate::tcp::query_seq_stats(&addr).expect("stats scrape");
        assert_eq!(stats.next_seq, 4, "{stats:?}");
        // Log holds the join view plus the 4 sequenced multicasts.
        assert!(stats.log_len >= 5, "{stats:?}");
        assert!(stats.view_id >= 1, "{stats:?}");
        assert_eq!(stats.members.len(), 1);
        assert_eq!(stats.members[0].0, a.id().raw());
        // Everything has been written out; backlog may lag the writer by a
        // moment but must drain.
        let deadline = Instant::now() + TIMEOUT;
        loop {
            let s = crate::tcp::query_seq_stats(&addr).expect("stats scrape");
            if s.backlog() == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "fan-out backlog never drained: {s:?}");
            thread::sleep(STEP);
        }
    }

    /// The clock-probe leg: the sequencer's monotonic clock is readable
    /// and monotonic across probes.
    #[test]
    fn sequencer_time_probe_is_monotonic() {
        let seq = Sequencer::spawn("127.0.0.1:0").expect("bind");
        let addr = seq.addr().to_string();
        let t0 = crate::tcp::probe_seq_time(&addr).expect("probe");
        let t1 = crate::tcp::probe_seq_time(&addr).expect("probe");
        assert!(t1 >= t0, "sequencer clock went backwards: {t0} -> {t1}");
    }

    /// Rejoins are counted as reconnects in the group rollup.
    #[test]
    fn rejoin_counts_as_reconnect() {
        let seq = Sequencer::spawn("127.0.0.1:0").expect("bind");
        let group = TcpGroup::<u64>::new(seq.addr().to_string(), 0);
        let first = group.join_as(7).expect("join");
        assert_eq!(Group::transport(&group).reconnects, 0);
        first.leave();
        let _second = group.join_as(7).expect("rejoin");
        assert_eq!(Group::transport(&group).reconnects, 1);
    }

    #[test]
    fn views_carry_the_member_to_replica_mapping() {
        let seq = Sequencer::spawn("127.0.0.1:0").expect("bind");
        let group: Arc<dyn Group<u64>> = Arc::new(TcpGroup::<u64>::new(seq.addr().to_string(), 3));
        let a = group.join().expect("join");
        let c = group.join().expect("join");
        await_members(a.as_ref(), 2);
        await_members(c.as_ref(), 2);
        assert_eq!(a.replica_of(a.id()), Some(3));
        assert_eq!(a.replica_of(c.id()), Some(4));
        assert_eq!(c.replica_of(a.id()), Some(3));
    }
}
