//! Seeded fault injection for the simulated GCS.
//!
//! The paper's correctness argument (Theorem 1, §5.4) assumes uniform
//! total-order delivery over a crash-stop network; the base simulation only
//! models *latency*.  This module adds an adversary that perturbs delivery
//! without ever breaking the service-level contract the middleware is
//! entitled to:
//!
//! - **Drop**: the first delivery attempt of a copy is lost and the copy
//!   arrives later via a simulated retransmission.  A uniform reliable
//!   multicast never silently loses a message to a live member — drops
//!   manifest as extra latency, exactly as Spread's retransmission does.
//! - **Duplicate**: a second copy of a total-order message is enqueued
//!   back-to-back; the receive path dedups by sequence number.
//! - **ExtraDelay**: the copy is delayed beyond the configured latency.
//! - **Partitions** (driven by [`FaultConfig::partition_prob`] or
//!   explicitly via `Group::partition`): isolated members stop receiving —
//!   deliveries are *held*, not dropped — and their own multicasts are held
//!   unsequenced at the sequencer.  Healing flushes held copies in the
//!   original order and then sequences the held sends, so one total order
//!   is preserved; the minority simply observes it late.
//!
//! **Determinism pillar**: every per-copy decision is a pure function of
//! `(seed, message_index, member)` — *not* a sequential RNG draw — so the
//! schedule is independent of member-map iteration order and thread timing.
//! Each fault folds into a running FNV-1a fingerprint; replaying the same
//! seed over the same message stream reproduces a byte-identical schedule
//! (see `fault_schedule_is_deterministic` in the chaos harness).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirep_common::journal::FaultKind;
use sirep_common::{EventKind, Gauge, Journal, ReplicaId};
use std::collections::BTreeSet;

/// The journal "replica" that network-level fault events are attributed to:
/// faults belong to the wire, not to any one replica.
pub const NETWORK_REPLICA: ReplicaId = ReplicaId::new(u64::MAX);

/// Retained fault-log records before the log stops growing (the running
/// fingerprint keeps covering everything).
const FAULT_LOG_CAP: usize = 1 << 16;

/// Probabilities and magnitudes for the seeded fault plan.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the deterministic per-copy decisions.
    pub seed: u64,
    /// Probability a delivery copy's first attempt is dropped (it then
    /// arrives after `retransmit_delay_ms`).
    pub drop_prob: f64,
    /// Probability a total-order copy is duplicated.
    pub dup_prob: f64,
    /// Probability a copy is delayed by up to `extra_delay_ms`.
    pub delay_prob: f64,
    /// Maximum extra delay, in model milliseconds.
    pub extra_delay_ms: f64,
    /// Simulated retransmission latency for dropped copies, model ms.
    pub retransmit_delay_ms: f64,
    /// Probability (checked per multicast, while no partition is active)
    /// that a partition starts isolating a random minority of members.
    pub partition_prob: f64,
    /// How many subsequent multicasts a planned partition lasts before the
    /// plan heals it.
    pub partition_len_msgs: u64,
}

impl FaultConfig {
    /// No random faults at all — used when only explicit `partition`/`heal`
    /// control or crash-points are wanted, while keeping the fault journal
    /// and gauges live.
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            extra_delay_ms: 0.0,
            retransmit_delay_ms: 0.0,
            partition_prob: 0.0,
            partition_len_msgs: 0,
        }
    }

    /// The chaos-harness default mix: frequent small perturbations, rare
    /// short partitions.
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_prob: 0.08,
            dup_prob: 0.08,
            delay_prob: 0.15,
            extra_delay_ms: 2.0,
            retransmit_delay_ms: 1.0,
            partition_prob: 0.01,
            partition_len_msgs: 40,
        }
    }
}

/// What the plan decided for one delivery copy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultDecision {
    pub drop: bool,
    pub duplicate: bool,
    /// Extra model-ms latency (0.0 = none).
    pub extra_delay_ms: f64,
}

/// One entry of the reproducible fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultRecord {
    /// Copy `msg` → `member` was perturbed.
    Fault { msg: u64, member: u64, kind: FaultKind },
    /// A partition isolating `isolated` started at message index `msg`.
    PartitionStart { msg: u64, isolated: Vec<u64> },
    /// The partition healed at message index `msg`, releasing `flushed`
    /// held delivery copies.
    PartitionHeal { msg: u64, flushed: u64 },
}

/// Mix `(seed, msg, member)` into an RNG so each decision is independent of
/// every other decision's evaluation order (splitmix64-style finalizer).
fn decision_rng(seed: u64, msg: u64, member: u64) -> SmallRng {
    let mut h = seed ^ msg.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= member.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 30;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    SmallRng::seed_from_u64(h)
}

/// Sentinel "member" mixed in for per-message (member-independent)
/// decisions such as partition starts.
const PARTITION_SALT: u64 = u64::MAX - 1;

/// Fold one word into an FNV-1a fingerprint.
fn fnv_fold(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Mutable fault-plan state, owned by the group and mutated only under the
/// group lock (so records and journal events are totally ordered too).
pub(crate) struct FaultState {
    pub cfg: FaultConfig,
    journal: Journal,
    /// Global message index: one per broadcast, the x-axis of the schedule.
    msg_index: u64,
    /// Members (raw ids) currently cut off by a partition.
    pub isolated: BTreeSet<u64>,
    /// When the *plan* (not an explicit call) started the current
    /// partition: the message index at which it heals.
    plan_heal_at: Option<u64>,
    /// The current partition was installed via the explicit API and only
    /// heals explicitly.
    explicit: bool,
    log: Vec<FaultRecord>,
    fingerprint: u64,
    records: u64,
    /// Total faults injected (monotone gauge).
    pub injected: Gauge,
    /// Currently isolated member count / widest partition ever.
    pub partitioned: Gauge,
}

impl FaultState {
    pub fn new(cfg: FaultConfig, journal: Journal) -> FaultState {
        FaultState {
            cfg,
            journal,
            msg_index: 0,
            isolated: BTreeSet::new(),
            plan_heal_at: None,
            explicit: false,
            log: Vec::new(),
            fingerprint: FNV_OFFSET,
            records: 0,
            injected: Gauge::new(),
            partitioned: Gauge::new(),
        }
    }

    /// Claim the next message index (call once per broadcast).
    pub fn next_msg(&mut self) -> u64 {
        let m = self.msg_index;
        self.msg_index += 1;
        m
    }

    pub fn current_msg(&self) -> u64 {
        self.msg_index
    }

    /// The planned partition's heal point has been reached.
    pub fn plan_heal_due(&self) -> bool {
        !self.explicit && self.plan_heal_at.is_some_and(|at| self.msg_index >= at)
    }

    pub fn is_isolated(&self, member: u64) -> bool {
        self.isolated.contains(&member)
    }

    /// Pure per-copy decision for message `msg` delivered to `member`.
    pub fn decide(&self, msg: u64, member: u64) -> FaultDecision {
        let c = &self.cfg;
        if c.drop_prob == 0.0 && c.dup_prob == 0.0 && c.delay_prob == 0.0 {
            return FaultDecision::default();
        }
        let mut rng = decision_rng(c.seed, msg, member);
        // Draw in a fixed order so the decision tuple is stable.
        let drop = c.drop_prob > 0.0 && rng.gen_bool(c.drop_prob);
        let duplicate = c.dup_prob > 0.0 && rng.gen_bool(c.dup_prob);
        let delayed = c.delay_prob > 0.0 && rng.gen_bool(c.delay_prob);
        let extra_delay_ms = if delayed && c.extra_delay_ms > 0.0 {
            // Quantize to 1/64 ms so the magnitude folds into the
            // fingerprint as a small exact integer.
            (rng.gen_range(1..=64) as f64 / 64.0) * c.extra_delay_ms
        } else {
            0.0
        };
        FaultDecision { drop, duplicate, extra_delay_ms }
    }

    /// Should a planned partition start at message `msg`, and whom does it
    /// isolate?  `live` must be the sorted raw ids of live members.
    pub fn plan_partition(&self, msg: u64, live: &[u64]) -> Option<Vec<u64>> {
        let c = &self.cfg;
        if c.partition_prob == 0.0
            || c.partition_len_msgs == 0
            || !self.isolated.is_empty()
            || live.len() < 2
        {
            return None;
        }
        let mut rng = decision_rng(c.seed, msg, PARTITION_SALT);
        if !rng.gen_bool(c.partition_prob) {
            return None;
        }
        // Isolate a strict minority-or-half subset (at least 1, at most
        // len-1) chosen deterministically from the sorted live list.
        let count = rng.gen_range(1..live.len());
        let mut picked = BTreeSet::new();
        while picked.len() < count {
            picked.insert(live[rng.gen_range(0..live.len())]);
        }
        Some(picked.into_iter().collect())
    }

    pub fn begin_partition(&mut self, msg: u64, isolated: Vec<u64>, explicit: bool) {
        self.partitioned.set(isolated.len() as u64);
        self.journal.record(EventKind::PartitionStarted { isolated: isolated.len() as u64 });
        self.isolated = isolated.iter().copied().collect();
        self.explicit = explicit;
        self.plan_heal_at =
            if explicit { None } else { Some(msg.saturating_add(self.cfg.partition_len_msgs)) };
        self.push_record(FaultRecord::PartitionStart { msg, isolated });
    }

    /// Clear partition state; the group flushes held copies and reports how
    /// many via `flushed`.
    pub fn end_partition(&mut self, flushed: u64) {
        self.isolated.clear();
        self.plan_heal_at = None;
        self.explicit = false;
        self.partitioned.set(0);
        self.journal.record(EventKind::PartitionHealed { flushed });
        let msg = self.msg_index;
        self.push_record(FaultRecord::PartitionHeal { msg, flushed });
    }

    /// A member crashed: it can no longer be isolated.
    pub fn forget_member(&mut self, member: u64) {
        if self.isolated.remove(&member) {
            self.partitioned.set(self.isolated.len() as u64);
        }
    }

    /// Record one injected per-copy fault.
    pub fn note(&mut self, kind: FaultKind, msg: u64, member: u64) {
        self.injected.add(1);
        self.journal.record(EventKind::FaultInjected { fault: kind, msg, member });
        self.push_record(FaultRecord::Fault { msg, member, kind });
    }

    fn push_record(&mut self, rec: FaultRecord) {
        self.records += 1;
        self.fingerprint = match &rec {
            FaultRecord::Fault { msg, member, kind } => {
                let k = match kind {
                    FaultKind::Drop => 1,
                    FaultKind::Duplicate => 2,
                    FaultKind::ExtraDelay => 3,
                };
                fnv_fold(fnv_fold(fnv_fold(self.fingerprint, *msg), *member), k)
            }
            FaultRecord::PartitionStart { msg, isolated } => {
                let mut h = fnv_fold(fnv_fold(self.fingerprint, 0x10), *msg);
                for m in isolated {
                    h = fnv_fold(h, *m);
                }
                h
            }
            FaultRecord::PartitionHeal { msg, flushed } => {
                fnv_fold(fnv_fold(fnv_fold(self.fingerprint, 0x11), *msg), *flushed)
            }
        };
        if self.log.len() < FAULT_LOG_CAP {
            self.log.push(rec);
        }
    }

    /// `(fnv1a_fingerprint, record_count)` over every record ever made —
    /// the pair the chaos harness compares across seed replays.
    pub fn fingerprint(&self) -> (u64, u64) {
        (self.fingerprint, self.records)
    }

    pub fn log(&self) -> Vec<FaultRecord> {
        self.log.clone()
    }

    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_inputs() {
        let st = FaultState::new(FaultConfig::chaos(7), Journal::new(NETWORK_REPLICA));
        for msg in 0..64 {
            for member in 0..4 {
                assert_eq!(st.decide(msg, member), st.decide(msg, member));
            }
        }
        // A different seed gives a different schedule somewhere.
        let other = FaultState::new(FaultConfig::chaos(8), Journal::new(NETWORK_REPLICA));
        assert!(
            (0..256).any(|m| st.decide(m, 0) != other.decide(m, 0)),
            "seeds 7 and 8 produced identical 256-message schedules"
        );
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let st = FaultState::new(FaultConfig::quiet(1), Journal::new(NETWORK_REPLICA));
        for msg in 0..128 {
            assert_eq!(st.decide(msg, 0), FaultDecision::default());
            assert!(st.plan_partition(msg, &[0, 1, 2]).is_none());
        }
    }

    #[test]
    fn fingerprint_reflects_records_in_order() {
        let run = || {
            let mut st = FaultState::new(FaultConfig::chaos(3), Journal::new(NETWORK_REPLICA));
            st.note(FaultKind::Drop, 0, 1);
            st.begin_partition(1, vec![2], false);
            st.end_partition(4);
            st.note(FaultKind::Duplicate, 2, 0);
            (st.fingerprint(), st.log())
        };
        assert_eq!(run(), run());
        let (fp, _) = run();
        let mut reordered = FaultState::new(FaultConfig::chaos(3), Journal::new(NETWORK_REPLICA));
        reordered.note(FaultKind::Duplicate, 2, 0);
        reordered.note(FaultKind::Drop, 0, 1);
        assert_ne!(reordered.fingerprint().0, fp.0);
    }

    #[test]
    fn planned_partitions_isolate_a_proper_subset() {
        let st = FaultState::new(
            FaultConfig { partition_prob: 1.0, partition_len_msgs: 10, ..FaultConfig::quiet(5) },
            Journal::new(NETWORK_REPLICA),
        );
        let live = [0u64, 1, 2, 3];
        let picked = st.plan_partition(9, &live).expect("prob 1.0 must partition");
        assert!(!picked.is_empty() && picked.len() < live.len());
        assert!(picked.iter().all(|m| live.contains(m)));
        assert_eq!(picked, st.plan_partition(9, &live).unwrap());
    }
}
