//! The simulated group: membership, sequencing, and delivery queues, all in
//! one process. This is the deterministic/chaos backend behind the
//! [`crate::traits`] transport abstraction ([`crate::TcpGroup`] is the real
//! network); SRCA-Rep itself only sees the traits.
//!
//! All sequencing decisions happen under one mutex, which makes the
//! guarantees easy to state and verify:
//!
//! - **Total order**: every total-order multicast is assigned a global
//!   sequence number and enqueued to *every* live member's queue while the
//!   lock is held, so all members see all messages (total-order, FIFO and
//!   view changes) in one consistent stream.
//! - **Uniform reliable delivery**: a multicast either happens-before a
//!   crash (it was sequenced first, so it sits in every survivor's queue
//!   *ahead of* the view change announcing the crash) or it is rejected
//!   (the member was already marked crashed). This is exactly the property
//!   §5.4 of the paper relies on for in-doubt transaction resolution: a new
//!   replica that waits for the crash notification "either receives the
//!   writeset before being informed about the crash or not at all".
//! - **View synchrony**: all members deliver the same view changes at the
//!   same position in the message stream.
//!
//! Network latency is simulated at the *receiver*: each delivery carries the
//! wall-clock instant at which it becomes visible, and [`SimMember::recv`]
//! sleeps until then. Latency is a [`TimeScale`]-scaled model duration, so
//! the paper's "3 ms per uniform reliable multicast in a LAN" (§5.2) is one
//! config knob.
//!
//! A seeded [`FaultConfig`] plan (see [`crate::fault`]) can additionally
//! drop (→ retransmit), duplicate, delay, and partition deliveries without
//! violating the service-level contract above: drops become latency,
//! duplicates are deduped by sequence number on the receive path, and a
//! partition *holds* deliveries (and isolated senders' multicasts) until it
//! heals, preserving the single total order end to end.

use crate::fault::{FaultConfig, FaultRecord, FaultState, NETWORK_REPLICA};
use crate::traits::{BatchEntry, Delivery, GcsError, View, HELD_SEND_SEQ};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use sirep_common::journal::FaultKind;
use sirep_common::{
    precise_sleep, Event, Gauge, GaugeReading, Journal, MemberId, TimeScale,
    DEFAULT_JOURNAL_CAPACITY,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default receiver-side coalescing cap for the sim backend (mirrors the
/// TCP sequencer's writer-side cap).
pub const DEFAULT_SIM_BATCH: usize = 32;

/// SimGroup configuration.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// One-way delivery latency for a uniform reliable total-order
    /// multicast, in model milliseconds (the paper cites ≤3 ms).
    pub total_order_delay_ms: f64,
    /// One-way delivery latency for plain FIFO multicast (cheaper: no
    /// stability round).
    pub fifo_delay_ms: f64,
    /// Time for the failure detector to notice a crash and install the new
    /// view ("reconfiguration [...] can take up to a couple of seconds").
    pub detection_delay_ms: f64,
    pub scale: TimeScale,
    /// Writeset batching: a receiver that finds several already-visible
    /// total-order deliveries queued coalesces up to this many into one
    /// [`Delivery::TotalBatch`]. `1` disables batching. Sequencing, fault
    /// decisions and per-entry seqs are unaffected — batching only groups
    /// what delivery-loop iteration order already fixed.
    pub batch_max: usize,
}

impl GroupConfig {
    /// Zero-latency config for unit tests.
    pub fn instant() -> GroupConfig {
        GroupConfig {
            total_order_delay_ms: 0.0,
            fifo_delay_ms: 0.0,
            detection_delay_ms: 0.0,
            scale: TimeScale::REAL_TIME,
            batch_max: DEFAULT_SIM_BATCH,
        }
    }

    /// The paper's LAN: ~3 ms uniform total order, ~1 ms FIFO, 1 s failure
    /// detection.
    pub fn lan(scale: TimeScale) -> GroupConfig {
        GroupConfig {
            total_order_delay_ms: 3.0,
            fifo_delay_ms: 1.0,
            detection_delay_ms: 1000.0,
            scale,
            batch_max: DEFAULT_SIM_BATCH,
        }
    }

    /// This config with delivery batching disabled — the differential and
    /// conformance suites use it to compare against the unbatched stream.
    pub fn unbatched(mut self) -> GroupConfig {
        self.batch_max = 1;
        self
    }
}

struct Timed<M> {
    visible_at: Instant,
    delivery: Delivery<M>,
}

struct MemberSlot<M> {
    alive: bool,
    tx: Sender<Timed<M>>,
    /// Monotonic per-member delivery horizon so jittered/mixed latencies
    /// can never reorder the stream.
    horizon: Instant,
    /// Deliveries held back while this member is partition-isolated,
    /// flushed in order at heal.
    held: Vec<Timed<M>>,
}

/// A multicast submitted by a partition-isolated sender: it has not reached
/// the sequencer yet and is sequenced (in submission order) at heal.
enum HeldSend<M> {
    Total { sender: MemberId, msg: M },
    Fifo { sender: MemberId, msg: M },
}

impl<M> HeldSend<M> {
    fn sender(&self) -> MemberId {
        match self {
            HeldSend::Total { sender, .. } | HeldSend::Fifo { sender, .. } => *sender,
        }
    }
}

struct GroupState<M> {
    members: HashMap<MemberId, MemberSlot<M>>,
    next_member: u64,
    next_seq: u64,
    view_id: u64,
    /// Installed fault plan (None = faithful network).
    faults: Option<FaultState>,
    /// Multicasts from isolated senders awaiting sequencing at heal.
    pending_sends: Vec<HeldSend<M>>,
}

impl<M> GroupState<M> {
    fn live_view(&self, view_id: u64) -> View {
        let mut members: Vec<MemberId> =
            self.members.iter().filter(|(_, s)| s.alive).map(|(&id, _)| id).collect();
        members.sort();
        View { id: view_id, members }
    }

    /// Sorted ids of live members (stable iteration for fault journaling).
    fn live_ids(&self) -> Vec<MemberId> {
        let mut ids: Vec<MemberId> =
            self.members.iter().filter(|(_, s)| s.alive).map(|(&id, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// Enqueue a delivery to every live member with the given model-ms
    /// latency; returns how many copies were enqueued (or held for
    /// partition-isolated members). Must be called under the state lock.
    ///
    /// The in-flight gauge is bumped *before* each send: the receiver
    /// decrements on receipt, and a decrement racing ahead of its own
    /// increment would saturate at zero and leave the gauge permanently
    /// drifted upward.
    ///
    /// When a fault plan is installed, each payload copy may be dropped
    /// (first attempt lost → arrives after the retransmission delay),
    /// duplicated (total-order only — the receive path dedups by seq), or
    /// extra-delayed; every decision is a pure function of the plan seed,
    /// the global message index and the member, so the schedule replays
    /// identically for the same seed.
    /// Enqueue one delivery to every live member. `msg` is the fault-plan
    /// message index claimed by the caller via [`GroupState::tick_faults`]
    /// **before** it assigned the delivery's sequence number (`None` for
    /// control traffic, which is fault-exempt). The tick must precede
    /// sequence assignment: a tick can heal a partition and re-sequence
    /// held sends, and if the caller's seq were already taken those would
    /// enqueue *ahead* of it with *higher* seqs — every member's duplicate
    /// suppression would then swallow the caller's message, losing a
    /// uniform delivery group-wide.
    fn broadcast(
        &mut self,
        delivery: Delivery<M>,
        delay_ms: f64,
        cfg: &GroupConfig,
        in_flight: &Gauge,
        msg: Option<u64>,
    ) -> u64
    where
        M: Clone,
    {
        let now = Instant::now();
        let visible = now + cfg.scale.wall(delay_ms);
        let is_total = matches!(delivery, Delivery::TotalOrder { .. });
        let is_payload = is_total || matches!(delivery, Delivery::Fifo { .. });
        let mut enqueued = 0;
        let mut suspects: Vec<MemberId> = Vec::new();
        for id in self.live_ids() {
            let mut copies = 1u32;
            let mut extra_ms = 0.0f64;
            let mut held = false;
            if let Some(f) = self.faults.as_mut() {
                held = f.is_isolated(id.raw());
                // View changes are sequencer-originated control traffic:
                // partitions hold them, but drop/duplicate/delay apply to
                // payload multicasts only (duplicates additionally only to
                // total-order, where seq-dedup is defined).
                if let (true, Some(m)) = (is_payload, msg) {
                    let d = f.decide(m, id.raw());
                    if d.extra_delay_ms > 0.0 {
                        extra_ms += d.extra_delay_ms;
                        f.note(FaultKind::ExtraDelay, m, id.raw());
                    }
                    if d.drop {
                        extra_ms += f.cfg.retransmit_delay_ms;
                        f.note(FaultKind::Drop, m, id.raw());
                    }
                    if d.duplicate && is_total {
                        copies = 2;
                        f.note(FaultKind::Duplicate, m, id.raw());
                    }
                }
            }
            let slot = self.members.get_mut(&id).expect("live member listed");
            let at = (visible + cfg.scale.wall(extra_ms)).max(slot.horizon);
            slot.horizon = at;
            for _ in 0..copies {
                in_flight.add(1);
                if held {
                    slot.held.push(Timed { visible_at: at, delivery: delivery.clone() });
                    enqueued += 1;
                } else if slot.tx.send(Timed { visible_at: at, delivery: delivery.clone() }).is_ok()
                {
                    enqueued += 1;
                } else {
                    // The member's endpoint is gone but it was never
                    // declared crashed. Silently dropping the copy would
                    // lose a uniform delivery to a member the group still
                    // believes is alive — instead mark it suspect and
                    // announce a view change below so every survivor
                    // agrees it is gone.
                    in_flight.sub(1);
                    suspects.push(id);
                    break;
                }
            }
        }
        if !suspects.is_empty() {
            self.evict(&suspects, cfg, in_flight);
        }
        enqueued
    }

    /// Declare `ids` crashed and announce a single view change covering
    /// them all. Shared by the explicit crash API, the suspect path in
    /// [`GroupState::broadcast`], and heal-time send failures.
    fn evict(&mut self, ids: &[MemberId], cfg: &GroupConfig, in_flight: &Gauge)
    where
        M: Clone,
    {
        let mut changed = false;
        for &id in ids {
            let Some(slot) = self.members.get_mut(&id) else { continue };
            if !slot.alive {
                continue;
            }
            slot.alive = false;
            // Copies held for a partitioned member die with it.
            let held = std::mem::take(&mut slot.held);
            in_flight.sub(held.len() as u64);
            changed = true;
            if let Some(f) = self.faults.as_mut() {
                f.forget_member(id.raw());
            }
            // Unsequenced multicasts from the dead member are discarded:
            // the sender crashed before its message reached the sequencer,
            // so "not at all" is the uniform-delivery-compliant outcome.
            self.pending_sends.retain(|p| p.sender() != id);
        }
        if changed {
            self.view_id += 1;
            let view = self.live_view(self.view_id);
            let _ = self.broadcast(
                Delivery::ViewChange(view),
                cfg.detection_delay_ms,
                cfg,
                in_flight,
                None,
            );
        }
    }

    /// Advance the fault plan by one message: heal a due planned partition,
    /// claim the message index, and possibly start a new planned partition.
    fn tick_faults(&mut self, cfg: &GroupConfig, in_flight: &Gauge) -> u64
    where
        M: Clone,
    {
        if self.faults.as_ref().is_some_and(FaultState::plan_heal_due) {
            self.heal_locked(cfg, in_flight);
        }
        let live: Vec<u64> = self.live_ids().iter().map(|id| id.raw()).collect();
        let f = self.faults.as_mut().expect("tick_faults requires an installed plan");
        let m = f.next_msg();
        if let Some(isolated) = f.plan_partition(m, &live) {
            f.begin_partition(m, isolated, false);
        }
        m
    }

    /// Heal any active partition: flush held delivery copies in their
    /// original order, then sequence the multicasts the isolated members
    /// submitted while cut off. Must be called under the state lock.
    fn heal_locked(&mut self, cfg: &GroupConfig, in_flight: &Gauge)
    where
        M: Clone,
    {
        let iso: Vec<u64> = match self.faults.as_mut() {
            // Clear the isolation set up front so the recursive broadcasts
            // below deliver directly instead of re-holding.
            Some(f) if !f.isolated.is_empty() => {
                std::mem::take(&mut f.isolated).into_iter().collect()
            }
            _ => return,
        };
        let mut flushed = 0u64;
        let mut suspects: Vec<MemberId> = Vec::new();
        for raw in iso {
            let id = MemberId::new(raw);
            let Some(slot) = self.members.get_mut(&id) else { continue };
            let held = std::mem::take(&mut slot.held);
            if !slot.alive {
                in_flight.sub(held.len() as u64);
                continue;
            }
            for t in held {
                if slot.tx.send(t).is_ok() {
                    flushed += 1;
                } else {
                    in_flight.sub(1);
                    if !suspects.contains(&id) {
                        suspects.push(id);
                    }
                }
            }
        }
        self.faults.as_mut().expect("partition implies plan").end_partition(flushed);
        // Sequence the held sends in submission order; each goes through
        // the normal broadcast path (and is itself fault-eligible).
        let pending = std::mem::take(&mut self.pending_sends);
        for p in pending {
            // Each re-sequenced send is a fresh multicast: tick first (the
            // tick may recursively heal a partition planned mid-loop; by
            // then `pending_sends` is already drained, so the recursion
            // only flushes held copies), then take the seq.
            let m = self.tick_faults(cfg, in_flight);
            match p {
                HeldSend::Total { sender, msg } => {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let _ = self.broadcast(
                        Delivery::TotalOrder { seq, sender, sequenced_at: Instant::now(), msg },
                        cfg.total_order_delay_ms,
                        cfg,
                        in_flight,
                        Some(m),
                    );
                }
                HeldSend::Fifo { sender, msg } => {
                    let _ = self.broadcast(
                        Delivery::Fifo { sender, msg },
                        cfg.fifo_delay_ms,
                        cfg,
                        in_flight,
                        Some(m),
                    );
                }
            }
        }
        if !suspects.is_empty() {
            self.evict(&suspects, cfg, in_flight);
        }
    }

    /// Heal until no partition remains. The re-broadcasts inside one
    /// `heal_locked` pass tick the fault plan and may *start* a fresh
    /// planned partition; with no follow-up traffic (a drained scripted
    /// run) nothing would ever heal it, so loop. Terminates because
    /// `pending_sends` can only refill while the lock is released.
    fn heal_fully(&mut self, cfg: &GroupConfig, in_flight: &Gauge)
    where
        M: Clone,
    {
        while self.faults.as_ref().is_some_and(|f| !f.isolated.is_empty()) {
            self.heal_locked(cfg, in_flight);
        }
    }
}

struct GroupInner<M> {
    state: Mutex<GroupState<M>>,
    config: GroupConfig,
    /// Delivery copies enqueued but not yet received by their member —
    /// the "GCS in-flight" gauge surfaced through `NodeStatus`.
    in_flight: Gauge,
}

/// Crash a member: shared implementation behind [`SimGroup::crash`] and
/// [`SimHandle::crash_self`].
fn crash_member<M: Clone + Send + 'static>(inner: &GroupInner<M>, id: MemberId) {
    let mut st = inner.state.lock();
    if !st.members.get(&id).is_some_and(|s| s.alive) {
        return;
    }
    st.evict(&[id], &inner.config, &inner.in_flight);
}

/// A simulated process group. Cloning shares the group.
pub struct SimGroup<M> {
    inner: Arc<GroupInner<M>>,
}

impl<M> Clone for SimGroup<M> {
    fn clone(&self) -> Self {
        SimGroup { inner: Arc::clone(&self.inner) }
    }
}

impl<M: Clone + Send + 'static> SimGroup<M> {
    pub fn new(config: GroupConfig) -> SimGroup<M> {
        SimGroup {
            inner: Arc::new(GroupInner {
                state: Mutex::new(GroupState {
                    members: HashMap::new(),
                    next_member: 0,
                    next_seq: 0,
                    view_id: 0,
                    faults: None,
                    pending_sends: Vec::new(),
                }),
                config,
                in_flight: Gauge::new(),
            }),
        }
    }

    /// Join the group: returns the new member's endpoint. All members
    /// (including the new one) receive the new view.
    pub fn join(&self) -> SimMember<M> {
        let (tx, rx) = channel::unbounded();
        let mut st = self.inner.state.lock();
        let id = MemberId::new(st.next_member);
        st.next_member += 1;
        st.members
            .insert(id, MemberSlot { alive: true, tx, horizon: Instant::now(), held: Vec::new() });
        st.view_id += 1;
        let view = st.live_view(st.view_id);
        let _ = st.broadcast(
            Delivery::ViewChange(view),
            0.0,
            &self.inner.config,
            &self.inner.in_flight,
            None,
        );
        drop(st);
        SimMember {
            id,
            group: Arc::clone(&self.inner),
            rx,
            last_seq: AtomicU64::new(u64::MAX),
            stash: Mutex::new(None),
        }
    }

    /// Crash a member: it is removed from the group and every survivor
    /// receives a view change after the (simulated) failure-detection delay.
    /// Messages the member multicast before the crash are already in every
    /// queue, *ahead of* the view change.
    pub fn crash(&self, id: MemberId) {
        crash_member(&self.inner, id);
    }

    /// The current view (live members).
    pub fn view(&self) -> View {
        let st = self.inner.state.lock();
        st.live_view(st.view_id)
    }

    pub fn config(&self) -> &GroupConfig {
        &self.inner.config
    }

    /// Delivery copies enqueued but not yet received, with high-water mark.
    pub fn in_flight(&self) -> GaugeReading {
        self.inner.in_flight.read()
    }

    /// Install a seeded fault plan (replacing any previous plan along with
    /// its journal, log and fingerprint).
    pub fn install_faults(&self, cfg: FaultConfig) {
        self.install_faults_with_epoch(cfg, Instant::now());
    }

    /// Install a fault plan whose journal events are stamped against a
    /// shared `epoch`, so they merge onto the cluster-wide timeline.
    pub fn install_faults_with_epoch(&self, cfg: FaultConfig, epoch: Instant) {
        let journal = Journal::with_epoch(NETWORK_REPLICA, epoch, DEFAULT_JOURNAL_CAPACITY);
        self.inner.state.lock().faults = Some(FaultState::new(cfg, journal));
    }

    /// Explicitly partition the group: `members` stop receiving (deliveries
    /// are held) and their own multicasts wait unsequenced until [`heal`].
    /// Installs a quiet fault plan if none is present; an already-active
    /// partition is healed first.
    ///
    /// [`heal`]: SimGroup::heal
    pub fn partition(&self, members: &[MemberId]) {
        let mut st = self.inner.state.lock();
        if st.faults.is_none() {
            st.faults = Some(FaultState::new(FaultConfig::quiet(0), Journal::new(NETWORK_REPLICA)));
        }
        st.heal_fully(&self.inner.config, &self.inner.in_flight);
        let mut isolated: Vec<u64> = members
            .iter()
            .filter(|id| st.members.get(id).is_some_and(|s| s.alive))
            .map(|id| id.raw())
            .collect();
        isolated.sort_unstable();
        isolated.dedup();
        if isolated.is_empty() {
            return;
        }
        let f = st.faults.as_mut().expect("installed above");
        let msg = f.current_msg();
        f.begin_partition(msg, isolated, true);
    }

    /// Heal any active partition (planned or explicit): held deliveries
    /// flush in order, then the isolated members' multicasts are sequenced.
    pub fn heal(&self) {
        self.inner.state.lock().heal_fully(&self.inner.config, &self.inner.in_flight);
    }

    /// `(fnv1a_fingerprint, record_count)` of the fault schedule so far —
    /// `None` when no plan is installed. Equal pairs mean byte-identical
    /// schedules; the chaos harness compares them across seed replays.
    pub fn fault_fingerprint(&self) -> Option<(u64, u64)> {
        self.inner.state.lock().faults.as_ref().map(FaultState::fingerprint)
    }

    /// The retained fault schedule (bounded; the fingerprint keeps covering
    /// records past the retention cap).
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        self.inner.state.lock().faults.as_ref().map(FaultState::log).unwrap_or_default()
    }

    /// `(faults_injected, partitioned)` gauge readings from the installed
    /// plan, if any.
    pub fn fault_gauges(&self) -> Option<(GaugeReading, GaugeReading)> {
        let st = self.inner.state.lock();
        st.faults.as_ref().map(|f| (f.injected.read(), f.partitioned.read()))
    }

    /// Snapshot of the network fault journal (events attributed to
    /// [`NETWORK_REPLICA`]).
    pub fn fault_journal(&self) -> Vec<Event> {
        let st = self.inner.state.lock();
        st.faults.as_ref().map(|f| f.journal().snapshot()).unwrap_or_default()
    }
}

/// A clonable multicast-only handle (e.g. for worker threads that send but
/// never receive).
pub struct SimHandle<M> {
    id: MemberId,
    group: Arc<GroupInner<M>>,
}

impl<M> Clone for SimHandle<M> {
    fn clone(&self) -> Self {
        SimHandle { id: self.id, group: Arc::clone(&self.group) }
    }
}

impl<M: Clone + Send + 'static> SimHandle<M> {
    pub fn id(&self) -> MemberId {
        self.id
    }

    /// Uniform reliable total-order multicast to the whole group (including
    /// the sender). Returns [`HELD_SEND_SEQ`] when the sender is inside an
    /// active partition: the message is sequenced when the partition heals.
    pub fn multicast_total(&self, msg: M) -> Result<u64, GcsError> {
        let cfg = &self.group.config;
        let mut st = self.group.state.lock();
        if !st.members.get(&self.id).is_some_and(|s| s.alive) {
            return Err(GcsError::MemberCrashed);
        }
        // Advance the fault plan *before* sequencing (see `broadcast`); the
        // tick may heal the very partition isolating this sender.
        let m = if st.faults.is_some() {
            Some(st.tick_faults(cfg, &self.group.in_flight))
        } else {
            None
        };
        if st.faults.as_ref().is_some_and(|f| f.is_isolated(self.id.raw())) {
            st.pending_sends.push(HeldSend::Total { sender: self.id, msg });
            return Ok(HELD_SEND_SEQ);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let _ = st.broadcast(
            Delivery::TotalOrder { seq, sender: self.id, sequenced_at: Instant::now(), msg },
            cfg.total_order_delay_ms,
            cfg,
            &self.group.in_flight,
            m,
        );
        drop(st);
        Ok(seq)
    }

    /// FIFO multicast to the whole group (including the sender).
    pub fn multicast_fifo(&self, msg: M) -> Result<(), GcsError> {
        let cfg = &self.group.config;
        let mut st = self.group.state.lock();
        if !st.members.get(&self.id).is_some_and(|s| s.alive) {
            return Err(GcsError::MemberCrashed);
        }
        let m = if st.faults.is_some() {
            Some(st.tick_faults(cfg, &self.group.in_flight))
        } else {
            None
        };
        if st.faults.as_ref().is_some_and(|f| f.is_isolated(self.id.raw())) {
            st.pending_sends.push(HeldSend::Fifo { sender: self.id, msg });
            return Ok(());
        }
        let _ = st.broadcast(
            Delivery::Fifo { sender: self.id, msg },
            cfg.fifo_delay_ms,
            cfg,
            &self.group.in_flight,
            m,
        );
        drop(st);
        Ok(())
    }

    /// Crash-stop this member from inside the process that backs it —
    /// crash-point support. Identical to [`SimGroup::crash`] on the owning
    /// group: survivors get a view change after the detection delay.
    pub fn crash_self(&self) {
        crash_member(&self.group, self.id);
    }

    /// Delivery copies enqueued but not yet received, group-wide.
    pub fn in_flight(&self) -> GaugeReading {
        self.group.in_flight.read()
    }
}

/// A member endpoint: receives deliveries, can multicast.
pub struct SimMember<M> {
    id: MemberId,
    group: Arc<GroupInner<M>>,
    rx: Receiver<Timed<M>>,
    /// Highest total-order sequence number delivered to this endpoint, for
    /// duplicate suppression (`u64::MAX` = none yet). Sound because all
    /// enqueues happen under the group lock, so this channel sees strictly
    /// increasing seqs except for injected duplicate copies.
    last_seq: AtomicU64,
    /// One delivery pulled off the queue during batch coalescing that could
    /// not join the batch (not total-order, or not yet visible). Drained
    /// ahead of the channel by the next receive, preserving stream order.
    stash: Mutex<Option<Timed<M>>>,
}

impl<M: Clone + Send + 'static> SimMember<M> {
    pub fn id(&self) -> MemberId {
        self.id
    }

    /// A clonable handle for multicasting from other threads.
    pub fn handle(&self) -> SimHandle<M> {
        SimHandle { id: self.id, group: Arc::clone(&self.group) }
    }

    pub fn multicast_total(&self, msg: M) -> Result<u64, GcsError> {
        self.handle().multicast_total(msg)
    }

    pub fn multicast_fifo(&self, msg: M) -> Result<(), GcsError> {
        self.handle().multicast_fifo(msg)
    }

    /// Account for, dedup, and latency-delay one raw delivery. `None`
    /// means the copy repeated an already-delivered total-order sequence
    /// number (an injected duplicate) and was consumed silently — the
    /// `(tid, incarnation)`-keyed outcome dedup in the replication core
    /// backs this up for any payload-level replay.
    fn admit(&self, t: Timed<M>) -> Option<Delivery<M>> {
        self.group.in_flight.sub(1);
        if let Delivery::TotalOrder { seq, .. } = &t.delivery {
            let last = self.last_seq.load(Ordering::Relaxed);
            if last != u64::MAX && *seq <= last {
                return None;
            }
            self.last_seq.store(*seq, Ordering::Relaxed);
        }
        wait_until(t.visible_at);
        Some(t.delivery)
    }

    /// The stashed delivery left behind by a previous coalescing pass, if
    /// any — it precedes everything still on the channel.
    fn take_stashed(&self) -> Option<Timed<M>> {
        self.stash.lock().take()
    }

    /// Greedily coalesce already-visible queued total-order deliveries
    /// behind `first` into one [`Delivery::TotalBatch`], up to the config
    /// cap. Dedup and gauge accounting per entry are identical to
    /// [`SimMember::admit`]; the first delivery that cannot join the batch
    /// (view/FIFO, or latency not yet elapsed — coalescing never waits) is
    /// stashed for the next receive. With `batch_max <= 1` this is the
    /// identity function.
    fn coalesce(&self, first: Delivery<M>) -> Delivery<M> {
        let batch_max = self.group.config.batch_max;
        if batch_max <= 1 {
            return first;
        }
        let (seq0, sender0, sequenced_at, msg0) = match first {
            Delivery::TotalOrder { seq, sender, sequenced_at, msg } => {
                (seq, sender, sequenced_at, msg)
            }
            other => return other,
        };
        let mut entries = vec![BatchEntry { seq: seq0, sender: sender0, msg: msg0 }];
        while entries.len() < batch_max {
            let Ok(t) = self.rx.try_recv() else { break };
            let Timed { visible_at, delivery } = t;
            match delivery {
                Delivery::TotalOrder { seq, sender, msg, .. } if visible_at <= Instant::now() => {
                    self.group.in_flight.sub(1);
                    let last = self.last_seq.load(Ordering::Relaxed);
                    if last != u64::MAX && seq <= last {
                        continue; // injected duplicate copy
                    }
                    self.last_seq.store(seq, Ordering::Relaxed);
                    entries.push(BatchEntry { seq, sender, msg });
                }
                delivery => {
                    *self.stash.lock() = Some(Timed { visible_at, delivery });
                    break;
                }
            }
        }
        if entries.len() == 1 {
            let e = entries.pop().expect("len checked above");
            Delivery::TotalOrder { seq: e.seq, sender: e.sender, sequenced_at, msg: e.msg }
        } else {
            Delivery::TotalBatch { sequenced_at, entries }
        }
    }

    /// Blocking receive; sleeps until the delivery's simulated arrival time.
    pub fn recv(&self) -> Result<Delivery<M>, GcsError> {
        loop {
            let t = match self.take_stashed() {
                Some(t) => t,
                None => match self.rx.recv() {
                    Ok(t) => t,
                    Err(_) => return Err(GcsError::Disconnected),
                },
            };
            if let Some(d) = self.admit(t) {
                return Ok(self.coalesce(d));
            }
        }
    }

    /// Receive with a wall-clock timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Delivery<M>, GcsError> {
        let deadline = Instant::now() + timeout;
        loop {
            let t = match self.take_stashed() {
                Some(t) => t,
                None => match self.rx.recv_deadline(deadline) {
                    Ok(t) => t,
                    Err(channel::RecvTimeoutError::Timeout) => return Err(GcsError::Timeout),
                    Err(channel::RecvTimeoutError::Disconnected) => {
                        return Err(GcsError::Disconnected)
                    }
                },
            };
            // Honour the simulated latency but never past the caller's
            // deadline by more than the remaining sim delay.
            if let Some(d) = self.admit(t) {
                return Ok(self.coalesce(d));
            }
        }
    }

    /// Non-blocking receive: returns a delivery only if one has already
    /// "arrived" (its simulated latency elapsed).
    pub fn try_recv(&self) -> Option<Delivery<M>> {
        loop {
            let t = match self.take_stashed() {
                Some(t) => t,
                None => self.rx.try_recv().ok()?,
            };
            if let Some(d) = self.admit(t) {
                return Some(self.coalesce(d));
            }
        }
    }

    /// Delivery copies enqueued but not yet received, group-wide.
    pub fn in_flight(&self) -> GaugeReading {
        self.group.in_flight.read()
    }

    /// The current view as known by the group.
    pub fn view(&self) -> View {
        let st = self.group.state.lock();
        st.live_view(st.view_id)
    }
}

fn wait_until(at: Instant) {
    let now = Instant::now();
    if at > now {
        precise_sleep(at - now);
    }
}

// ---------------------------------------------------------------------------
// Transport-trait impls: the sim backend behind `crate::traits`. Pure
// delegation to the inherent methods above — the sim semantics (synchronous
// sequencing, seeded faults, model-time latency) are unchanged.
// ---------------------------------------------------------------------------

impl<M: Clone + Send + 'static> crate::traits::Group<M> for SimGroup<M> {
    fn join(&self) -> Result<Box<dyn crate::traits::Member<M>>, GcsError> {
        Ok(Box::new(SimGroup::join(self)))
    }

    fn crash(&self, id: MemberId) {
        SimGroup::crash(self, id);
    }

    fn view(&self) -> View {
        SimGroup::view(self)
    }

    fn in_flight(&self) -> GaugeReading {
        SimGroup::in_flight(self)
    }

    fn install_faults_with_epoch(&self, cfg: FaultConfig, epoch: Instant) {
        SimGroup::install_faults_with_epoch(self, cfg, epoch);
    }

    fn partition(&self, members: &[MemberId]) {
        SimGroup::partition(self, members);
    }

    fn heal(&self) {
        SimGroup::heal(self);
    }

    fn fault_fingerprint(&self) -> Option<(u64, u64)> {
        SimGroup::fault_fingerprint(self)
    }

    fn fault_log(&self) -> Vec<FaultRecord> {
        SimGroup::fault_log(self)
    }

    fn fault_gauges(&self) -> Option<(GaugeReading, GaugeReading)> {
        SimGroup::fault_gauges(self)
    }

    fn fault_journal(&self) -> Vec<Event> {
        SimGroup::fault_journal(self)
    }
}

impl<M: Clone + Send + 'static> crate::traits::Member<M> for SimMember<M> {
    fn id(&self) -> MemberId {
        SimMember::id(self)
    }

    fn handle(&self) -> Box<dyn crate::traits::Cast<M>> {
        Box::new(SimMember::handle(self))
    }

    fn recv(&self) -> Result<Delivery<M>, GcsError> {
        SimMember::recv(self)
    }

    fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Delivery<M>, GcsError> {
        SimMember::recv_timeout(self, timeout)
    }

    fn try_recv(&self) -> Option<Delivery<M>> {
        SimMember::try_recv(self)
    }

    fn view(&self) -> View {
        SimMember::view(self)
    }

    fn in_flight(&self) -> GaugeReading {
        SimMember::in_flight(self)
    }

    fn leave(&self) {
        // The sim group has no distinct graceful-leave protocol: survivors
        // observe the same view change either way.
        SimMember::handle(self).crash_self();
    }
}

impl<M: Clone + Send + 'static> crate::traits::Cast<M> for SimHandle<M> {
    fn id(&self) -> MemberId {
        SimHandle::id(self)
    }

    fn multicast_total(&self, msg: M) -> Result<u64, GcsError> {
        SimHandle::multicast_total(self, msg)
    }

    fn multicast_fifo(&self, msg: M) -> Result<(), GcsError> {
        SimHandle::multicast_fifo(self, msg)
    }

    fn crash_self(&self) {
        SimHandle::crash_self(self);
    }

    fn in_flight(&self) -> GaugeReading {
        SimHandle::in_flight(self)
    }

    fn clone_cast(&self) -> Box<dyn crate::traits::Cast<M>> {
        Box::new(self.clone())
    }
}
