//! The group: membership, sequencing, and delivery queues.
//!
//! All sequencing decisions happen under one mutex, which makes the
//! guarantees easy to state and verify:
//!
//! - **Total order**: every total-order multicast is assigned a global
//!   sequence number and enqueued to *every* live member's queue while the
//!   lock is held, so all members see all messages (total-order, FIFO and
//!   view changes) in one consistent stream.
//! - **Uniform reliable delivery**: a multicast either happens-before a
//!   crash (it was sequenced first, so it sits in every survivor's queue
//!   *ahead of* the view change announcing the crash) or it is rejected
//!   (the member was already marked crashed). This is exactly the property
//!   §5.4 of the paper relies on for in-doubt transaction resolution: a new
//!   replica that waits for the crash notification "either receives the
//!   writeset before being informed about the crash or not at all".
//! - **View synchrony**: all members deliver the same view changes at the
//!   same position in the message stream.
//!
//! Network latency is simulated at the *receiver*: each delivery carries the
//! wall-clock instant at which it becomes visible, and [`Member::recv`]
//! sleeps until then. Latency is a [`TimeScale`]-scaled model duration, so
//! the paper's "3 ms per uniform reliable multicast in a LAN" (§5.2) is one
//! config knob.

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use sirep_common::{precise_sleep, Gauge, GaugeReading, MemberId, TimeScale};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Group configuration.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// One-way delivery latency for a uniform reliable total-order
    /// multicast, in model milliseconds (the paper cites ≤3 ms).
    pub total_order_delay_ms: f64,
    /// One-way delivery latency for plain FIFO multicast (cheaper: no
    /// stability round).
    pub fifo_delay_ms: f64,
    /// Time for the failure detector to notice a crash and install the new
    /// view ("reconfiguration [...] can take up to a couple of seconds").
    pub detection_delay_ms: f64,
    pub scale: TimeScale,
}

impl GroupConfig {
    /// Zero-latency config for unit tests.
    pub fn instant() -> GroupConfig {
        GroupConfig {
            total_order_delay_ms: 0.0,
            fifo_delay_ms: 0.0,
            detection_delay_ms: 0.0,
            scale: TimeScale::REAL_TIME,
        }
    }

    /// The paper's LAN: ~3 ms uniform total order, ~1 ms FIFO, 1 s failure
    /// detection.
    pub fn lan(scale: TimeScale) -> GroupConfig {
        GroupConfig {
            total_order_delay_ms: 3.0,
            fifo_delay_ms: 1.0,
            detection_delay_ms: 1000.0,
            scale,
        }
    }
}

/// A membership view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    pub id: u64,
    pub members: Vec<MemberId>,
}

impl View {
    pub fn contains(&self, m: MemberId) -> bool {
        self.members.contains(&m)
    }
}

/// What a member receives.
#[derive(Debug, Clone)]
pub enum Delivery<M> {
    /// Uniform reliable total-order multicast: same position in every
    /// member's stream. `seq` is the global sequence number;
    /// `sequenced_at` is the wall-clock instant the message was sequenced
    /// (sent), so receivers can attribute multicast latency precisely.
    TotalOrder { seq: u64, sender: MemberId, sequenced_at: Instant, msg: M },
    /// FIFO multicast: per-sender order only (still globally consistent in
    /// this implementation, as in Spread's agreed-order service levels).
    Fifo { sender: MemberId, msg: M },
    /// A membership change (crash or join).
    ViewChange(View),
}

/// Errors surfaced by group operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcsError {
    /// The member was removed from the group (crashed) — its endpoint is
    /// dead.
    MemberCrashed,
    /// recv() on a crashed/empty endpoint.
    Disconnected,
    /// recv_timeout() elapsed.
    Timeout,
}

impl fmt::Display for GcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GcsError::MemberCrashed => "member has crashed",
            GcsError::Disconnected => "endpoint disconnected",
            GcsError::Timeout => "timed out",
        };
        f.write_str(s)
    }
}

impl std::error::Error for GcsError {}

struct Timed<M> {
    visible_at: Instant,
    delivery: Delivery<M>,
}

struct MemberSlot<M> {
    alive: bool,
    tx: Sender<Timed<M>>,
    /// Monotonic per-member delivery horizon so jittered/mixed latencies
    /// can never reorder the stream.
    horizon: Instant,
}

struct GroupState<M> {
    members: HashMap<MemberId, MemberSlot<M>>,
    next_member: u64,
    next_seq: u64,
    view_id: u64,
}

impl<M> GroupState<M> {
    fn live_view(&self, view_id: u64) -> View {
        let mut members: Vec<MemberId> =
            self.members.iter().filter(|(_, s)| s.alive).map(|(&id, _)| id).collect();
        members.sort();
        View { id: view_id, members }
    }

    /// Enqueue a delivery to every live member with the given model-ms
    /// latency; returns how many copies were enqueued. Must be called under
    /// the state lock. The in-flight gauge is bumped *before* each send:
    /// the receiver decrements on receipt, and a decrement racing ahead of
    /// its own increment would saturate at zero and leave the gauge
    /// permanently drifted upward.
    fn broadcast(
        &mut self,
        delivery: Delivery<M>,
        delay_ms: f64,
        scale: TimeScale,
        in_flight: &Gauge,
    ) -> u64
    where
        M: Clone,
    {
        let now = Instant::now();
        let visible = now + scale.wall(delay_ms);
        let mut enqueued = 0;
        for slot in self.members.values_mut().filter(|s| s.alive) {
            let at = visible.max(slot.horizon);
            slot.horizon = at;
            // A full queue / dropped receiver means the member endpoint was
            // dropped; treat as crashed-silently.
            in_flight.add(1);
            if slot.tx.send(Timed { visible_at: at, delivery: delivery.clone() }).is_ok() {
                enqueued += 1;
            } else {
                // Nobody will ever receive this copy; take the count back.
                in_flight.sub(1);
            }
        }
        enqueued
    }
}

struct GroupInner<M> {
    state: Mutex<GroupState<M>>,
    config: GroupConfig,
    /// Delivery copies enqueued but not yet received by their member —
    /// the "GCS in-flight" gauge surfaced through `NodeStatus`.
    in_flight: Gauge,
}

/// A simulated process group. Cloning shares the group.
pub struct Group<M> {
    inner: Arc<GroupInner<M>>,
}

impl<M> Clone for Group<M> {
    fn clone(&self) -> Self {
        Group { inner: Arc::clone(&self.inner) }
    }
}

impl<M: Clone + Send + 'static> Group<M> {
    pub fn new(config: GroupConfig) -> Group<M> {
        Group {
            inner: Arc::new(GroupInner {
                state: Mutex::new(GroupState {
                    members: HashMap::new(),
                    next_member: 0,
                    next_seq: 0,
                    view_id: 0,
                }),
                config,
                in_flight: Gauge::new(),
            }),
        }
    }

    /// Join the group: returns the new member's endpoint. All members
    /// (including the new one) receive the new view.
    pub fn join(&self) -> Member<M> {
        let (tx, rx) = channel::unbounded();
        let mut st = self.inner.state.lock();
        let id = MemberId::new(st.next_member);
        st.next_member += 1;
        st.members.insert(id, MemberSlot { alive: true, tx, horizon: Instant::now() });
        st.view_id += 1;
        let view = st.live_view(st.view_id);
        let _ = st.broadcast(
            Delivery::ViewChange(view),
            0.0,
            self.inner.config.scale,
            &self.inner.in_flight,
        );
        drop(st);
        Member { id, group: Arc::clone(&self.inner), rx }
    }

    /// Crash a member: it is removed from the group and every survivor
    /// receives a view change after the (simulated) failure-detection delay.
    /// Messages the member multicast before the crash are already in every
    /// queue, *ahead of* the view change.
    pub fn crash(&self, id: MemberId) {
        let mut st = self.inner.state.lock();
        let Some(slot) = st.members.get_mut(&id) else {
            return;
        };
        if !slot.alive {
            return;
        }
        slot.alive = false;
        st.view_id += 1;
        let view = st.live_view(st.view_id);
        let _ = st.broadcast(
            Delivery::ViewChange(view),
            self.inner.config.detection_delay_ms,
            self.inner.config.scale,
            &self.inner.in_flight,
        );
    }

    /// The current view (live members).
    pub fn view(&self) -> View {
        let st = self.inner.state.lock();
        st.live_view(st.view_id)
    }

    pub fn config(&self) -> &GroupConfig {
        &self.inner.config
    }

    /// Delivery copies enqueued but not yet received, with high-water mark.
    pub fn in_flight(&self) -> GaugeReading {
        self.inner.in_flight.read()
    }
}

/// A clonable multicast-only handle (e.g. for worker threads that send but
/// never receive).
pub struct GcsHandle<M> {
    id: MemberId,
    group: Arc<GroupInner<M>>,
}

impl<M> Clone for GcsHandle<M> {
    fn clone(&self) -> Self {
        GcsHandle { id: self.id, group: Arc::clone(&self.group) }
    }
}

impl<M: Clone + Send + 'static> GcsHandle<M> {
    pub fn id(&self) -> MemberId {
        self.id
    }

    /// Uniform reliable total-order multicast to the whole group (including
    /// the sender).
    pub fn multicast_total(&self, msg: M) -> Result<u64, GcsError> {
        let cfg = /* copy out to avoid borrow issues */ (
            self.group.config.total_order_delay_ms,
            self.group.config.scale,
        );
        let mut st = self.group.state.lock();
        if !st.members.get(&self.id).is_some_and(|s| s.alive) {
            return Err(GcsError::MemberCrashed);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        let _ = st.broadcast(
            Delivery::TotalOrder { seq, sender: self.id, sequenced_at: Instant::now(), msg },
            cfg.0,
            cfg.1,
            &self.group.in_flight,
        );
        drop(st);
        Ok(seq)
    }

    /// FIFO multicast to the whole group (including the sender).
    pub fn multicast_fifo(&self, msg: M) -> Result<(), GcsError> {
        let cfg = (self.group.config.fifo_delay_ms, self.group.config.scale);
        let mut st = self.group.state.lock();
        if !st.members.get(&self.id).is_some_and(|s| s.alive) {
            return Err(GcsError::MemberCrashed);
        }
        let _ = st.broadcast(
            Delivery::Fifo { sender: self.id, msg },
            cfg.0,
            cfg.1,
            &self.group.in_flight,
        );
        drop(st);
        Ok(())
    }

    /// Delivery copies enqueued but not yet received, group-wide.
    pub fn in_flight(&self) -> GaugeReading {
        self.group.in_flight.read()
    }
}

/// A member endpoint: receives deliveries, can multicast.
pub struct Member<M> {
    id: MemberId,
    group: Arc<GroupInner<M>>,
    rx: Receiver<Timed<M>>,
}

impl<M: Clone + Send + 'static> Member<M> {
    pub fn id(&self) -> MemberId {
        self.id
    }

    /// A clonable handle for multicasting from other threads.
    pub fn handle(&self) -> GcsHandle<M> {
        GcsHandle { id: self.id, group: Arc::clone(&self.group) }
    }

    pub fn multicast_total(&self, msg: M) -> Result<u64, GcsError> {
        self.handle().multicast_total(msg)
    }

    pub fn multicast_fifo(&self, msg: M) -> Result<(), GcsError> {
        self.handle().multicast_fifo(msg)
    }

    /// Blocking receive; sleeps until the delivery's simulated arrival time.
    pub fn recv(&self) -> Result<Delivery<M>, GcsError> {
        match self.rx.recv() {
            Ok(t) => {
                self.group.in_flight.sub(1);
                wait_until(t.visible_at);
                Ok(t.delivery)
            }
            Err(_) => Err(GcsError::Disconnected),
        }
    }

    /// Receive with a wall-clock timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Delivery<M>, GcsError> {
        let deadline = Instant::now() + timeout;
        match self.rx.recv_deadline(deadline) {
            Ok(t) => {
                self.group.in_flight.sub(1);
                // Honour the simulated latency but never past the caller's
                // deadline by more than the remaining sim delay.
                wait_until(t.visible_at);
                Ok(t.delivery)
            }
            Err(channel::RecvTimeoutError::Timeout) => Err(GcsError::Timeout),
            Err(channel::RecvTimeoutError::Disconnected) => Err(GcsError::Disconnected),
        }
    }

    /// Non-blocking receive: returns a delivery only if one has already
    /// "arrived" (its simulated latency elapsed).
    pub fn try_recv(&self) -> Option<Delivery<M>> {
        match self.rx.try_recv() {
            Ok(t) => {
                self.group.in_flight.sub(1);
                wait_until(t.visible_at);
                Some(t.delivery)
            }
            Err(_) => None,
        }
    }

    /// Delivery copies enqueued but not yet received, group-wide.
    pub fn in_flight(&self) -> GaugeReading {
        self.group.in_flight.read()
    }

    /// The current view as known by the group.
    pub fn view(&self) -> View {
        let st = self.group.state.lock();
        st.live_view(st.view_id)
    }
}

fn wait_until(at: Instant) {
    let now = Instant::now();
    if at > now {
        precise_sleep(at - now);
    }
}
