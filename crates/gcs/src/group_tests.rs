//! Semantics tests for the group communication system.

use crate::group::*;
use crate::traits::{Delivery, GcsError, HELD_SEND_SEQ};
use sirep_common::{MemberId, TimeScale};
use std::thread;
use std::time::{Duration, Instant};

/// Drain any pending view changes (joins produce them).
fn drain_views<M: Clone + Send + 'static>(m: &SimMember<M>) {
    while let Some(d) = m.try_recv() {
        assert!(matches!(d, Delivery::ViewChange(_)), "unexpected early delivery");
    }
}

fn collect_total<M: Clone + Send + 'static>(m: &SimMember<M>, n: usize) -> Vec<(u64, M)> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match m.recv_timeout(Duration::from_secs(5)).expect("timed out") {
            Delivery::TotalOrder { seq, msg, .. } => out.push((seq, msg)),
            Delivery::TotalBatch { entries, .. } => {
                out.extend(entries.into_iter().map(|e| (e.seq, e.msg)));
            }
            Delivery::Fifo { .. } | Delivery::ViewChange(_) => {}
        }
    }
    out
}

#[test]
fn total_order_is_identical_across_members() {
    let group: SimGroup<(u64, u64)> = SimGroup::new(GroupConfig::instant());
    let members: Vec<SimMember<(u64, u64)>> = (0..4).map(|_| group.join()).collect();
    for m in &members {
        drain_views(m);
    }
    // 4 sender threads × 50 messages, concurrently.
    let mut senders = Vec::new();
    for (i, m) in members.iter().enumerate() {
        let h = m.handle();
        senders.push(thread::spawn(move || {
            for j in 0..50u64 {
                h.multicast_total((i as u64, j)).unwrap();
            }
        }));
    }
    for s in senders {
        s.join().unwrap();
    }
    let streams: Vec<Vec<(u64, (u64, u64))>> =
        members.iter().map(|m| collect_total(m, 200)).collect();
    for s in &streams[1..] {
        assert_eq!(s, &streams[0], "members disagree on total order");
    }
    // Sequence numbers are dense and increasing.
    let seqs: Vec<u64> = streams[0].iter().map(|(s, _)| *s).collect();
    assert_eq!(seqs, (0..200).collect::<Vec<_>>());
}

#[test]
fn senders_deliver_their_own_messages_in_order() {
    let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
    let a = group.join();
    drain_views(&a);
    a.multicast_total(1).unwrap();
    a.multicast_total(2).unwrap();
    let got = collect_total(&a, 2);
    assert_eq!(got.iter().map(|(_, m)| *m).collect::<Vec<_>>(), vec![1, 2]);
}

#[test]
fn fifo_preserves_per_sender_order() {
    let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
    let a = group.join();
    let b = group.join();
    drain_views(&a);
    drain_views(&b);
    for i in 0..20 {
        a.multicast_fifo(i).unwrap();
    }
    let mut got = Vec::new();
    while got.len() < 20 {
        if let Delivery::Fifo { sender, msg } = b.recv_timeout(Duration::from_secs(5)).unwrap() {
            assert_eq!(sender, a.id());
            got.push(msg);
        }
    }
    assert_eq!(got, (0..20).collect::<Vec<_>>());
}

#[test]
fn view_changes_on_join_and_crash() {
    let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
    let a = group.join();
    match a.recv().unwrap() {
        Delivery::ViewChange(v) => assert_eq!(v.members, vec![a.id()]),
        other => panic!("{other:?}"),
    }
    let b = group.join();
    match a.recv().unwrap() {
        Delivery::ViewChange(v) => {
            assert_eq!(v.members.len(), 2);
            assert!(v.contains(b.id()));
        }
        other => panic!("{other:?}"),
    }
    group.crash(b.id());
    match a.recv().unwrap() {
        Delivery::ViewChange(v) => assert_eq!(v.members, vec![a.id()]),
        other => panic!("{other:?}"),
    }
    assert_eq!(group.view().members, vec![a.id()]);
}

#[test]
fn crashed_member_cannot_multicast() {
    let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
    let a = group.join();
    let b = group.join();
    group.crash(b.id());
    assert_eq!(b.multicast_total(1), Err(GcsError::MemberCrashed));
    assert_eq!(b.multicast_fifo(1), Err(GcsError::MemberCrashed));
    drop(a);
}

#[test]
fn uniform_delivery_messages_precede_crash_view() {
    // The §5.4 guarantee: survivors receive everything the crashed member
    // multicast before its crash, and only then the view change.
    let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
    let a = group.join();
    let b = group.join();
    drain_views(&a);
    drain_views(&b);
    b.multicast_total(1).unwrap();
    b.multicast_total(2).unwrap();
    group.crash(b.id());
    let mut msgs = Vec::new();
    let mut saw_view = false;
    while msgs.len() < 2 || !saw_view {
        match a.recv_timeout(Duration::from_secs(5)).unwrap() {
            Delivery::TotalOrder { msg, .. } => {
                assert!(!saw_view, "message delivered after crash view");
                msgs.push(msg);
            }
            Delivery::TotalBatch { entries, .. } => {
                assert!(!saw_view, "message delivered after crash view");
                msgs.extend(entries.into_iter().map(|e| e.msg));
            }
            Delivery::ViewChange(v) => {
                assert!(!v.contains(b.id()));
                saw_view = true;
            }
            other @ Delivery::Fifo { .. } => panic!("{other:?}"),
        }
    }
    assert_eq!(msgs, vec![1, 2]);
    assert!(saw_view);
}

#[test]
fn lagging_receiver_coalesces_batches_without_changing_the_stream() {
    // Batching on (the default): a receiver that lets deliveries queue up
    // gets them coalesced into `TotalBatch` frames whose entries flatten to
    // exactly the stream an unbatched member would observe.
    let group: SimGroup<u64> = SimGroup::new(GroupConfig::instant());
    let a = group.join();
    drain_views(&a);
    for i in 0..40 {
        a.multicast_total(i).unwrap();
    }
    let mut flat = Vec::new();
    let mut batches = 0usize;
    while flat.len() < 40 {
        match a.recv_timeout(Duration::from_secs(5)).unwrap() {
            Delivery::TotalOrder { seq, msg, .. } => flat.push((seq, msg)),
            Delivery::TotalBatch { entries, .. } => {
                batches += 1;
                assert!(entries.len() > 1, "a 1-entry batch must collapse to TotalOrder");
                assert!(
                    entries.windows(2).all(|w| w[0].seq < w[1].seq),
                    "batch entries must be seq-ascending"
                );
                flat.extend(entries.into_iter().map(|e| (e.seq, e.msg)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(batches >= 1, "a 40-deep backlog must coalesce at least once");
    let want: Vec<(u64, u64)> = (0..40).map(|i| (i, i)).collect();
    assert_eq!(flat, want);

    // Batching off: the same traffic arrives strictly as single deliveries.
    let group: SimGroup<u64> = SimGroup::new(GroupConfig::instant().unbatched());
    let b = group.join();
    drain_views(&b);
    for i in 0..40 {
        b.multicast_total(i).unwrap();
    }
    let mut seqs = Vec::new();
    while seqs.len() < 40 {
        match b.recv_timeout(Duration::from_secs(5)).unwrap() {
            Delivery::TotalOrder { seq, .. } => seqs.push(seq),
            other => panic!("unbatched group must never batch: {other:?}"),
        }
    }
    assert_eq!(seqs, (0..40).collect::<Vec<_>>());
}

#[test]
fn no_deliveries_to_crashed_member_after_crash() {
    let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
    let a = group.join();
    let b = group.join();
    drain_views(&a);
    drain_views(&b);
    group.crash(b.id());
    a.multicast_total(42).unwrap();
    // b gets nothing new (only what predates the crash — here nothing).
    assert!(b.try_recv().is_none());
    // a still receives its own message.
    let got = collect_total(&a, 1);
    assert_eq!(got[0].1, 42);
}

#[test]
fn simulated_latency_is_applied() {
    let mut cfg = GroupConfig::instant();
    cfg.scale = TimeScale::REAL_TIME;
    cfg.total_order_delay_ms = 20.0;
    let group: SimGroup<u32> = SimGroup::new(cfg);
    let a = group.join();
    drain_views(&a);
    let start = Instant::now();
    a.multicast_total(1).unwrap();
    let _ = collect_total(&a, 1);
    let elapsed = start.elapsed();
    assert!(elapsed >= Duration::from_millis(20), "latency not applied: {elapsed:?}");
    assert!(elapsed < Duration::from_millis(500), "latency way too large: {elapsed:?}");
}

#[test]
fn latency_scales_with_time_scale() {
    let mut cfg = GroupConfig::lan(TimeScale::compressed(100.0));
    cfg.total_order_delay_ms = 100.0; // → 1 ms wall at 100x
    let group: SimGroup<u32> = SimGroup::new(cfg);
    let a = group.join();
    drain_views(&a);
    let start = Instant::now();
    a.multicast_total(1).unwrap();
    let _ = collect_total(&a, 1);
    assert!(start.elapsed() < Duration::from_millis(100));
}

#[test]
fn mixed_total_and_fifo_streams_are_monotonic() {
    // The per-member horizon must prevent a later (low-latency) FIFO message
    // from arriving before an earlier (high-latency) total-order message.
    let mut cfg = GroupConfig::instant();
    cfg.total_order_delay_ms = 30.0;
    cfg.fifo_delay_ms = 0.0;
    cfg.scale = TimeScale::REAL_TIME;
    let group: SimGroup<&'static str> = SimGroup::new(cfg);
    let a = group.join();
    let b = group.join();
    drain_views(&a);
    drain_views(&b);
    a.multicast_total("slow").unwrap();
    a.multicast_fifo("fast").unwrap();
    let first = b.recv_timeout(Duration::from_secs(5)).unwrap();
    match first {
        Delivery::TotalOrder { msg, .. } => assert_eq!(msg, "slow"),
        other => panic!("stream reordered: {other:?}"),
    }
}

#[test]
fn crash_is_idempotent_and_unknown_ids_ignored() {
    let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
    let a = group.join();
    let b = group.join();
    group.crash(b.id());
    group.crash(b.id());
    group.crash(MemberId::new(999));
    drain_views(&a);
    assert_eq!(group.view().members, vec![a.id()]);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// One scripted step of a chaos run.
    #[derive(Debug, Clone)]
    enum Step {
        Send { member: usize, msg: u32 },
        Crash { member: usize },
    }

    fn step() -> impl Strategy<Value = Step> {
        prop_oneof![
            8 => (0usize..4, any::<u32>()).prop_map(|(member, msg)| Step::Send { member, msg }),
            1 => (0usize..4).prop_map(|member| Step::Crash { member }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

        /// Under random sends and crashes, all members deliver prefixes of
        /// one common total order, and every message a survivor delivers
        /// from a crashed sender precedes the view change that removes it.
        #[test]
        fn total_order_survives_crashes(steps in prop::collection::vec(step(), 1..40)) {
            let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
            let members: Vec<SimMember<u32>> = (0..4).map(|_| group.join()).collect();
            let mut alive = [true; 4];
            let mut expected: Vec<u32> = Vec::new();
            for s in &steps {
                match s {
                    Step::Send { member, msg } => {
                        let r = members[*member].multicast_total(*msg);
                        if alive[*member] {
                            prop_assert!(r.is_ok());
                            expected.push(*msg);
                        } else {
                            prop_assert_eq!(r, Err(GcsError::MemberCrashed));
                        }
                    }
                    Step::Crash { member } => {
                        group.crash(members[*member].id());
                        alive[*member] = false;
                    }
                }
            }
            // Keep at least one member alive to observe the full stream.
            let Some(observer) = alive.iter().position(|&a| a) else { return Ok(()) };
            // Drain every alive member's stream.
            let mut streams: Vec<Vec<u32>> = vec![Vec::new(); 4];
            for (i, m) in members.iter().enumerate() {
                if !alive[i] {
                    continue;
                }
                while let Some(d) = m.try_recv() {
                    match d {
                        Delivery::TotalOrder { msg, .. } => streams[i].push(msg),
                        Delivery::TotalBatch { entries, .. } => {
                            streams[i].extend(entries.into_iter().map(|e| e.msg));
                        }
                        Delivery::Fifo { .. } | Delivery::ViewChange(_) => {}
                    }
                }
            }
            // The observer (alive the whole run) saw exactly the accepted
            // messages, in order.
            prop_assert_eq!(&streams[observer], &expected);
            // Every other alive member saw the same sequence (it joined the
            // group at the start, so full equality, not just prefix).
            for (i, s) in streams.iter().enumerate() {
                if alive[i] && i != observer {
                    prop_assert_eq!(s, &expected);
                }
            }
        }
    }
}

#[test]
fn handles_work_from_other_threads() {
    let group: SimGroup<u64> = SimGroup::new(GroupConfig::instant());
    let a = group.join();
    drain_views(&a);
    let h = a.handle();
    let t = thread::spawn(move || {
        for i in 0..10 {
            h.multicast_total(i).unwrap();
        }
    });
    t.join().unwrap();
    let got = collect_total(&a, 10);
    assert_eq!(got.len(), 10);
}

// --- fault injection (chaos harness substrate) ---------------------------

mod faults {
    use super::*;
    use crate::fault::{FaultConfig, FaultRecord};
    use sirep_common::FaultKind;

    /// Satellite regression: a member whose endpoint vanished without a
    /// `crash()` (hung process, dropped receiver) used to be skipped
    /// silently by `broadcast` — the message was lost for it and the view
    /// never changed. Now the failed send marks it suspect and drives an
    /// explicit view change.
    #[test]
    fn suspected_member_without_crash_gets_view_change() {
        let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
        let a = group.join();
        let b = group.join();
        drain_views(&a);
        drain_views(&b);
        let b_id = b.id();
        drop(b); // endpoint gone, but nobody called crash()
        a.multicast_total(7).unwrap();
        let mut got_msg = false;
        let mut view = None;
        for _ in 0..4 {
            match a.recv_timeout(Duration::from_secs(5)) {
                Ok(Delivery::TotalOrder { msg, .. }) => {
                    assert_eq!(msg, 7);
                    got_msg = true;
                }
                Ok(Delivery::ViewChange(v)) => {
                    view = Some(v);
                    break;
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(got_msg, "the survivor must still get the payload");
        let view = view.expect("eviction must produce a view change");
        assert!(view.contains(a.id()));
        assert!(!view.contains(b_id), "the suspect must leave the view");
        assert!(!group.view().contains(b_id));
    }

    #[test]
    fn duplicate_deliveries_are_deduped_at_the_member() {
        let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
        let a = group.join();
        let b = group.join();
        drain_views(&a);
        drain_views(&b);
        group.install_faults(FaultConfig { dup_prob: 1.0, ..FaultConfig::quiet(7) });
        for i in 0..5 {
            a.multicast_total(i).unwrap();
        }
        // Every copy was duplicated, yet each member sees each sequence
        // number exactly once.
        for m in [&a, &b] {
            let got = collect_total(m, 5);
            assert_eq!(got.iter().map(|(s, _)| *s).collect::<Vec<_>>(), (0..5).collect::<Vec<_>>());
            assert!(m.try_recv().is_none(), "duplicate copies must be suppressed");
        }
        let dups = group
            .fault_log()
            .iter()
            .filter(|r| matches!(r, FaultRecord::Fault { kind: FaultKind::Duplicate, .. }))
            .count();
        assert_eq!(dups, 10, "2 members x 5 messages, all duplicated");
        // The gauge accounting survived the suppressed copies.
        assert_eq!(a.in_flight().current, 0);
    }

    #[test]
    fn dropped_messages_are_retransmitted_not_lost() {
        let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
        let a = group.join();
        let b = group.join();
        drain_views(&a);
        drain_views(&b);
        // Drop *every* first attempt: uniform reliable delivery must still
        // hold — a drop only costs the simulated retransmission latency.
        group.install_faults(FaultConfig {
            drop_prob: 1.0,
            retransmit_delay_ms: 0.5,
            ..FaultConfig::quiet(11)
        });
        for i in 0..20 {
            a.multicast_total(i).unwrap();
        }
        let got = collect_total(&b, 20);
        assert_eq!(got.iter().map(|(_, m)| *m).collect::<Vec<_>>(), (0..20).collect::<Vec<_>>());
        let drops = group
            .fault_log()
            .iter()
            .filter(|r| matches!(r, FaultRecord::Fault { kind: FaultKind::Drop, .. }))
            .count();
        assert_eq!(drops, 40, "2 members x 20 messages, all first attempts dropped");
    }

    #[test]
    fn partition_holds_and_heals_in_order() {
        let group: SimGroup<u32> = SimGroup::new(GroupConfig::instant());
        let a = group.join();
        let b = group.join();
        let c = group.join();
        for m in [&a, &b, &c] {
            drain_views(m);
        }
        group.partition(&[c.id()]);
        for i in 0..10 {
            a.multicast_total(i).unwrap();
        }
        let b_got = collect_total(&b, 10);
        assert!(c.try_recv().is_none(), "deliveries to the isolated member are held");
        // The isolated member's own multicast is buffered, not sequenced.
        assert_eq!(c.multicast_total(99).unwrap(), HELD_SEND_SEQ);
        assert!(b.try_recv().is_none(), "the held send must not leak before heal");
        group.heal();
        // The healed member catches up in exactly the order the majority
        // saw, and only then does its buffered send get sequenced.
        let c_got = collect_total(&c, 11);
        assert_eq!(&c_got[..10], &b_got[..]);
        assert_eq!(c_got[10].1, 99);
        assert_eq!(collect_total(&b, 1)[0].1, 99);
        let a_got = collect_total(&a, 11);
        assert_eq!(a_got[10].1, 99);
        assert_eq!(a.in_flight().current, 0);
    }
}
