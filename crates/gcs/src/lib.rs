//! # sirep-gcs
//!
//! A group communication system (GCS) providing the primitives SI-Rep's
//! decentralized middleware needs (paper §5.2):
//!
//! - **uniform reliable, total order multicast** — all members deliver all
//!   messages in the same order; a message delivered by any member (even one
//!   that crashes immediately after) is delivered by all survivors, and
//!   always *before* they learn about the sender's crash;
//! - **FIFO multicast** — used by the reimplemented table-level-locking
//!   baseline of [Jiménez-Peris et al., ICDCS'02] for writeset shipping;
//! - **membership views** — crashes are detected and surviving members
//!   receive consistent view-change notifications.
//!
//! The paper uses Spread; this crate is an in-process substitute whose
//! latency (≤3 ms per uniform multicast on a LAN) is a configuration knob
//! scaled through [`sirep_common::TimeScale`]. See `DESIGN.md` §2 for the
//! substitution argument.
//!
//! ```
//! use sirep_gcs::{Group, GroupConfig, Delivery};
//!
//! let group: Group<String> = Group::new(GroupConfig::instant());
//! let a = group.join();
//! let b = group.join();
//! // Both joins delivered views; drain them.
//! while let Some(Delivery::ViewChange(_)) = a.try_recv() {}
//! while let Some(Delivery::ViewChange(_)) = b.try_recv() {}
//!
//! a.multicast_total("hello".to_owned()).unwrap();
//! match b.recv().unwrap() {
//!     Delivery::TotalOrder { msg, .. } => assert_eq!(msg, "hello"),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! // The sender delivers its own message too.
//! assert!(matches!(a.recv().unwrap(), Delivery::TotalOrder { .. }));
//! ```

pub mod fault;
pub mod group;

pub use fault::{FaultConfig, FaultDecision, FaultRecord, NETWORK_REPLICA};
pub use group::{Delivery, GcsError, GcsHandle, Group, GroupConfig, Member, View, HELD_SEND_SEQ};

#[cfg(test)]
mod group_tests;
