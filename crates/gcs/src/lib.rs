//! # sirep-gcs
//!
//! A group communication system (GCS) providing the primitives SI-Rep's
//! decentralized middleware needs (paper §5.2):
//!
//! - **uniform reliable, total order multicast** — all members deliver all
//!   messages in the same order; a message delivered by any member (even one
//!   that crashes immediately after) is delivered by all survivors, and
//!   always *before* they learn about the sender's crash;
//! - **FIFO multicast** — used by the reimplemented table-level-locking
//!   baseline of [Jiménez-Peris et al., ICDCS'02] for writeset shipping;
//! - **membership views** — crashes are detected and surviving members
//!   receive consistent view-change notifications.
//!
//! The protocol layer is written against the transport traits in
//! [`traits`] ([`Group`] / [`Member`] / [`Cast`]); two backends implement
//! them:
//!
//! - [`SimGroup`] — the in-process simulated network the paper's
//!   evaluation is reproduced on: deterministic, seeded fault injection,
//!   model-time latency (the paper's Spread measurements — ≤3 ms per
//!   uniform multicast on a LAN — are a configuration knob scaled through
//!   [`sirep_common::TimeScale`]; see `DESIGN.md` §2 for the substitution
//!   argument).
//! - [`TcpGroup`] — a real network tier: one [`Sequencer`] service plus
//!   length-prefixed frames over `std::net` sockets, same delivery
//!   contract (DESIGN.md §14).
//!
//! ```
//! use sirep_gcs::{SimGroup, GroupConfig, Delivery};
//!
//! let group: SimGroup<String> = SimGroup::new(GroupConfig::instant());
//! let a = group.join();
//! let b = group.join();
//! // Both joins delivered views; drain them.
//! while let Some(Delivery::ViewChange(_)) = a.try_recv() {}
//! while let Some(Delivery::ViewChange(_)) = b.try_recv() {}
//!
//! a.multicast_total("hello".to_owned()).unwrap();
//! match b.recv().unwrap() {
//!     Delivery::TotalOrder { msg, .. } => assert_eq!(msg, "hello"),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! // The sender delivers its own message too.
//! assert!(matches!(a.recv().unwrap(), Delivery::TotalOrder { .. }));
//! ```

pub mod fault;
pub mod group;
pub mod tcp;
pub mod traits;

pub use fault::{FaultConfig, FaultDecision, FaultRecord, NETWORK_REPLICA};
pub use group::{GroupConfig, SimGroup, SimHandle, SimMember};
pub use tcp::{probe_seq_time, query_seq_stats, SeqStats, Sequencer, TcpCast, TcpGroup, TcpMember};
pub use traits::{BatchEntry, Cast, Delivery, GcsError, Group, Member, View, HELD_SEND_SEQ};

#[cfg(test)]
mod conformance_tests;
#[cfg(test)]
mod group_tests;
