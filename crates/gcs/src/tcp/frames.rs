//! Frames on the wire between a [`TcpGroup`](crate::TcpGroup) member and
//! the sequencer service.
//!
//! The sequencer is payload-agnostic: application messages cross it as
//! opaque byte strings ([`Bytes`]), already `Wire`-encoded by the sending
//! member, so one sequencer binary serves any `M: Wire`. Member ids and
//! replica ids travel as raw `u64`s.

use sirep_common::wire::{Wire, WireError, WireReader};

/// An opaque, bulk-encoded byte payload. `Vec<u8>` through the generic
/// `Vec<T: Wire>` impl would encode element-wise; this newtype copies the
/// buffer in one shot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes(pub Vec<u8>);

impl Wire for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.0.len() as u32).encode(out);
        out.extend_from_slice(&self.0);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len(1)?;
        Ok(Bytes(r.take(n)?.to_vec()))
    }
}

/// Member → sequencer.
///
/// A connection becomes a *member* connection by sending [`UpFrame::Join`]
/// first; it then carries only `Total`/`Fifo`/`Leave`. A connection that
/// starts with `Evict` or `Query` is an *admin* connection (request/reply,
/// no membership).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpFrame {
    /// Join the group as (a fresh incarnation of) logical replica
    /// `replica`.
    Join { replica: u64 },
    /// Uniform reliable total-order multicast: sequence and fan out.
    Total { payload: Bytes },
    /// FIFO multicast: fan out without consuming a sequence number.
    Fifo { payload: Bytes },
    /// Graceful leave; survivors observe the same view change a crash
    /// would produce.
    Leave,
    /// Admin: declare `member` crashed (the test/ops analogue of the sim
    /// backend's `Group::crash`).
    Evict { member: u64 },
    /// Admin: report the current view.
    Query,
    /// Admin: report sequencer-side observability counters
    /// ([`DownFrame::Stats`]).
    Stats,
    /// Admin: report the sequencer's monotonic clock ([`DownFrame::Time`]) —
    /// one leg of the cross-process clock-offset handshake that aligns
    /// per-node Perfetto tracks onto the sequencer's timeline.
    TimeProbe,
}

impl Wire for UpFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            UpFrame::Join { replica } => {
                out.push(0);
                replica.encode(out);
            }
            UpFrame::Total { payload } => {
                out.push(1);
                payload.encode(out);
            }
            UpFrame::Fifo { payload } => {
                out.push(2);
                payload.encode(out);
            }
            UpFrame::Leave => out.push(3),
            UpFrame::Evict { member } => {
                out.push(4);
                member.encode(out);
            }
            UpFrame::Query => out.push(5),
            UpFrame::Stats => out.push(6),
            UpFrame::TimeProbe => out.push(7),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(UpFrame::Join { replica: u64::decode(r)? }),
            1 => Ok(UpFrame::Total { payload: Bytes::decode(r)? }),
            2 => Ok(UpFrame::Fifo { payload: Bytes::decode(r)? }),
            3 => Ok(UpFrame::Leave),
            4 => Ok(UpFrame::Evict { member: u64::decode(r)? }),
            5 => Ok(UpFrame::Query),
            6 => Ok(UpFrame::Stats),
            7 => Ok(UpFrame::TimeProbe),
            _ => Err(WireError::Corrupt("upframe tag")),
        }
    }
}

/// Sequencer → member.
///
/// `Total`/`Fifo`/`View` form the sequenced delivery stream; the sequencer
/// retains the full stream and replays it from the beginning to every
/// joiner, which is how a restarted replica recovers (deterministic replay
/// instead of state transfer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownFrame {
    /// Join handshake reply: the assigned member id and the replica's join
    /// count (= the transaction-id incarnation the member must adopt).
    Welcome { member: u64, incarnation: u64 },
    /// A sequenced total-order multicast.
    Total { seq: u64, sender: u64, payload: Bytes },
    /// A FIFO multicast.
    Fifo { sender: u64, payload: Bytes },
    /// A membership view: `(member, replica)` pairs, sorted by member id.
    View { id: u64, members: Vec<(u64, u64)> },
    /// Admin reply to [`UpFrame::Evict`], sent once the member's socket is
    /// shut down and the view change is sequenced.
    Evicted,
    /// Admin reply to [`UpFrame::Stats`]: the sequencer's observability
    /// counters — total-order log length, next sequence number, view id,
    /// and per-member `(member, send_queue_depth)` pairs (frames queued for
    /// that member's writer thread, i.e. the fan-out backlog broken down by
    /// destination), sorted by member id.
    Stats { log_len: u64, next_seq: u64, view_id: u64, members: Vec<(u64, u64)> },
    /// Admin reply to [`UpFrame::TimeProbe`]: nanoseconds on the
    /// sequencer's monotonic clock since it started serving.
    Time { now_ns: u64 },
    /// A coalesced run of sequenced total-order multicasts: the sequencer's
    /// writer thread batches messages that queued up behind one socket
    /// write. Per-entry `(seq, sender, payload)` triples are preserved in
    /// sequence order, so delivery is bit-identical to receiving the same
    /// run as individual [`DownFrame::Total`] frames.
    Batch { entries: Vec<(u64, u64, Bytes)> },
}

impl Wire for DownFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DownFrame::Welcome { member, incarnation } => {
                out.push(0);
                member.encode(out);
                incarnation.encode(out);
            }
            DownFrame::Total { seq, sender, payload } => {
                out.push(1);
                seq.encode(out);
                sender.encode(out);
                payload.encode(out);
            }
            DownFrame::Fifo { sender, payload } => {
                out.push(2);
                sender.encode(out);
                payload.encode(out);
            }
            DownFrame::View { id, members } => {
                out.push(3);
                id.encode(out);
                members.encode(out);
            }
            DownFrame::Evicted => out.push(4),
            DownFrame::Stats { log_len, next_seq, view_id, members } => {
                out.push(5);
                log_len.encode(out);
                next_seq.encode(out);
                view_id.encode(out);
                members.encode(out);
            }
            DownFrame::Time { now_ns } => {
                out.push(6);
                now_ns.encode(out);
            }
            DownFrame::Batch { entries } => {
                out.push(7);
                entries.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match u8::decode(r)? {
            0 => Ok(DownFrame::Welcome { member: u64::decode(r)?, incarnation: u64::decode(r)? }),
            1 => Ok(DownFrame::Total {
                seq: u64::decode(r)?,
                sender: u64::decode(r)?,
                payload: Bytes::decode(r)?,
            }),
            2 => Ok(DownFrame::Fifo { sender: u64::decode(r)?, payload: Bytes::decode(r)? }),
            3 => Ok(DownFrame::View { id: u64::decode(r)?, members: Vec::decode(r)? }),
            4 => Ok(DownFrame::Evicted),
            5 => Ok(DownFrame::Stats {
                log_len: u64::decode(r)?,
                next_seq: u64::decode(r)?,
                view_id: u64::decode(r)?,
                members: Vec::decode(r)?,
            }),
            6 => Ok(DownFrame::Time { now_ns: u64::decode(r)? }),
            7 => Ok(DownFrame::Batch { entries: Vec::decode(r)? }),
            _ => Err(WireError::Corrupt("downframe tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire();
        let back = T::from_wire(&bytes).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(back.to_wire(), bytes);
    }

    #[test]
    fn all_up_frame_variants_round_trip() {
        round_trip(&UpFrame::Join { replica: 2 });
        round_trip(&UpFrame::Total { payload: Bytes(vec![1, 2, 3]) });
        round_trip(&UpFrame::Fifo { payload: Bytes(Vec::new()) });
        round_trip(&UpFrame::Leave);
        round_trip(&UpFrame::Evict { member: (3 << 32) | 1 });
        round_trip(&UpFrame::Query);
        round_trip(&UpFrame::Stats);
        round_trip(&UpFrame::TimeProbe);
    }

    #[test]
    fn all_down_frame_variants_round_trip() {
        round_trip(&DownFrame::Welcome { member: 5, incarnation: 1 });
        round_trip(&DownFrame::Total { seq: 9, sender: 2, payload: Bytes(vec![0xff; 64]) });
        round_trip(&DownFrame::Fifo { sender: 0, payload: Bytes(vec![7]) });
        round_trip(&DownFrame::View { id: 4, members: vec![(0, 0), (1, 1), (1 << 32, 0)] });
        round_trip(&DownFrame::Evicted);
        round_trip(&DownFrame::Stats {
            log_len: 100,
            next_seq: 42,
            view_id: 7,
            members: vec![(0, 3), (1 << 32, 0)],
        });
        round_trip(&DownFrame::Time { now_ns: 1_234_567_890 });
        round_trip(&DownFrame::Batch { entries: Vec::new() });
        round_trip(&DownFrame::Batch {
            entries: vec![
                (3, 0, Bytes(vec![1, 2])),
                (4, 2, Bytes(Vec::new())),
                (5, 1, Bytes(vec![0xaa; 48])),
            ],
        });
    }

    #[test]
    fn corrupt_tags_rejected() {
        assert_eq!(UpFrame::from_wire(&[9]), Err(WireError::Corrupt("upframe tag")));
        assert_eq!(DownFrame::from_wire(&[9]), Err(WireError::Corrupt("downframe tag")));
    }

    #[test]
    fn stats_frame_truncations_rejected() {
        let frame = DownFrame::Stats { log_len: 1, next_seq: 2, view_id: 3, members: vec![(4, 5)] };
        let bytes = frame.to_wire();
        for cut in 0..bytes.len() {
            assert!(DownFrame::from_wire(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    proptest! {
        #[test]
        fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = UpFrame::from_wire(&bytes);
            let _ = DownFrame::from_wire(&bytes);
        }

        #[test]
        fn prop_truncations_rejected(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
            let frame = DownFrame::Total { seq: 1, sender: 2, payload: Bytes(payload) };
            let bytes = frame.to_wire();
            for cut in 0..bytes.len() {
                prop_assert!(DownFrame::from_wire(&bytes[..cut]).is_err());
            }
        }

        #[test]
        fn prop_batch_truncations_rejected(payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..16), 1..5)) {
            let entries = payloads
                .into_iter()
                .enumerate()
                .map(|(i, p)| (i as u64 + 1, (i % 3) as u64, Bytes(p)))
                .collect::<Vec<_>>();
            let frame = DownFrame::Batch { entries };
            let bytes = frame.to_wire();
            for cut in 0..bytes.len() {
                prop_assert!(DownFrame::from_wire(&bytes[..cut]).is_err());
            }
        }
    }
}
