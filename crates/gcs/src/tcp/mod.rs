//! The TCP transport backend: real processes, real sockets, one sequencer.
//!
//! [`TcpGroup`] implements the [`crate::traits`] contract over `std::net`
//! threads and length-prefixed frames (see [`frames`]). All sequencing
//! happens at the [`Sequencer`] service ([`seq`]); members hold one TCP
//! connection each, with a reader thread turning [`DownFrame`]s into the
//! same [`Delivery`] stream the sim backend produces.
//!
//! Differences from the sim tier, by design (DESIGN.md §14):
//!
//! - `multicast_total` is **fire-and-forget**: it returns
//!   [`HELD_SEND_SEQ`], and the authoritative sequence number arrives with
//!   the delivery. Per-connection FIFO order still guarantees a member's
//!   own multicasts are sequenced in submission order, which is what the
//!   certification watermark argument needs.
//! - There is no deterministic fault injection; the chaos tier stays on
//!   [`crate::SimGroup`].
//! - Latency is real, not simulated.

pub mod frames;
pub mod seq;

use crate::traits::{Cast, Delivery, GcsError, Group, Member, View, HELD_SEND_SEQ};
use crossbeam::channel::{self, Receiver};
use frames::{Bytes, DownFrame, UpFrame};
use parking_lot::Mutex;
pub use seq::Sequencer;
use sirep_common::wire::{read_frame, write_frame, Wire};
use sirep_common::{Gauge, GaugeReading, MemberId};
use std::collections::BTreeMap;
use std::io;
use std::marker::PhantomData;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A group reached through a sequencer service. `join()` assigns logical
/// replica ids `first_replica, first_replica + 1, ...` to successive
/// members; a multinode deployment runs one `TcpGroup` per process with
/// `first_replica` = that process's replica id.
pub struct TcpGroup<M> {
    addr: String,
    next_replica: AtomicU64,
    /// Group-wide in-flight accounting needs the sequencer's cooperation;
    /// this backend reports a zero gauge here and real per-endpoint depth
    /// via `Member::in_flight`.
    idle_gauge: Gauge,
    _msg: PhantomData<fn() -> M>,
}

impl<M: Wire + Clone + Send + 'static> TcpGroup<M> {
    /// A group handle speaking to the sequencer at `addr`
    /// (e.g. `"127.0.0.1:7400"`). No connection is made until `join`.
    pub fn new(addr: impl Into<String>, first_replica: u64) -> TcpGroup<M> {
        TcpGroup {
            addr: addr.into(),
            next_replica: AtomicU64::new(first_replica),
            idle_gauge: Gauge::new(),
            _msg: PhantomData,
        }
    }

    /// Join as a specific logical replica. The sequencer assigns the member
    /// id and the replica's incarnation (join count).
    pub fn join_as(&self, replica: u64) -> Result<TcpMember<M>, GcsError> {
        TcpMember::connect(&self.addr, replica).map_err(io_gcs)
    }

    fn admin(&self, req: &UpFrame) -> io::Result<DownFrame> {
        let mut stream = TcpStream::connect(&self.addr)?;
        write_frame(&mut stream, req)?;
        read_frame(&mut stream)
    }
}

fn io_gcs(e: io::Error) -> GcsError {
    GcsError::Io(e.to_string())
}

impl<M: Wire + Clone + Send + 'static> Group<M> for TcpGroup<M> {
    fn join(&self) -> Result<Box<dyn Member<M>>, GcsError> {
        let replica = self.next_replica.fetch_add(1, Ordering::SeqCst);
        Ok(Box::new(self.join_as(replica)?))
    }

    fn crash(&self, id: MemberId) {
        // Best-effort admin request; the reply is read so the eviction's
        // view change is sequenced before this returns.
        let _ = self.admin(&UpFrame::Evict { member: id.raw() });
    }

    fn view(&self) -> View {
        match self.admin(&UpFrame::Query) {
            Ok(DownFrame::View { id, members }) => {
                View { id, members: members.into_iter().map(|(m, _)| MemberId::new(m)).collect() }
            }
            _ => View { id: 0, members: Vec::new() },
        }
    }

    fn in_flight(&self) -> GaugeReading {
        self.idle_gauge.read()
    }
}

/// State shared between a TCP member's reader thread, its endpoint, and
/// its multicast handles.
struct TcpShared {
    id: MemberId,
    /// Write half of the member's connection; the lock keeps concurrent
    /// multicasts' frames from interleaving mid-frame.
    write: Mutex<TcpStream>,
    /// Socket handle used only for shutdown (leave / crash_self).
    sock: TcpStream,
    /// Set once this endpoint is known dead (evicted, socket error, or
    /// crash_self); multicasts fail fast afterwards.
    crashed: AtomicBool,
    /// Frames decoded by the reader but not yet received by the endpoint.
    in_flight: Gauge,
    /// Latest view delivered.
    view: Mutex<View>,
    /// Cumulative member → replica map learned from view frames (members
    /// from *earlier* views stay resolvable, which delivery translation
    /// needs when a writeset and the view that removed its sender race).
    replicas: Mutex<BTreeMap<u64, u64>>,
}

impl TcpShared {
    fn mark_crashed(&self) {
        self.crashed.store(true, Ordering::SeqCst);
        let _ = self.sock.shutdown(Shutdown::Both);
    }
}

/// A member endpoint over TCP. Created via [`TcpGroup::join_as`] /
/// `Group::join`.
pub struct TcpMember<M> {
    incarnation: u64,
    rx: Receiver<Delivery<M>>,
    shared: Arc<TcpShared>,
}

impl<M: Wire + Clone + Send + 'static> TcpMember<M> {
    fn connect(addr: &str, replica: u64) -> io::Result<TcpMember<M>> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &UpFrame::Join { replica })?;
        let DownFrame::Welcome { member, incarnation } = read_frame(&mut stream)? else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sequencer did not start with Welcome",
            ));
        };
        let shared = Arc::new(TcpShared {
            id: MemberId::new(member),
            write: Mutex::new(stream.try_clone()?),
            sock: stream.try_clone()?,
            crashed: AtomicBool::new(false),
            in_flight: Gauge::new(),
            view: Mutex::new(View { id: 0, members: Vec::new() }),
            replicas: Mutex::new(BTreeMap::new()),
        });
        let (tx, rx) = channel::unbounded();
        let reader_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("sirep-tcp-member-{member}"))
            .spawn(move || reader_loop(stream, &reader_shared, &tx))?;
        Ok(TcpMember { incarnation, rx, shared })
    }

    /// The member id the sequencer assigned.
    pub fn id(&self) -> MemberId {
        self.shared.id
    }

    /// This replica's join count at the sequencer.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }
}

/// Decode the sequencer's frame stream into deliveries. Runs until the
/// socket closes (eviction, sequencer shutdown, or local leave).
fn reader_loop<M: Wire>(
    mut stream: TcpStream,
    shared: &TcpShared,
    tx: &channel::Sender<Delivery<M>>,
) {
    // Duplicate suppression: replay-safe because the sequencer's stream is
    // strictly increasing per connection.
    let mut last_seq: Option<u64> = None;
    while let Ok(frame) = read_frame::<_, DownFrame>(&mut stream) {
        let delivery = match frame {
            DownFrame::Total { seq, sender, payload } => {
                if last_seq.is_some_and(|last| seq <= last) {
                    continue;
                }
                last_seq = Some(seq);
                let Ok(msg) = M::from_wire(&payload.0) else { break };
                Delivery::TotalOrder {
                    seq,
                    sender: MemberId::new(sender),
                    sequenced_at: Instant::now(),
                    msg,
                }
            }
            DownFrame::Fifo { sender, payload } => {
                let Ok(msg) = M::from_wire(&payload.0) else { break };
                Delivery::Fifo { sender: MemberId::new(sender), msg }
            }
            DownFrame::View { id, members } => {
                let view =
                    View { id, members: members.iter().map(|&(m, _)| MemberId::new(m)).collect() };
                {
                    let mut replicas = shared.replicas.lock();
                    for &(m, r) in &members {
                        replicas.insert(m, r);
                    }
                }
                *shared.view.lock() = view.clone();
                Delivery::ViewChange(view)
            }
            // Welcome is consumed during the handshake; Evicted only goes
            // to admin connections. Either here means a confused peer.
            DownFrame::Welcome { .. } | DownFrame::Evicted => break,
        };
        shared.in_flight.add(1);
        if tx.send(delivery).is_err() {
            break;
        }
    }
    shared.mark_crashed();
}

impl<M: Wire + Clone + Send + 'static> Member<M> for TcpMember<M> {
    fn id(&self) -> MemberId {
        self.shared.id
    }

    fn incarnation(&self) -> u64 {
        self.incarnation
    }

    fn handle(&self) -> Box<dyn Cast<M>> {
        Box::new(TcpCast { shared: Arc::clone(&self.shared), _msg: PhantomData::<fn() -> M> })
    }

    fn recv(&self) -> Result<Delivery<M>, GcsError> {
        match self.rx.recv() {
            Ok(d) => {
                self.shared.in_flight.sub(1);
                Ok(d)
            }
            Err(_) => Err(GcsError::Disconnected),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Delivery<M>, GcsError> {
        match self.rx.recv_timeout(timeout) {
            Ok(d) => {
                self.shared.in_flight.sub(1);
                Ok(d)
            }
            Err(channel::RecvTimeoutError::Timeout) => Err(GcsError::Timeout),
            Err(channel::RecvTimeoutError::Disconnected) => Err(GcsError::Disconnected),
        }
    }

    fn try_recv(&self) -> Option<Delivery<M>> {
        let d = self.rx.try_recv().ok()?;
        self.shared.in_flight.sub(1);
        Some(d)
    }

    fn view(&self) -> View {
        self.shared.view.lock().clone()
    }

    fn in_flight(&self) -> GaugeReading {
        self.shared.in_flight.read()
    }

    fn replica_of(&self, m: MemberId) -> Option<u64> {
        self.shared.replicas.lock().get(&m.raw()).copied()
    }

    fn leave(&self) {
        self.shared.mark_crashed();
    }
}

/// Multicast handle over the member's connection.
pub struct TcpCast<M> {
    shared: Arc<TcpShared>,
    _msg: PhantomData<fn() -> M>,
}

impl<M: Wire + Clone + Send + 'static> TcpCast<M> {
    fn send(&self, frame: &UpFrame) -> Result<(), GcsError> {
        if self.shared.crashed.load(Ordering::SeqCst) {
            return Err(GcsError::MemberCrashed);
        }
        let mut stream = self.shared.write.lock();
        if let Err(e) = write_frame(&mut *stream, frame) {
            drop(stream);
            self.shared.mark_crashed();
            return Err(io_gcs(e));
        }
        Ok(())
    }
}

impl<M: Wire + Clone + Send + 'static> Cast<M> for TcpCast<M> {
    fn id(&self) -> MemberId {
        self.shared.id
    }

    /// Fire-and-forget: the frame is on the socket (in per-connection FIFO
    /// order, which preserves this member's submission order through the
    /// sequencer) but not yet sequenced, so this returns
    /// [`HELD_SEND_SEQ`]. The real sequence number arrives with the
    /// delivery. An `Err` guarantees the message will never be delivered.
    fn multicast_total(&self, msg: M) -> Result<u64, GcsError> {
        self.send(&UpFrame::Total { payload: Bytes(msg.to_wire()) })?;
        Ok(HELD_SEND_SEQ)
    }

    fn multicast_fifo(&self, msg: M) -> Result<(), GcsError> {
        self.send(&UpFrame::Fifo { payload: Bytes(msg.to_wire()) })
    }

    fn crash_self(&self) {
        // Crash-stop: just die; the sequencer's EOF detection evicts us and
        // sequences the view change, exactly like a process kill.
        self.shared.mark_crashed();
    }

    fn in_flight(&self) -> GaugeReading {
        self.shared.in_flight.read()
    }

    fn clone_cast(&self) -> Box<dyn Cast<M>> {
        Box::new(TcpCast { shared: Arc::clone(&self.shared), _msg: PhantomData::<fn() -> M> })
    }
}
