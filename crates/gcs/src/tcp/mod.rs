//! The TCP transport backend: real processes, real sockets, one sequencer.
//!
//! [`TcpGroup`] implements the [`crate::traits`] contract over `std::net`
//! threads and length-prefixed frames (see [`frames`]). All sequencing
//! happens at the [`Sequencer`] service ([`seq`]); members hold one TCP
//! connection each, with a reader thread turning [`DownFrame`]s into the
//! same [`Delivery`] stream the sim backend produces.
//!
//! Differences from the sim tier, by design (DESIGN.md §14):
//!
//! - `multicast_total` is **fire-and-forget**: it returns
//!   [`HELD_SEND_SEQ`], and the authoritative sequence number arrives with
//!   the delivery. Per-connection FIFO order still guarantees a member's
//!   own multicasts are sequenced in submission order, which is what the
//!   certification watermark argument needs.
//! - There is no deterministic fault injection; the chaos tier stays on
//!   [`crate::SimGroup`].
//! - Latency is real, not simulated.
//!
//! ## Telemetry
//!
//! Every endpoint counts its wire traffic (frames/bytes in and out, decode
//! failures) and tracks two gauges: `pending_sends` — total-order
//! multicasts submitted but not yet sequenced (the [`HELD_SEND_SEQ`]
//! window, closed when the member's own delivery comes back) — and the
//! receive-queue depth. [`TcpGroup`] keeps a weak registry of the
//! endpoints it created plus a `retired` rollup that dropped endpoints
//! fold their final counters into, so `Group::transport()` stays monotonic
//! across member churn without the registry retaining dead sockets.
//! `Group::in_flight` reports the honest sum over live endpoints rather
//! than the silent zero this backend used to return.

pub mod frames;
pub mod seq;

use crate::traits::{BatchEntry, Cast, Delivery, GcsError, Group, Member, View, HELD_SEND_SEQ};
use crossbeam::channel::{self, Receiver};
use frames::{Bytes, DownFrame, UpFrame};
use parking_lot::Mutex;
pub use seq::Sequencer;
use sirep_common::wire::{read_frame, read_frame_counted, write_frame, write_frame_counted, Wire};
use sirep_common::{Gauge, GaugeReading, MemberId, TransportSnapshot};
use std::collections::BTreeMap;
use std::io;
use std::marker::PhantomData;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Read timeout for one-shot admin scrapes ([`query_seq_stats`],
/// [`probe_seq_time`]): a hung or half-dead sequencer turns into an `Err`,
/// never a stuck report role.
const ADMIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Group-level telemetry shared by a [`TcpGroup`] and every endpoint it
/// created.
struct GroupTelemetry {
    /// Endpoints created through this group handle. Weak so a dropped
    /// member releases its socket state; reaped lazily on read.
    live: Mutex<Vec<Weak<TcpShared>>>,
    /// Final counters folded in by dropped endpoints (gauge currents
    /// zeroed, high-waters kept) — keeps the rollup monotonic across
    /// member churn.
    retired: Mutex<TransportSnapshot>,
    /// Joins that returned incarnation > 0: restart recoveries.
    reconnects: AtomicU64,
    /// Endpoints that died (eviction, socket error, leave, crash_self).
    evictions: AtomicU64,
}

impl GroupTelemetry {
    fn new() -> GroupTelemetry {
        GroupTelemetry {
            live: Mutex::new(Vec::new()),
            retired: Mutex::new(TransportSnapshot::default()),
            reconnects: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Upgradeable live endpoints, dropping the dead weak refs as we go.
    fn live_endpoints(&self) -> Vec<Arc<TcpShared>> {
        let mut live = self.live.lock();
        live.retain(|w| w.strong_count() > 0);
        live.iter().filter_map(Weak::upgrade).collect()
    }

    /// The group-wide rollup: retired + every live endpoint + the
    /// group-level churn counters.
    fn rollup(&self) -> TransportSnapshot {
        let mut snap = *self.retired.lock();
        for shared in self.live_endpoints() {
            snap.absorb(&shared.transport_snapshot());
        }
        snap.reconnects += self.reconnects.load(Ordering::Relaxed);
        snap.evictions += self.evictions.load(Ordering::Relaxed);
        snap
    }
}

/// A group reached through a sequencer service. `join()` assigns logical
/// replica ids `first_replica, first_replica + 1, ...` to successive
/// members; a multinode deployment runs one `TcpGroup` per process with
/// `first_replica` = that process's replica id.
pub struct TcpGroup<M> {
    addr: String,
    next_replica: AtomicU64,
    telemetry: Arc<GroupTelemetry>,
    _msg: PhantomData<fn() -> M>,
}

impl<M: Wire + Clone + Send + 'static> TcpGroup<M> {
    /// A group handle speaking to the sequencer at `addr`
    /// (e.g. `"127.0.0.1:7400"`). No connection is made until `join`.
    pub fn new(addr: impl Into<String>, first_replica: u64) -> TcpGroup<M> {
        TcpGroup {
            addr: addr.into(),
            next_replica: AtomicU64::new(first_replica),
            telemetry: Arc::new(GroupTelemetry::new()),
            _msg: PhantomData,
        }
    }

    /// Join as a specific logical replica. The sequencer assigns the member
    /// id and the replica's incarnation (join count).
    pub fn join_as(&self, replica: u64) -> Result<TcpMember<M>, GcsError> {
        let member =
            TcpMember::connect(&self.addr, replica, Arc::clone(&self.telemetry)).map_err(io_gcs)?;
        if member.incarnation() > 0 {
            self.telemetry.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        self.telemetry.live.lock().push(Arc::downgrade(&member.shared));
        Ok(member)
    }

    fn admin(&self, req: &UpFrame) -> io::Result<DownFrame> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, req)?;
        read_frame(&mut stream)
    }
}

fn io_gcs(e: io::Error) -> GcsError {
    GcsError::Io(e.to_string())
}

impl<M: Wire + Clone + Send + 'static> Group<M> for TcpGroup<M> {
    fn join(&self) -> Result<Box<dyn Member<M>>, GcsError> {
        let replica = self.next_replica.fetch_add(1, Ordering::SeqCst);
        Ok(Box::new(self.join_as(replica)?))
    }

    fn crash(&self, id: MemberId) {
        // Best-effort admin request; the reply is read so the eviction's
        // view change is sequenced before this returns.
        let _ = self.admin(&UpFrame::Evict { member: id.raw() });
    }

    fn view(&self) -> View {
        match self.admin(&UpFrame::Query) {
            Ok(DownFrame::View { id, members }) => {
                View { id, members: members.into_iter().map(|(m, _)| MemberId::new(m)).collect() }
            }
            _ => View { id: 0, members: Vec::new() },
        }
    }

    /// In-flight from this process's perspective: multicasts submitted but
    /// not yet sequenced plus deliveries queued but not yet received,
    /// summed over this handle's endpoints. Unlike the sim backend this
    /// cannot see other processes' queues, and the high-water mark is the
    /// max over endpoints rather than a true group-wide peak — the
    /// conformance suite documents this weakening.
    fn in_flight(&self) -> GaugeReading {
        let mut total = GaugeReading::default();
        for shared in self.telemetry.live_endpoints() {
            for reading in [shared.pending_sends.read(), shared.in_flight.read()] {
                total.current += reading.current;
                total.high_water = total.high_water.max(reading.high_water);
            }
        }
        total
    }

    fn transport(&self) -> TransportSnapshot {
        self.telemetry.rollup()
    }
}

/// State shared between a TCP member's reader thread, its endpoint, and
/// its multicast handles.
struct TcpShared {
    id: MemberId,
    /// Write half of the member's connection; the lock keeps concurrent
    /// multicasts' frames from interleaving mid-frame.
    write: Mutex<TcpStream>,
    /// Socket handle used only for shutdown (leave / crash_self).
    sock: TcpStream,
    /// Set once this endpoint is known dead (evicted, socket error, or
    /// crash_self); multicasts fail fast afterwards.
    crashed: AtomicBool,
    /// Frames decoded by the reader but not yet received by the endpoint.
    in_flight: Gauge,
    /// Total-order multicasts submitted but not yet sequenced (closed when
    /// our own delivery comes back; zeroed when the endpoint dies, since
    /// an evicted member's in-flight sends are dropped by the sequencer).
    pending_sends: Gauge,
    frames_in: AtomicU64,
    bytes_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_out: AtomicU64,
    decode_failures: AtomicU64,
    /// Group-level telemetry to fold our final counters into on drop.
    telemetry: Arc<GroupTelemetry>,
    /// Latest view delivered.
    view: Mutex<View>,
    /// Cumulative member → replica map learned from view frames (members
    /// from *earlier* views stay resolvable, which delivery translation
    /// needs when a writeset and the view that removed its sender race).
    replicas: Mutex<BTreeMap<u64, u64>>,
}

impl TcpShared {
    fn mark_crashed(&self) {
        if !self.crashed.swap(true, Ordering::SeqCst) {
            // First death only: count one eviction and retire the pending
            // window — frames an evicted member had in flight are dropped
            // by the sequencer ("not at all"), so they will never come
            // back to decrement the gauge.
            self.telemetry.evictions.fetch_add(1, Ordering::Relaxed);
            self.pending_sends.set(0);
        }
        let _ = self.sock.shutdown(Shutdown::Both);
    }

    /// This endpoint's counters. `reconnects`/`evictions` stay zero here —
    /// they are group-level churn, counted once by [`GroupTelemetry`].
    fn transport_snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            frames_in: self.frames_in.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            decode_failures: self.decode_failures.load(Ordering::Relaxed),
            reconnects: 0,
            evictions: 0,
            pending_sends: self.pending_sends.read(),
            recv_queue: self.in_flight.read(),
        }
    }
}

impl Drop for TcpShared {
    fn drop(&mut self) {
        // Fold the final counters into the group rollup so they survive
        // the endpoint. Currents are transient state of a now-dead socket:
        // zero them, keep the high-water marks.
        let mut snap = self.transport_snapshot();
        snap.pending_sends.current = 0;
        snap.recv_queue.current = 0;
        self.telemetry.retired.lock().absorb(&snap);
    }
}

/// A member endpoint over TCP. Created via [`TcpGroup::join_as`] /
/// `Group::join`.
pub struct TcpMember<M> {
    incarnation: u64,
    rx: Receiver<Delivery<M>>,
    shared: Arc<TcpShared>,
}

impl<M: Wire + Clone + Send + 'static> TcpMember<M> {
    fn connect(
        addr: &str,
        replica: u64,
        telemetry: Arc<GroupTelemetry>,
    ) -> io::Result<TcpMember<M>> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &UpFrame::Join { replica })?;
        let DownFrame::Welcome { member, incarnation } = read_frame(&mut stream)? else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sequencer did not start with Welcome",
            ));
        };
        let shared = Arc::new(TcpShared {
            id: MemberId::new(member),
            write: Mutex::new(stream.try_clone()?),
            sock: stream.try_clone()?,
            crashed: AtomicBool::new(false),
            in_flight: Gauge::new(),
            pending_sends: Gauge::new(),
            frames_in: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            decode_failures: AtomicU64::new(0),
            telemetry,
            view: Mutex::new(View { id: 0, members: Vec::new() }),
            replicas: Mutex::new(BTreeMap::new()),
        });
        let (tx, rx) = channel::unbounded();
        let reader_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("sirep-tcp-member-{member}"))
            .spawn(move || reader_loop(stream, &reader_shared, &tx))?;
        Ok(TcpMember { incarnation, rx, shared })
    }

    /// The member id the sequencer assigned.
    pub fn id(&self) -> MemberId {
        self.shared.id
    }

    /// This replica's join count at the sequencer.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }
}

/// Decode the sequencer's frame stream into deliveries. Runs until the
/// socket closes (eviction, sequencer shutdown, or local leave).
fn reader_loop<M: Wire>(
    mut stream: TcpStream,
    shared: &TcpShared,
    tx: &channel::Sender<Delivery<M>>,
) {
    // Duplicate suppression: replay-safe because the sequencer's stream is
    // strictly increasing per connection.
    let mut last_seq: Option<u64> = None;
    while let Ok((frame, bytes)) = read_frame_counted::<_, DownFrame>(&mut stream) {
        shared.frames_in.fetch_add(1, Ordering::Relaxed);
        shared.bytes_in.fetch_add(bytes, Ordering::Relaxed);
        let delivery = match frame {
            DownFrame::Total { seq, sender, payload } => {
                if last_seq.is_some_and(|last| seq <= last) {
                    continue;
                }
                last_seq = Some(seq);
                if sender == shared.id.raw() {
                    // Our own multicast came back sequenced: the
                    // HELD_SEND_SEQ window for it is closed.
                    shared.pending_sends.sub(1);
                }
                let Ok(msg) = M::from_wire(&payload.0) else {
                    shared.decode_failures.fetch_add(1, Ordering::Relaxed);
                    break;
                };
                Delivery::TotalOrder {
                    seq,
                    sender: MemberId::new(sender),
                    sequenced_at: Instant::now(),
                    msg,
                }
            }
            DownFrame::Batch { entries } => {
                // Per-entry processing identical to the Total arm: dedup by
                // sequence number, close own-send pending windows, decode.
                let mut batch = Vec::with_capacity(entries.len());
                let mut bad_decode = false;
                for (seq, sender, payload) in entries {
                    if last_seq.is_some_and(|last| seq <= last) {
                        continue;
                    }
                    last_seq = Some(seq);
                    if sender == shared.id.raw() {
                        shared.pending_sends.sub(1);
                    }
                    let Ok(msg) = M::from_wire(&payload.0) else {
                        bad_decode = true;
                        break;
                    };
                    batch.push(BatchEntry { seq, sender: MemberId::new(sender), msg });
                }
                if bad_decode {
                    shared.decode_failures.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                match batch.len() {
                    0 => continue,
                    // A fully-deduped-to-one batch delivers exactly like
                    // the unbatched stream would.
                    1 => {
                        // sirep-lint: allow(no-unwrap-on-protocol-paths): len checked == 1
                        let e = batch.pop().expect("len checked above");
                        Delivery::TotalOrder {
                            seq: e.seq,
                            sender: e.sender,
                            sequenced_at: Instant::now(),
                            msg: e.msg,
                        }
                    }
                    _ => Delivery::TotalBatch { sequenced_at: Instant::now(), entries: batch },
                }
            }
            DownFrame::Fifo { sender, payload } => {
                let Ok(msg) = M::from_wire(&payload.0) else {
                    shared.decode_failures.fetch_add(1, Ordering::Relaxed);
                    break;
                };
                Delivery::Fifo { sender: MemberId::new(sender), msg }
            }
            DownFrame::View { id, members } => {
                let view =
                    View { id, members: members.iter().map(|&(m, _)| MemberId::new(m)).collect() };
                {
                    let mut replicas = shared.replicas.lock();
                    for &(m, r) in &members {
                        replicas.insert(m, r);
                    }
                }
                *shared.view.lock() = view.clone();
                Delivery::ViewChange(view)
            }
            // Welcome is consumed during the handshake; Evicted only goes
            // to admin connections. Either here means a confused peer.
            DownFrame::Welcome { .. } | DownFrame::Evicted => break,
            // Admin replies never appear on a member connection.
            DownFrame::Stats { .. } | DownFrame::Time { .. } => break,
        };
        shared.in_flight.add(1);
        if tx.send(delivery).is_err() {
            break;
        }
    }
    shared.mark_crashed();
}

impl<M: Wire + Clone + Send + 'static> Member<M> for TcpMember<M> {
    fn id(&self) -> MemberId {
        self.shared.id
    }

    fn incarnation(&self) -> u64 {
        self.incarnation
    }

    fn handle(&self) -> Box<dyn Cast<M>> {
        Box::new(TcpCast { shared: Arc::clone(&self.shared), _msg: PhantomData::<fn() -> M> })
    }

    fn recv(&self) -> Result<Delivery<M>, GcsError> {
        match self.rx.recv() {
            Ok(d) => {
                self.shared.in_flight.sub(1);
                Ok(d)
            }
            Err(_) => Err(GcsError::Disconnected),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Delivery<M>, GcsError> {
        match self.rx.recv_timeout(timeout) {
            Ok(d) => {
                self.shared.in_flight.sub(1);
                Ok(d)
            }
            Err(channel::RecvTimeoutError::Timeout) => Err(GcsError::Timeout),
            Err(channel::RecvTimeoutError::Disconnected) => Err(GcsError::Disconnected),
        }
    }

    fn try_recv(&self) -> Option<Delivery<M>> {
        let d = self.rx.try_recv().ok()?;
        self.shared.in_flight.sub(1);
        Some(d)
    }

    fn view(&self) -> View {
        self.shared.view.lock().clone()
    }

    fn in_flight(&self) -> GaugeReading {
        self.shared.in_flight.read()
    }

    fn replica_of(&self, m: MemberId) -> Option<u64> {
        self.shared.replicas.lock().get(&m.raw()).copied()
    }

    fn leave(&self) {
        self.shared.mark_crashed();
    }

    fn transport(&self) -> TransportSnapshot {
        self.shared.transport_snapshot()
    }
}

/// Multicast handle over the member's connection.
pub struct TcpCast<M> {
    shared: Arc<TcpShared>,
    _msg: PhantomData<fn() -> M>,
}

impl<M: Wire + Clone + Send + 'static> TcpCast<M> {
    fn send(&self, frame: &UpFrame) -> Result<(), GcsError> {
        if self.shared.crashed.load(Ordering::SeqCst) {
            return Err(GcsError::MemberCrashed);
        }
        let mut stream = self.shared.write.lock();
        match write_frame_counted(&mut *stream, frame) {
            Ok(bytes) => {
                self.shared.frames_out.fetch_add(1, Ordering::Relaxed);
                self.shared.bytes_out.fetch_add(bytes, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                drop(stream);
                self.shared.mark_crashed();
                Err(io_gcs(e))
            }
        }
    }
}

impl<M: Wire + Clone + Send + 'static> Cast<M> for TcpCast<M> {
    fn id(&self) -> MemberId {
        self.shared.id
    }

    /// Fire-and-forget: the frame is on the socket (in per-connection FIFO
    /// order, which preserves this member's submission order through the
    /// sequencer) but not yet sequenced, so this returns
    /// [`HELD_SEND_SEQ`]. The real sequence number arrives with the
    /// delivery. An `Err` guarantees the message will never be delivered.
    fn multicast_total(&self, msg: M) -> Result<u64, GcsError> {
        // Open the pending window before the bytes can hit the wire, so
        // the gauge never reads zero while a send is actually in flight;
        // roll back on error (same discipline as the sim tier's gauge).
        self.shared.pending_sends.add(1);
        if let Err(e) = self.send(&UpFrame::Total { payload: Bytes(msg.to_wire()) }) {
            self.shared.pending_sends.sub(1);
            return Err(e);
        }
        Ok(HELD_SEND_SEQ)
    }

    fn multicast_fifo(&self, msg: M) -> Result<(), GcsError> {
        self.send(&UpFrame::Fifo { payload: Bytes(msg.to_wire()) })
    }

    fn crash_self(&self) {
        // Crash-stop: just die; the sequencer's EOF detection evicts us and
        // sequences the view change, exactly like a process kill.
        self.shared.mark_crashed();
    }

    fn in_flight(&self) -> GaugeReading {
        self.shared.in_flight.read()
    }

    fn clone_cast(&self) -> Box<dyn Cast<M>> {
        Box::new(TcpCast { shared: Arc::clone(&self.shared), _msg: PhantomData::<fn() -> M> })
    }

    fn transport(&self) -> TransportSnapshot {
        self.shared.transport_snapshot()
    }
}

// ======================================================================
// Sequencer admin scrapes (report/audit roles, telemetry service).
// ======================================================================

/// Sequencer-side observability counters, scraped over a one-shot admin
/// connection by [`query_seq_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeqStats {
    /// Frames retained in the sequenced replay log.
    pub log_len: u64,
    /// Next total-order sequence number to assign.
    pub next_seq: u64,
    /// Current view id.
    pub view_id: u64,
    /// `(member, send_queue_depth)` pairs sorted by member id — the
    /// fan-out backlog broken down by destination.
    pub members: Vec<(u64, u64)>,
}

impl SeqStats {
    /// Total fan-out backlog across all members.
    pub fn backlog(&self) -> u64 {
        self.members.iter().map(|&(_, depth)| depth).sum()
    }
}

fn admin_scrape(addr: &str, req: &UpFrame) -> io::Result<DownFrame> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(ADMIN_TIMEOUT))?;
    write_frame(&mut stream, req)?;
    read_frame(&mut stream)
}

/// Scrape the sequencer's observability counters.
pub fn query_seq_stats(addr: &str) -> io::Result<SeqStats> {
    match admin_scrape(addr, &UpFrame::Stats)? {
        DownFrame::Stats { log_len, next_seq, view_id, members } => {
            Ok(SeqStats { log_len, next_seq, view_id, members })
        }
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, "unexpected reply to Stats")),
    }
}

/// Read the sequencer's monotonic clock (nanoseconds since it started
/// serving). One leg of the clock-offset handshake: callers sample their
/// own clock before and after and take the midpoint as the exchange time.
pub fn probe_seq_time(addr: &str) -> io::Result<u64> {
    match admin_scrape(addr, &UpFrame::TimeProbe)? {
        DownFrame::Time { now_ns } => Ok(now_ns),
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, "unexpected reply to TimeProbe")),
    }
}
