//! The sequencer service: a single process that imposes the group's total
//! order over TCP.
//!
//! One mutex-protected state mirrors the sim backend's design, and the
//! guarantees follow the same way:
//!
//! - **Total order**: every `Total` frame is assigned its sequence number
//!   and appended to every live member's outbound queue under the lock, so
//!   all members see one consistent stream (payloads, FIFOs and view
//!   frames interleaved identically).
//! - **Uniform reliable delivery**: a frame the sequencer sequenced is in
//!   every survivor's queue *before* any later eviction's view frame; a
//!   frame still in flight from a member that gets evicted is discarded at
//!   the reader ("before the crash view, or not at all"). Outbound sockets
//!   are drained by per-member writer threads, so a slow or dead peer never
//!   blocks sequencing — it gets evicted instead.
//! - **View synchrony**: view frames are sequenced into the same stream,
//!   so all members deliver them at the same position.
//!
//! The sequencer retains the complete sequenced stream and replays it to
//! every joiner from the beginning. A restarted replica therefore recovers
//! by deterministic replay rather than state transfer; its join bumps the
//! replica's **incarnation** (returned in `Welcome`), which the middleware
//! folds into fresh transaction ids so replayed-and-deduped outcomes can
//! never collide with new ones. The log is unbounded — acceptable for the
//! smoke tier this backend serves; a production tier would checkpoint.
//!
//! Failure detection is TCP-level: a member connection reaching EOF or an
//! unwritable outbound socket evicts the member and sequences the view
//! change. There is no failure *suspicion* — exactly the crash-stop model
//! the paper assumes.

use super::frames::{Bytes, DownFrame, UpFrame};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use sirep_common::wire::{read_frame, write_frame, Wire};
use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Member ids pack `(join_count << 32) | replica`, so a replica's id is
/// distinct across restarts while its low bits stay recognizable. Replica
/// ids must therefore fit in 32 bits on this transport.
pub const MEMBER_INCARNATION_SHIFT: u32 = 32;

/// Default cap on how many sequenced totals one socket write may coalesce
/// into a [`DownFrame::Batch`]. Batching only engages when a writer falls
/// behind sequencing, so the cap bounds frame size without adding latency.
pub const DEFAULT_SEQ_BATCH: usize = 32;

/// One item on a member's outbound queue.
enum Outbound {
    /// A pre-encoded frame written as-is (welcome, replay, views, FIFOs).
    Raw(Arc<[u8]>),
    /// A sequenced total-order message, eligible for writer-side
    /// coalescing. `encoded` is the shared single-frame encoding (the same
    /// allocation the log retains), used when the total goes out alone.
    Total { seq: u64, sender: u64, payload: Arc<Bytes>, encoded: Arc<[u8]> },
}

/// One connected member as the sequencer sees it.
struct MemberConn {
    replica: u64,
    /// Outbound queue drained by this member's writer thread. Unbounded so
    /// enqueueing under the state lock never blocks on a slow socket.
    tx: Sender<Outbound>,
    /// Frames enqueued but not yet written — this member's share of the
    /// fan-out backlog, reported by [`UpFrame::Stats`]. Incremented at
    /// enqueue (under the state lock), decremented by the writer thread.
    queue_depth: Arc<AtomicU64>,
    /// The member's socket, kept for shutdown at eviction (wakes both the
    /// member's reader and our writer).
    stream: TcpStream,
}

struct SeqState {
    next_seq: u64,
    view_id: u64,
    /// Join count per replica id — the incarnation handed to each joiner.
    joins: BTreeMap<u64, u64>,
    /// Live members, keyed by member id (sorted ⇒ deterministic fan-out
    /// and view ordering).
    members: BTreeMap<u64, MemberConn>,
    /// The full sequenced stream (encoded `DownFrame`s, including view
    /// frames), replayed to every joiner.
    log: Vec<Arc<[u8]>>,
}

impl SeqState {
    fn view_frame(&self) -> DownFrame {
        DownFrame::View {
            id: self.view_id,
            members: self.members.iter().map(|(&id, c)| (id, c.replica)).collect(),
        }
    }

    /// Append a frame to the log and every live member's outbound queue.
    /// Must run under the state lock — that is what makes the stream total.
    fn sequence(&mut self, frame: &DownFrame) {
        let encoded: Arc<[u8]> = frame.to_wire().into();
        self.log.push(Arc::clone(&encoded));
        for conn in self.members.values() {
            // A full/dead peer is detected by its writer thread; ignoring
            // the send error here is fine because the queue outlives the
            // member only until eviction.
            if conn.tx.send(Outbound::Raw(Arc::clone(&encoded))).is_ok() {
                conn.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Sequence a total-order payload: the log keeps the single-frame
    /// encoding (so joiner replay is byte-identical to the unbatched
    /// stream), while members receive a structured item their writer
    /// thread may coalesce into a [`DownFrame::Batch`].
    fn sequence_total(&mut self, seq: u64, sender: u64, payload: Bytes) {
        let payload = Arc::new(payload);
        let encoded: Arc<[u8]> =
            DownFrame::Total { seq, sender, payload: (*payload).clone() }.to_wire().into();
        self.log.push(Arc::clone(&encoded));
        for conn in self.members.values() {
            let item = Outbound::Total {
                seq,
                sender,
                payload: Arc::clone(&payload),
                encoded: Arc::clone(&encoded),
            };
            if conn.tx.send(item).is_ok() {
                conn.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Remove members and sequence one view frame covering all of them.
    ///
    /// Returns the evicted members' sockets for the caller to shut down
    /// *after* releasing the state lock: `shutdown` is a syscall, and
    /// running it under the sequencer lock stalls sequencing for the
    /// whole group while the kernel tears down a dead peer's socket.
    #[must_use]
    fn evict(&mut self, ids: &[u64]) -> Vec<TcpStream> {
        let mut evicted = Vec::new();
        for id in ids {
            if let Some(conn) = self.members.remove(id) {
                evicted.push(conn.stream);
            }
        }
        if !evicted.is_empty() {
            self.view_id += 1;
            let frame = self.view_frame();
            self.sequence(&frame);
        }
        evicted
    }
}

/// Evict `ids` under the state lock, then shut their sockets down with
/// the lock released (wakes each evicted member's reader and our writer).
fn evict_and_shutdown(inner: &SeqInner, ids: &[u64]) {
    let evicted = inner.state.lock().evict(ids);
    for stream in evicted {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

struct SeqInner {
    state: Mutex<SeqState>,
    shutdown: AtomicBool,
    /// When the service started — the zero point of the monotonic clock
    /// reported by [`UpFrame::TimeProbe`], against which every node process
    /// aligns its trace timestamps.
    epoch: Instant,
    /// Per-socket-write coalescing cap; `1` disables batching (every total
    /// goes out as an individual [`DownFrame::Total`]).
    batch_max: usize,
}

/// The sequencer service handle. Dropping it shuts the service down.
pub struct Sequencer {
    inner: Arc<SeqInner>,
    addr: SocketAddr,
    listener: TcpListener,
}

impl Sequencer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving, with writeset batching at the default coalescing cap.
    pub fn spawn(addr: &str) -> io::Result<Sequencer> {
        Sequencer::spawn_with_batching(addr, DEFAULT_SEQ_BATCH)
    }

    /// Like [`Sequencer::spawn`] with an explicit coalescing cap.
    /// `batch_max <= 1` disables batching entirely — the differential and
    /// conformance suites use that to compare against the unbatched stream.
    pub fn spawn_with_batching(addr: &str, batch_max: usize) -> io::Result<Sequencer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(SeqInner {
            state: Mutex::new(SeqState {
                next_seq: 0,
                view_id: 0,
                joins: BTreeMap::new(),
                members: BTreeMap::new(),
                log: Vec::new(),
            }),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
            batch_max: batch_max.max(1),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_listener = listener.try_clone()?;
        thread::Builder::new()
            .name("sirep-seq-accept".into())
            .spawn(move || accept_loop(&accept_listener, &accept_inner))?;
        Ok(Sequencer { inner, addr, listener })
    }

    /// The bound address members connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total-order sequence numbers assigned so far.
    pub fn sequenced(&self) -> u64 {
        self.inner.state.lock().next_seq
    }

    /// Stop accepting, evict every member, and wake all service threads.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        let ids: Vec<u64> = self.inner.state.lock().members.keys().copied().collect();
        evict_and_shutdown(&self.inner, &ids);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        // A second path for platforms where the self-connect races the
        // accept: closing our clone is harmless either way.
        let _ = self.listener.set_nonblocking(true);
    }
}

impl Drop for Sequencer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<SeqInner>) {
    loop {
        let conn = listener.accept();
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = conn else { return };
        // Sequenced frames are small and latency-critical: never Nagle them.
        let _ = stream.set_nodelay(true);
        let conn_inner = Arc::clone(inner);
        let spawned = thread::Builder::new()
            .name("sirep-seq-conn".into())
            .spawn(move || serve_conn(stream, &conn_inner));
        if spawned.is_err() {
            return;
        }
    }
}

/// Serve one inbound connection: a member connection (starts with `Join`)
/// or an admin connection (`Evict`/`Query` request-reply frames).
fn serve_conn(stream: TcpStream, inner: &Arc<SeqInner>) {
    let mut read = stream;
    // Which member this connection speaks for, once joined.
    let mut member: Option<u64> = None;
    while let Ok(frame) = read_frame::<_, UpFrame>(&mut read) {
        match (frame, member) {
            (UpFrame::Join { replica }, None) => match handle_join(&read, inner, replica) {
                Ok(id) => member = Some(id),
                Err(_) => break,
            },
            (UpFrame::Total { payload }, Some(id)) => {
                let mut st = inner.state.lock();
                // An evicted member's in-flight frames are dropped: the
                // uniform-delivery contract's "not at all" arm.
                if st.members.contains_key(&id) {
                    let seq = st.next_seq;
                    st.next_seq += 1;
                    st.sequence_total(seq, id, payload);
                }
            }
            (UpFrame::Fifo { payload }, Some(id)) => {
                let mut st = inner.state.lock();
                if st.members.contains_key(&id) {
                    st.sequence(&DownFrame::Fifo { sender: id, payload });
                }
            }
            (UpFrame::Leave, Some(id)) => {
                evict_and_shutdown(inner, &[id]);
                break;
            }
            (UpFrame::Evict { member }, None) => {
                evict_and_shutdown(inner, &[member]);
                if write_frame(&mut (&read), &DownFrame::Evicted).is_err() {
                    break;
                }
            }
            (UpFrame::Query, None) => {
                let frame = inner.state.lock().view_frame();
                if write_frame(&mut (&read), &frame).is_err() {
                    break;
                }
            }
            (UpFrame::Stats, None) => {
                let frame = {
                    let st = inner.state.lock();
                    DownFrame::Stats {
                        log_len: st.log.len() as u64,
                        next_seq: st.next_seq,
                        view_id: st.view_id,
                        members: st
                            .members
                            .iter()
                            .map(|(&id, c)| (id, c.queue_depth.load(Ordering::Relaxed)))
                            .collect(),
                    }
                };
                if write_frame(&mut (&read), &frame).is_err() {
                    break;
                }
            }
            (UpFrame::TimeProbe, None) => {
                let now_ns = inner.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                if write_frame(&mut (&read), &DownFrame::Time { now_ns }).is_err() {
                    break;
                }
            }
            // Protocol violations (Join twice, payload before Join, admin
            // frames on a member connection) end the connection.
            _ => break,
        }
    }
    if let Some(id) = member {
        evict_and_shutdown(inner, &[id]);
    }
}

/// Admit a joiner: assign its member id and incarnation, sequence the view
/// that includes it, replay the full log to it, and start its writer.
fn handle_join(stream: &TcpStream, inner: &Arc<SeqInner>, replica: u64) -> io::Result<u64> {
    if replica >= (1 << MEMBER_INCARNATION_SHIFT) {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "replica id exceeds 32 bits"));
    }
    let write = stream.try_clone()?;
    let (tx, rx) = channel::unbounded::<Outbound>();
    let queue_depth = Arc::new(AtomicU64::new(0));
    let id;
    {
        let mut st = inner.state.lock();
        let count = st.joins.get(&replica).copied().unwrap_or(0);
        st.joins.insert(replica, count + 1);
        id = (count << MEMBER_INCARNATION_SHIFT) | replica;
        // Handshake reply first, then the full replay: the log already
        // ends with the view frame that admits this member, because we
        // register + sequence under the same lock hold.
        let welcome = DownFrame::Welcome { member: id, incarnation: count };
        let _ = tx.send(Outbound::Raw(welcome.to_wire().into()));
        queue_depth.fetch_add(1, Ordering::Relaxed);
        st.members.insert(
            id,
            MemberConn {
                replica,
                tx: tx.clone(),
                queue_depth: Arc::clone(&queue_depth),
                stream: stream.try_clone()?,
            },
        );
        st.view_id += 1;
        let frame = st.view_frame();
        // `sequence` fans out to every live member including the joiner —
        // but the joiner must first see the history, so replay everything
        // *before* this view into its queue, then sequence. Replay is
        // per-frame (`Raw`) even when batching is on: the log retains the
        // single-frame encodings.
        for encoded in &st.log {
            let _ = tx.send(Outbound::Raw(Arc::clone(encoded)));
        }
        queue_depth.fetch_add(st.log.len() as u64, Ordering::Relaxed);
        st.sequence(&frame);
    }
    let writer_inner = Arc::clone(inner);
    thread::Builder::new()
        .name("sirep-seq-writer".into())
        .spawn(move || writer_loop(write, &rx, &writer_inner, id, &queue_depth))?;
    Ok(id)
}

/// Drain one member's outbound queue onto its socket, coalescing runs of
/// queued totals into [`DownFrame::Batch`] frames up to the configured cap.
/// A write failure means the peer is gone: evict it so the group agrees.
fn writer_loop(
    mut stream: TcpStream,
    rx: &Receiver<Outbound>,
    inner: &Arc<SeqInner>,
    id: u64,
    queue_depth: &AtomicU64,
) {
    let batch_max = inner.batch_max;
    // An item pulled off the queue that could not join the current batch;
    // written on the next iteration, before blocking on the channel again.
    let mut carry: Option<Outbound> = None;
    loop {
        let first = match carry.take() {
            Some(item) => item,
            None => match rx.recv() {
                Ok(item) => item,
                Err(_) => return,
            },
        };
        let mut drained = 1u64;
        let written = match first {
            Outbound::Raw(frame) => write_one(&mut stream, &frame),
            Outbound::Total { seq, sender, payload, encoded } => {
                // Coalesce totals that queued up behind this write; stop at
                // the first non-total item so stream order is preserved.
                let mut entries = vec![(seq, sender, (*payload).clone())];
                let mut solo = Some(encoded);
                while entries.len() < batch_max {
                    match rx.try_recv() {
                        Ok(Outbound::Total { seq, sender, payload, .. }) => {
                            entries.push((seq, sender, (*payload).clone()));
                            solo = None;
                            drained += 1;
                        }
                        Ok(other) => {
                            carry = Some(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                match solo {
                    // A lone total goes out byte-identical to the
                    // unbatched stream.
                    Some(encoded) => write_one(&mut stream, &encoded),
                    None => write_one(&mut stream, &DownFrame::Batch { entries }.to_wire()),
                }
            }
        };
        // Dequeued either way; saturate in case an enqueue/decrement pair
        // ever races a restart of the counter.
        let _ = queue_depth.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(drained))
        });
        if !written {
            evict_and_shutdown(inner, &[id]);
            return;
        }
    }
}

fn write_one(stream: &mut TcpStream, frame: &[u8]) -> bool {
    use std::io::Write;
    let len = (frame.len() as u32).to_le_bytes();
    stream.write_all(&len).is_ok() && stream.write_all(frame).is_ok() && stream.flush().is_ok()
}
