//! The transport abstraction: what SRCA-Rep requires of a group
//! communication system, as traits.
//!
//! The replication core is written against [`Group`] / [`Member`] /
//! [`Cast`] trait objects, so backends can be swapped underneath the
//! protocol (the replica-interface layering of Wiesmann & Schiper's
//! replication frameworks). Two backends exist:
//!
//! - [`SimGroup`](crate::SimGroup) — the in-process simulated network:
//!   deterministic, seeded fault injection, model-time latency. This is the
//!   tier every chaos/correctness test runs on.
//! - [`TcpGroup`](crate::TcpGroup) — real processes over real sockets with
//!   a sequencer service providing the same delivery contract
//!   (length-prefixed frames, no shared memory).
//!
//! The **contract** every backend must provide (documented in detail in
//! `group.rs`, verified for both backends by the transport conformance
//! suite in `conformance_tests.rs`):
//!
//! - **Total order**: all members deliver all total-order multicasts in one
//!   consistent stream (same messages, same order, interleaved view changes
//!   at the same positions).
//! - **Uniform reliable delivery**: a multicast sequenced before a crash is
//!   delivered to every survivor ahead of the view change announcing the
//!   crash; a multicast that did not reach the sequencer before the crash
//!   is delivered nowhere ("before the crash view, or not at all" — §5.4's
//!   in-doubt resolution depends on exactly this dichotomy).
//! - **View synchrony**: all members deliver the same view changes at the
//!   same position in the stream.
//!
//! What is *not* part of the contract: the sequence number returned by
//! [`Cast::multicast_total`]. The sim backend sequences synchronously and
//! returns the real number; a networked backend is fire-and-forget and
//! returns [`HELD_SEND_SEQ`] — callers learn the order from delivery, which
//! is the only place the protocol may depend on it.

use crate::fault::{FaultConfig, FaultRecord};
use sirep_common::{Event, GaugeReading, MemberId, TransportSnapshot};
use std::fmt;
use std::time::{Duration, Instant};

/// Sequence number returned by `multicast_total` when the message has not
/// been sequenced at return time: the sim backend returns it for senders
/// inside an active partition (the message is sequenced at heal), and the
/// TCP backend returns it for every send (sequencing happens at the
/// sequencer, asynchronously). The authoritative sequence number is the one
/// carried by the delivery.
pub const HELD_SEND_SEQ: u64 = u64::MAX;

/// A membership view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    pub id: u64,
    pub members: Vec<MemberId>,
}

impl View {
    pub fn contains(&self, m: MemberId) -> bool {
        self.members.contains(&m)
    }
}

/// One message inside a [`Delivery::TotalBatch`]: the same `(seq, sender,
/// msg)` triple a standalone [`Delivery::TotalOrder`] would carry.
#[derive(Debug, Clone)]
pub struct BatchEntry<M> {
    pub seq: u64,
    pub sender: MemberId,
    pub msg: M,
}

/// What a member receives.
#[derive(Debug, Clone)]
pub enum Delivery<M> {
    /// Uniform reliable total-order multicast: same position in every
    /// member's stream. `seq` is the global sequence number;
    /// `sequenced_at` is the local wall-clock instant the message was
    /// sequenced (sim) or read off the wire (TCP), so receivers can
    /// attribute multicast latency without a cross-process clock.
    TotalOrder { seq: u64, sender: MemberId, sequenced_at: Instant, msg: M },
    /// A coalesced run of consecutive total-order multicasts, delivered as
    /// one unit. Entries are in sequence order (strictly ascending `seq`),
    /// and processing them one by one is — by contract — indistinguishable
    /// from receiving the same run as individual
    /// [`TotalOrder`](Delivery::TotalOrder) deliveries. Backends emit this
    /// only when batching is enabled; a batch is never split across a view
    /// change.
    TotalBatch { sequenced_at: Instant, entries: Vec<BatchEntry<M>> },
    /// FIFO multicast: per-sender order only (still globally consistent in
    /// both backends, as in Spread's agreed-order service levels).
    Fifo { sender: MemberId, msg: M },
    /// A membership change (crash or join).
    ViewChange(View),
}

/// Errors surfaced by group operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcsError {
    /// The member was removed from the group (crashed) — its endpoint is
    /// dead.
    MemberCrashed,
    /// recv() on a crashed/empty endpoint.
    Disconnected,
    /// recv_timeout() elapsed.
    Timeout,
    /// A transport-level failure (socket error, malformed frame). Only
    /// networked backends produce this.
    Io(String),
}

impl fmt::Display for GcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcsError::MemberCrashed => f.write_str("member has crashed"),
            GcsError::Disconnected => f.write_str("endpoint disconnected"),
            GcsError::Timeout => f.write_str("timed out"),
            GcsError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for GcsError {}

/// A clonable multicast-only capability: what protocol code that *sends*
/// (the commit path, progress reports) holds. Split from [`Member`] so the
/// receive loop owns the endpoint exclusively while any number of worker
/// threads multicast.
pub trait Cast<M>: Send + Sync {
    /// The member this handle multicasts as.
    fn id(&self) -> MemberId;

    /// Uniform reliable total-order multicast to the whole group (including
    /// the sender). The returned sequence number is advisory — see
    /// [`HELD_SEND_SEQ`]; an `Err` means the message is guaranteed to never
    /// be delivered anywhere.
    fn multicast_total(&self, msg: M) -> Result<u64, GcsError>;

    /// FIFO multicast to the whole group (including the sender).
    fn multicast_fifo(&self, msg: M) -> Result<(), GcsError>;

    /// Crash-stop this member from inside the process that backs it —
    /// crash-point support. Survivors get a view change.
    fn crash_self(&self);

    /// Delivery copies enqueued but not yet received (group-wide for the
    /// sim backend, this endpoint's queue for networked backends).
    fn in_flight(&self) -> GaugeReading;

    /// Object-safe clone.
    fn clone_cast(&self) -> Box<dyn Cast<M>>;

    /// Wire-level counters for the endpoint this handle multicasts
    /// through. Backends without a wire (the sim tier's lock-protected
    /// queues) report the empty default.
    fn transport(&self) -> TransportSnapshot {
        TransportSnapshot::default()
    }
}

impl<M> Clone for Box<dyn Cast<M>> {
    fn clone(&self) -> Self {
        self.clone_cast()
    }
}

/// A member endpoint: receives deliveries, can multicast, knows the view.
pub trait Member<M>: Send {
    fn id(&self) -> MemberId;

    /// How many times this member's logical replica has joined the group
    /// before (0 on first join). Networked backends count joins at the
    /// sequencer so a restarted process resumes with a fresh transaction-id
    /// incarnation; the sim backend tracks rejoins in `Cluster::recover`
    /// instead and always returns 0 here.
    fn incarnation(&self) -> u64 {
        0
    }

    /// A clonable handle for multicasting from other threads.
    fn handle(&self) -> Box<dyn Cast<M>>;

    /// Blocking receive.
    fn recv(&self) -> Result<Delivery<M>, GcsError>;

    /// Receive with a wall-clock timeout.
    fn recv_timeout(&self, timeout: Duration) -> Result<Delivery<M>, GcsError>;

    /// Non-blocking receive: returns a delivery only if one has already
    /// arrived.
    fn try_recv(&self) -> Option<Delivery<M>>;

    /// The current view as known by this endpoint.
    fn view(&self) -> View;

    /// Delivery copies enqueued but not yet received.
    fn in_flight(&self) -> GaugeReading;

    /// The logical replica id a group member represents, if this endpoint
    /// knows it (networked backends learn it from view frames; the sim
    /// backend leaves the mapping to the cluster's member registry).
    fn replica_of(&self, m: MemberId) -> Option<u64> {
        let _ = m;
        None
    }

    /// Leave the group. Survivors observe a view change; for backends
    /// without a distinct graceful-leave protocol this is `crash_self`.
    fn leave(&self);

    /// Wire-level counters for this endpoint (empty default for backends
    /// without a wire).
    fn transport(&self) -> TransportSnapshot {
        TransportSnapshot::default()
    }
}

/// A handle on the group itself: join, administratively crash members,
/// observe the view — plus the fault hooks the chaos tier scripts.
///
/// The fault hooks have no-op defaults: deterministic seeded fault
/// injection is a property of the *simulated* network (`DESIGN.md` §12's
/// determinism pillar requires a virtual clock and a seeded schedule, which
/// real sockets cannot provide), so the TCP backend inherits the defaults
/// and the chaos harness stays pinned to [`SimGroup`](crate::SimGroup).
pub trait Group<M>: Send + Sync {
    /// Join the group: returns the new member's endpoint. All members
    /// (including the new one) receive the view that adds it.
    fn join(&self) -> Result<Box<dyn Member<M>>, GcsError>;

    /// Administratively crash a member: it is removed from the group and
    /// every survivor receives a view change. Idempotent; unknown ids are
    /// ignored.
    fn crash(&self, id: MemberId);

    /// The current view (live members).
    fn view(&self) -> View;

    /// Delivery copies enqueued but not yet received, with high-water mark.
    fn in_flight(&self) -> GaugeReading;

    /// Install a seeded fault plan whose journal events are stamped against
    /// a shared `epoch`. No-op on backends without deterministic faults.
    fn install_faults_with_epoch(&self, cfg: FaultConfig, epoch: Instant) {
        let _ = (cfg, epoch);
    }

    /// Explicitly partition the group. No-op on backends without
    /// deterministic faults.
    fn partition(&self, members: &[MemberId]) {
        let _ = members;
    }

    /// Heal any active partition. No-op without deterministic faults.
    fn heal(&self) {}

    /// `(fnv1a_fingerprint, record_count)` of the fault schedule so far;
    /// `None` when no plan is installed (always for the TCP backend).
    fn fault_fingerprint(&self) -> Option<(u64, u64)> {
        None
    }

    /// The retained fault schedule (empty without a plan).
    fn fault_log(&self) -> Vec<FaultRecord> {
        Vec::new()
    }

    /// `(faults_injected, partitioned)` gauge readings from the installed
    /// plan, if any.
    fn fault_gauges(&self) -> Option<(GaugeReading, GaugeReading)> {
        None
    }

    /// Snapshot of the network fault journal (empty without a plan).
    fn fault_journal(&self) -> Vec<Event> {
        Vec::new()
    }

    /// Wire-level counters rolled up over every endpoint this group handle
    /// created, kept monotonic across member churn. Backends without a
    /// wire report the empty default.
    fn transport(&self) -> TransportSnapshot {
        TransportSnapshot::default()
    }
}
