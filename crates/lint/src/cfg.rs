//! Per-function control-flow graph construction.
//!
//! The linear token walker that preceded this module assumed straight-line
//! execution: a guard dropped inside one `match` arm looked dropped in
//! every arm, and a guard acquired in an `if` branch leaked into the code
//! after the join. This module parses a function body's token stream into
//! a structured node tree (if/else, match, loops, early returns, `?`) and
//! lowers it to explicit basic blocks over *guard ops*, so the dataflow
//! pass in [`crate::dataflow`] can compute path-sensitive guard liveness.
//!
//! Still syn-free: the parse is brace/paren structure plus a handful of
//! keywords, exactly like [`crate::scopes`]. Known approximations (all
//! conservative, all documented in DESIGN.md §18):
//!
//! - Control flow *inside parenthesized regions* (closure arguments,
//!   `match` used as a call argument) is walked linearly; its events are
//!   still emitted, its scopes still close, but its branches are not
//!   separated.
//! - `while let` scrutinee temporaries are treated as dying at the end of
//!   the condition, not the end of the loop body.
//! - `drop(name)` kills every live guard bound to `name` (shadowed
//!   bindings are not distinguished).

use crate::lexer::{Tok, TokKind};
use crate::rules::{suffix_matches, LockClass};

/// One statically-allocated guard creation site.
#[derive(Debug, Clone)]
pub struct Site {
    pub class: String,
    /// Binding name (`let g = ...`); `None` for statement-lived
    /// temporaries (`self.armed.lock().insert(..)`).
    pub name: Option<String>,
    pub line: u32,
}

/// One operation inside a basic block.
#[derive(Debug, Clone)]
pub enum Op {
    /// A guard-producing lock expression; gen's `site`.
    Acquire { site: usize, line: u32 },
    /// A call that takes (and releases) a lock internally — an event for
    /// the ordering rules, but no liveness change.
    AcquireEvent { class: String, line: u32 },
    /// `drop(name)`: kills every live site bound to `name`.
    DropName { name: String },
    /// Scope/statement end: kills the listed sites.
    Kill { sites: Vec<usize> },
    /// A dotted/path call `a.b.c(` (lock expressions excluded).
    Call { path: Vec<String>, line: u32 },
    /// A macro invocation `name!(..)`.
    Macro { name: String, line: u32 },
    /// An index expression `expr[...]`.
    Index { line: u32 },
    /// The `?` operator: an edge to the exit block splits off here.
    Try,
}

#[derive(Debug, Default)]
pub struct Block {
    pub ops: Vec<Op>,
    pub succ: Vec<usize>,
}

#[derive(Debug)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    pub entry: usize,
    pub exit: usize,
    pub sites: Vec<Site>,
}

/// Which lock classes are visible to the linearizer for one file.
pub struct GuardCtx<'a> {
    pub classes: &'a [LockClass],
    pub file: &'a str,
}

impl GuardCtx<'_> {
    /// Class whose guard-producing `lock-exprs` match `path` (file-scoped).
    fn lock_class(&self, path: &[String]) -> Option<&str> {
        self.classes.iter().find_map(|c| {
            if !c.lock_exprs.is_empty() && !crate::rules::file_in_scope(self.file, &c.files) {
                return None;
            }
            c.lock_exprs.iter().any(|p| suffix_matches(path, p)).then_some(c.name.as_str())
        })
    }

    /// Class acquired internally by a call to `path` (any file).
    fn acquire_class(&self, path: &[String]) -> Option<&str> {
        self.classes.iter().find_map(|c| {
            c.acquire_fns.iter().any(|p| suffix_matches(path, p)).then_some(c.name.as_str())
        })
    }
}

// ---------------------------------------------------------------------
// Structured parse: token stream -> node tree
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Node {
    Linear(Vec<Op>),
    /// `{ ... }`: sites created within ([lo, hi)) die at the close brace.
    Scope {
        body: Vec<Node>,
        lo: usize,
        hi: usize,
    },
    If {
        cond: Vec<Op>,
        /// Sites created while evaluating the condition.
        cond_sites: Vec<usize>,
        /// `if let` scrutinee temporaries live through both branches
        /// (edition-2021 semantics); plain `if` condition temporaries die
        /// before the branch.
        scrutinee_lives: bool,
        then_b: Vec<Node>,
        else_b: Option<Vec<Node>>,
    },
    Match {
        scrut: Vec<Op>,
        scrut_sites: Vec<usize>,
        arms: Vec<Vec<Node>>,
    },
    Loop {
        cond: Vec<Op>,
        cond_sites: Vec<usize>,
        body: Vec<Node>,
        /// `while`/`for` can skip the body; `loop` cannot.
        conditional: bool,
    },
    Return(Vec<Op>),
    Break,
    Continue,
}

struct Parser<'a> {
    toks: &'a [Tok],
    ctx: &'a GuardCtx<'a>,
    pos: usize,
    sites: Vec<Site>,
    /// Momentary (unbound) sites opened in the current statement, killed
    /// at the next `;` in the same scope.
    open_momentary: Vec<usize>,
    /// Paren/bracket/brace depth inside the current `linearize` call.
    nest_depth: usize,
}

impl<'a> Parser<'a> {
    fn peek_ident(&self, off: usize) -> Option<&str> {
        self.toks.get(self.pos + off).and_then(|t| t.ident())
    }

    fn at_punct(&self, c: char) -> bool {
        self.toks.get(self.pos).is_some_and(|t| t.is_punct(c))
    }

    /// Parse statements until the matching `}` (consumed) or end of input.
    /// `mom_mark` scopes the momentary-kill machinery to this block.
    fn parse_stmts(&mut self, stop_at_close: bool) -> Vec<Node> {
        let mut nodes = Vec::new();
        let mom_mark = self.open_momentary.len();
        while self.pos < self.toks.len() {
            if self.at_punct('}') {
                if stop_at_close {
                    self.pos += 1;
                }
                break;
            }
            match self.peek_ident(0) {
                Some("if") => {
                    let n = self.parse_if();
                    nodes.push(n);
                }
                Some("match") => {
                    let n = self.parse_match();
                    nodes.push(n);
                }
                Some("while") | Some("for") => {
                    let n = self.parse_loop(true);
                    nodes.push(n);
                }
                Some("loop") => {
                    let n = self.parse_loop(false);
                    nodes.push(n);
                }
                Some("return") => {
                    self.pos += 1;
                    let ops = self.linearize_until_semi();
                    nodes.push(Node::Return(ops));
                }
                Some("break") => {
                    self.pos += 1;
                    let ops = self.linearize_until_semi();
                    if !ops.is_empty() {
                        nodes.push(Node::Linear(ops));
                    }
                    nodes.push(Node::Break);
                }
                Some("continue") => {
                    self.pos += 1;
                    let ops = self.linearize_until_semi();
                    if !ops.is_empty() {
                        nodes.push(Node::Linear(ops));
                    }
                    nodes.push(Node::Continue);
                }
                _ => {
                    if self.at_punct('{') {
                        // `let Pat = expr else { .. };` — the only way a
                        // statement-position brace follows an `else` ident
                        // (if/else is consumed whole by parse_if). The block
                        // always diverges; model it as a branch so the
                        // happy-path fall-through stays reachable.
                        let let_else =
                            self.pos > 0 && self.toks[self.pos - 1].ident() == Some("else");
                        self.pos += 1;
                        let scope = self.parse_scope();
                        if let_else {
                            nodes.push(Node::If {
                                cond: Vec::new(),
                                cond_sites: Vec::new(),
                                scrutinee_lives: false,
                                then_b: vec![scope],
                                else_b: Some(Vec::new()),
                            });
                        } else {
                            nodes.push(scope);
                        }
                        continue;
                    }
                    if self.at_punct(';') {
                        self.pos += 1;
                        self.kill_momentary(mom_mark, &mut nodes);
                        continue;
                    }
                    // A linear statement (or the head of one: it may be
                    // interrupted by an expression-position `if`/`match`,
                    // which the outer loop picks up next).
                    let ops = self.linearize_segment();
                    if !ops.is_empty() {
                        nodes.push(Node::Linear(ops));
                    }
                }
            }
        }
        // End of block: any statement-lived guards still open die here
        // (tail expressions have no `;`).
        self.kill_momentary(mom_mark, &mut nodes);
        nodes
    }

    fn kill_momentary(&mut self, mark: usize, nodes: &mut Vec<Node>) {
        if self.open_momentary.len() > mark {
            let sites = self.open_momentary.split_off(mark);
            nodes.push(Node::Linear(vec![Op::Kill { sites }]));
        }
    }

    /// Current position is just past a `{`: parse the scope body.
    fn parse_scope(&mut self) -> Node {
        let lo = self.sites.len();
        let body = self.parse_stmts(true);
        Node::Scope { body, lo, hi: self.sites.len() }
    }

    fn parse_if(&mut self) -> Node {
        self.pos += 1; // `if`
        let scrutinee_lives = self.peek_ident(0) == Some("let");
        let site_lo = self.sites.len();
        let mom_mark = self.open_momentary.len();
        let cond = self.linearize_cond();
        self.open_momentary.truncate(mom_mark);
        let cond_sites: Vec<usize> = (site_lo..self.sites.len()).collect();
        let then_b = vec![self.parse_scope()];
        let else_b = if self.peek_ident(0) == Some("else") {
            self.pos += 1;
            if self.peek_ident(0) == Some("if") {
                Some(vec![self.parse_if()])
            } else if self.at_punct('{') {
                self.pos += 1;
                Some(vec![self.parse_scope()])
            } else {
                None
            }
        } else {
            None
        };
        Node::If { cond, cond_sites, scrutinee_lives, then_b, else_b }
    }

    fn parse_match(&mut self) -> Node {
        self.pos += 1; // `match`
        let site_lo = self.sites.len();
        let mom_mark = self.open_momentary.len();
        let scrut = self.linearize_cond();
        self.open_momentary.truncate(mom_mark);
        let scrut_sites: Vec<usize> = (site_lo..self.sites.len()).collect();
        let mut arms = Vec::new();
        while self.pos < self.toks.len() && !self.at_punct('}') {
            let arm_lo = self.sites.len();
            let mut arm_ops = self.linearize_pattern();
            let mut arm_nodes = Vec::new();
            if self.at_punct('{') {
                self.pos += 1;
                if !arm_ops.is_empty() {
                    arm_nodes.push(Node::Linear(std::mem::take(&mut arm_ops)));
                }
                arm_nodes.push(self.parse_scope());
            } else {
                arm_ops.extend(self.linearize_arm_expr());
                arm_nodes.push(Node::Linear(arm_ops));
            }
            if self.at_punct(',') {
                self.pos += 1;
            }
            arms.push(vec![Node::Scope { body: arm_nodes, lo: arm_lo, hi: self.sites.len() }]);
        }
        if self.at_punct('}') {
            self.pos += 1;
        }
        Node::Match { scrut, scrut_sites, arms }
    }

    fn parse_loop(&mut self, conditional: bool) -> Node {
        self.pos += 1; // `while` / `for` / `loop`
        let site_lo = self.sites.len();
        let mom_mark = self.open_momentary.len();
        let cond = if conditional { self.linearize_cond() } else { self.expect_open_brace() };
        self.open_momentary.truncate(mom_mark);
        let cond_sites: Vec<usize> = (site_lo..self.sites.len()).collect();
        let body = vec![self.parse_scope()];
        Node::Loop { cond, cond_sites, body, conditional }
    }

    /// For `loop`: no condition, just consume the `{`.
    fn expect_open_brace(&mut self) -> Vec<Op> {
        if self.at_punct('{') {
            self.pos += 1;
        }
        Vec::new()
    }

    /// Linearize a condition/scrutinee: tokens up to the body `{` at
    /// paren depth 0 (struct literals are illegal there, so the first
    /// such brace *is* the body). Consumes the `{`.
    fn linearize_cond(&mut self) -> Vec<Op> {
        let ops = self.linearize(|p| p.at_punct('{') && !p.in_nested(), false);
        if self.at_punct('{') {
            self.pos += 1;
        }
        ops
    }

    /// Linearize a match-arm pattern (and guard) up to `=>` (consumed).
    fn linearize_pattern(&mut self) -> Vec<Op> {
        let ops = self.linearize(
            |p| {
                p.toks.get(p.pos).is_some_and(|t| t.is_punct('='))
                    && p.toks.get(p.pos + 1).is_some_and(|t| t.is_punct('>'))
                    && !p.in_nested()
            },
            true,
        );
        if self.at_punct('=') {
            self.pos += 2;
        }
        ops
    }

    /// Linearize a braceless match-arm body up to `,` or the match's `}`
    /// at depth 0 (neither consumed here).
    fn linearize_arm_expr(&mut self) -> Vec<Op> {
        self.linearize(|p| (p.at_punct(',') || p.at_punct('}')) && !p.in_nested(), false)
    }

    /// Linearize one statement up to `;`, consuming it.
    fn linearize_until_semi(&mut self) -> Vec<Op> {
        let ops = self.linearize(|p| (p.at_punct(';') || p.at_punct('}')) && !p.in_nested(), false);
        if self.at_punct(';') {
            self.pos += 1;
        }
        ops
    }

    /// Linearize a statement head: stops at `;`/`}` like
    /// [`Self::linearize_until_semi`] but *also* at an expression-position
    /// control keyword (`let x = match … ;`), leaving it for the caller.
    fn linearize_segment(&mut self) -> Vec<Op> {
        self.linearize(
            |p| {
                if p.in_nested() {
                    return false;
                }
                if p.at_punct(';') || p.at_punct('}') || p.at_punct('{') {
                    return true;
                }
                matches!(
                    p.peek_ident(0),
                    Some(
                        "if" | "match" | "while" | "for" | "loop" | "return" | "break" | "continue"
                    )
                )
            },
            false,
        )
    }

    /// Is the scanner inside a paren/bracket/brace nest opened during the
    /// current `linearize` call? (State lives in `nest_depth`.)
    fn in_nested(&self) -> bool {
        self.nest_depth > 0
    }

    /// Core linear walk, ported from the old token walker: emits guard
    /// acquisitions, `drop(..)` releases, calls, macros, and index
    /// expressions until `stop(self)` holds at nest depth 0. Inside
    /// parens/brackets — and, when linearizing, inner braces (closure
    /// bodies in call arguments) — everything is walked linearly, with
    /// brace scopes still closing the guards they created.
    fn linearize(&mut self, stop: impl Fn(&Self) -> bool, in_pattern: bool) -> Vec<Op> {
        let mut ops = Vec::new();
        // `let NAME =` binding pending for this statement.
        let mut pending_let: Option<String> = None;
        // Brace scopes opened inside this segment: site-range marks.
        let mut brace_marks: Vec<usize> = Vec::new();
        self.nest_depth = 0;
        while self.pos < self.toks.len() {
            if stop(self) {
                break;
            }
            let t = &self.toks[self.pos];
            match &t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') => {
                    // Index expression iff the previous token can end an
                    // expression.
                    if t.is_punct('[') && !in_pattern {
                        let prev = self.pos.checked_sub(1).map(|i| &self.toks[i]);
                        let is_index = prev.is_some_and(|p| {
                            (matches!(p.kind, TokKind::Ident(_))
                                || p.is_punct(')')
                                || p.is_punct(']')
                                || p.is_literal())
                                && !matches!(p.ident(), Some("return" | "in" | "else" | "match"))
                        });
                        if is_index {
                            ops.push(Op::Index { line: t.line });
                        }
                    }
                    self.nest_depth += 1;
                    self.pos += 1;
                }
                TokKind::Punct(')') | TokKind::Punct(']') => {
                    self.nest_depth = self.nest_depth.saturating_sub(1);
                    self.pos += 1;
                }
                TokKind::Punct('{') => {
                    // An expression brace inside the segment (closure body,
                    // struct literal, macro braces): a lexical scope.
                    self.nest_depth += 1;
                    brace_marks.push(self.sites.len());
                    self.pos += 1;
                }
                TokKind::Punct('}') => {
                    self.nest_depth = self.nest_depth.saturating_sub(1);
                    if let Some(lo) = brace_marks.pop() {
                        let sites: Vec<usize> = (lo..self.sites.len()).collect();
                        if !sites.is_empty() {
                            ops.push(Op::Kill { sites });
                        }
                    }
                    self.pos += 1;
                }
                TokKind::Punct('?') => {
                    ops.push(Op::Try);
                    self.pos += 1;
                }
                TokKind::Punct(';') => {
                    // A `;` inside a nested brace (closure body statement):
                    // momentary guards opened there die now.
                    if let Some(&lo) = brace_marks.last() {
                        let sites: Vec<usize> =
                            self.open_momentary.iter().copied().filter(|&s| s >= lo).collect();
                        if !sites.is_empty() {
                            self.open_momentary.retain(|&s| s < lo);
                            ops.push(Op::Kill { sites });
                        }
                    }
                    pending_let = None;
                    self.pos += 1;
                }
                TokKind::Ident(id) if id == "let" => {
                    // `let [mut] NAME =` (not `let Pat(..) =`, not let-else).
                    let mut j = 1;
                    if self.peek_ident(j) == Some("mut") {
                        j += 1;
                    }
                    if let Some(name) = self.peek_ident(j) {
                        if self.toks.get(self.pos + j + 1).is_some_and(|t| t.is_punct('=')) {
                            pending_let = Some(name.to_string());
                        }
                    }
                    self.pos += 1;
                }
                TokKind::Ident(id)
                    if id == "drop"
                        && self.toks.get(self.pos + 1).is_some_and(|t| t.is_punct('(')) =>
                {
                    if let (Some(name), true) = (
                        self.peek_ident(2),
                        self.toks.get(self.pos + 3).is_some_and(|t| t.is_punct(')')),
                    ) {
                        ops.push(Op::DropName { name: name.to_string() });
                        self.pos += 4;
                    } else {
                        self.pos += 1;
                    }
                }
                TokKind::Ident(_) => {
                    // Macro call?
                    if self.toks.get(self.pos + 1).is_some_and(|t| t.is_punct('!'))
                        && self
                            .toks
                            .get(self.pos + 2)
                            .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
                    {
                        ops.push(Op::Macro {
                            name: t.ident().unwrap_or_default().to_string(),
                            line: t.line,
                        });
                        self.pos += 1;
                        continue;
                    }
                    // Dotted/path call chain ending in `(`.
                    if let Some((path, end)) = call_chain(self.toks, self.pos) {
                        let line = self.toks[end - 1].line;
                        if let Some(class) = self.ctx.lock_class(&path) {
                            // `let g = path.lock();` binds the guard — only
                            // when the lock call is the whole initializer.
                            let terminal = matching_close(self.toks, end).is_some_and(|c| {
                                self.toks.get(c + 1).is_some_and(|t| t.is_punct(';'))
                            });
                            let name = if terminal { pending_let.clone() } else { None };
                            let momentary = name.is_none();
                            let site = self.sites.len();
                            self.sites.push(Site { class: class.to_string(), name, line });
                            if momentary {
                                self.open_momentary.push(site);
                            }
                            ops.push(Op::Acquire { site, line });
                            self.pos = end + 1;
                            continue;
                        }
                        if let Some(class) = self.ctx.acquire_class(&path) {
                            ops.push(Op::AcquireEvent { class: class.to_string(), line });
                        }
                        ops.push(Op::Call { path, line });
                        self.pos = end + 1;
                        continue;
                    }
                    // Method call on a complex receiver (`foo().bar(`,
                    // `xs[k].bar(`): the chain walk can't cross `)`/`]`,
                    // but the final method name is still checkable.
                    if self.pos > 0
                        && self.toks[self.pos - 1].is_punct('.')
                        && self.toks.get(self.pos + 1).is_some_and(|t| t.is_punct('('))
                    {
                        let path =
                            vec!["#expr".to_string(), t.ident().unwrap_or_default().to_string()];
                        if let Some(class) = self.ctx.acquire_class(&path) {
                            ops.push(Op::AcquireEvent { class: class.to_string(), line: t.line });
                        }
                        ops.push(Op::Call { path, line: t.line });
                    }
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        // Close any brace scopes left open (malformed input): kill their
        // sites so guards never outlive a truncated parse.
        while let Some(lo) = brace_marks.pop() {
            let sites: Vec<usize> = (lo..self.sites.len()).collect();
            if !sites.is_empty() {
                ops.push(Op::Kill { sites });
            }
        }
        self.nest_depth = 0;
        ops
    }
}

/// Index of the `)` matching the `(` at `open`.
fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// If a call chain `a.b.c(` or `A::b(` ends at position `i` (i.e. `i` is
/// the first ident of the chain), return the segment path and the index
/// of the `(` token. Chains are consumed from their head so every call is
/// seen exactly once.
fn call_chain(toks: &[Tok], i: usize) -> Option<(Vec<String>, usize)> {
    if i > 0 && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':')) {
        return None;
    }
    let mut path = vec![toks[i].ident()?.to_string()];
    let mut j = i + 1;
    loop {
        if toks.get(j).is_some_and(|t| t.is_punct('(')) {
            return Some((path, j));
        }
        if toks.get(j).is_some_and(|t| t.is_punct('.')) {
            if let Some(seg) = toks.get(j + 1).and_then(|t| t.ident()) {
                path.push(seg.to_string());
                j += 2;
                continue;
            }
            // `.0` tuple access: treat the literal as an opaque segment.
            if toks.get(j + 1).is_some_and(Tok::is_literal) {
                path.push("#tuple".to_string());
                j += 2;
                continue;
            }
            return None;
        }
        if toks.get(j).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(seg) = toks.get(j + 2).and_then(|t| t.ident()) {
                path.push(seg.to_string());
                j += 3;
                continue;
            }
            // `::<T>` turbofish: skip the generic list, keep scanning.
            if toks.get(j + 2).is_some_and(|t| t.is_punct('<')) {
                let mut depth = 1;
                let mut k = j + 3;
                while k < toks.len() && depth > 0 {
                    if toks[k].is_punct('<') {
                        depth += 1;
                    } else if toks[k].is_punct('>') {
                        depth -= 1;
                    }
                    k += 1;
                }
                j = k;
                continue;
            }
            return None;
        }
        return None;
    }
}

// ---------------------------------------------------------------------
// Lowering: node tree -> basic blocks
// ---------------------------------------------------------------------

struct Lower {
    blocks: Vec<Block>,
    exit: usize,
    /// (head, exit) of each enclosing loop, innermost last.
    loops: Vec<(usize, usize)>,
    cur: usize,
}

impl Lower {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succ.contains(&to) {
            self.blocks[from].succ.push(to);
        }
    }

    fn emit(&mut self, op: Op) {
        match op {
            Op::Try => {
                // `?` splits the block: error path to exit, success path
                // falls through into a fresh block.
                let cur = self.cur;
                self.edge(cur, self.exit);
                let next = self.new_block();
                self.edge(cur, next);
                self.cur = next;
            }
            Op::Kill { ref sites } if sites.is_empty() => {}
            op => self.blocks[self.cur].ops.push(op),
        }
    }

    fn lower_nodes(&mut self, nodes: Vec<Node>) {
        for n in nodes {
            self.lower(n);
        }
    }

    fn lower(&mut self, node: Node) {
        match node {
            Node::Linear(ops) => {
                for op in ops {
                    self.emit(op);
                }
            }
            Node::Scope { body, lo, hi } => {
                self.lower_nodes(body);
                self.emit(Op::Kill { sites: (lo..hi).collect() });
            }
            Node::If { cond, cond_sites, scrutinee_lives, then_b, else_b } => {
                for op in cond {
                    self.emit(op);
                }
                if !scrutinee_lives {
                    self.emit(Op::Kill { sites: cond_sites.clone() });
                }
                let head = self.cur;
                let then_start = self.new_block();
                self.edge(head, then_start);
                self.cur = then_start;
                self.lower_nodes(then_b);
                let then_end = self.cur;
                let join = self.new_block();
                self.edge(then_end, join);
                match else_b {
                    Some(body) => {
                        let else_start = self.new_block();
                        self.edge(head, else_start);
                        self.cur = else_start;
                        self.lower_nodes(body);
                        let else_end = self.cur;
                        self.edge(else_end, join);
                    }
                    None => self.edge(head, join),
                }
                self.cur = join;
                if scrutinee_lives {
                    self.emit(Op::Kill { sites: cond_sites });
                }
            }
            Node::Match { scrut, scrut_sites, arms } => {
                for op in scrut {
                    self.emit(op);
                }
                let head = self.cur;
                let join = self.new_block();
                if arms.is_empty() {
                    self.edge(head, join);
                }
                for arm in arms {
                    let a = self.new_block();
                    self.edge(head, a);
                    self.cur = a;
                    self.lower_nodes(arm);
                    let end = self.cur;
                    self.edge(end, join);
                }
                self.cur = join;
                // Match scrutinee temporaries live until the whole match
                // expression ends (the significant_drop_in_scrutinee hazard).
                self.emit(Op::Kill { sites: scrut_sites });
            }
            Node::Loop { cond, cond_sites, body, conditional } => {
                let before = self.cur;
                let head = self.new_block();
                self.edge(before, head);
                self.cur = head;
                for op in cond {
                    self.emit(op);
                }
                self.emit(Op::Kill { sites: cond_sites });
                // `?` in the condition may have split the head.
                let head = self.cur;
                let exit = self.new_block();
                if conditional {
                    self.edge(head, exit);
                }
                let body_start = self.new_block();
                self.edge(head, body_start);
                self.loops.push((head, exit));
                self.cur = body_start;
                self.lower_nodes(body);
                let body_end = self.cur;
                self.edge(body_end, head);
                self.loops.pop();
                self.cur = exit;
            }
            Node::Return(ops) => {
                for op in ops {
                    self.emit(op);
                }
                let cur = self.cur;
                self.edge(cur, self.exit);
                // Anything after a `return` in the same node list is
                // unreachable; park it in a predecessor-less block.
                self.cur = self.new_block();
            }
            Node::Break => {
                if let Some(&(_, exit)) = self.loops.last() {
                    let cur = self.cur;
                    self.edge(cur, exit);
                }
                self.cur = self.new_block();
            }
            Node::Continue => {
                if let Some(&(head, _)) = self.loops.last() {
                    let cur = self.cur;
                    self.edge(cur, head);
                }
                self.cur = self.new_block();
            }
        }
    }
}

/// Build the CFG for one function body.
pub fn build(body: &[Tok], ctx: &GuardCtx<'_>) -> Cfg {
    let mut parser = Parser {
        toks: body,
        ctx,
        pos: 0,
        sites: Vec::new(),
        open_momentary: Vec::new(),
        nest_depth: 0,
    };
    let nodes = parser.parse_stmts(false);
    let sites = parser.sites;

    let mut lower = Lower { blocks: vec![Block::default()], exit: 0, loops: Vec::new(), cur: 0 };
    // Block 0 is entry; allocate exit as block 1.
    lower.exit = lower.new_block();
    let exit = lower.exit;
    lower.cur = 0;
    lower.lower_nodes(nodes);
    let last = lower.cur;
    lower.edge(last, exit);
    Cfg { blocks: lower.blocks, entry: 0, exit, sites }
}
