//! `lint.toml` loading.
//!
//! The workspace builds offline with no registry access, so there is no
//! `toml` crate to lean on; this module hand-rolls the small TOML subset
//! the config actually uses — `[table]`, `[[array-of-tables]]`, dotted
//! section names, string / array-of-string / bool / integer values, and
//! `#` comments. Anything outside that subset is a hard error, not a
//! silent skip: a config typo must fail the build, or the lint it was
//! meant to configure silently stops checking.

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    Array(Vec<Value>),
    Table(BTreeMap<String, Value>),
    /// `[[name]]` array-of-tables.
    TableArray(Vec<BTreeMap<String, Value>>),
}

#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.msg)
    }
}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError { line, msg: msg.into() })
}

/// Parse the TOML subset into a root table.
pub fn parse(src: &str) -> Result<BTreeMap<String, Value>, ConfigError> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // Path of the table currently receiving `key = value` lines, plus
    // whether it is the last element of a [[...]] array.
    let mut current: Vec<String> = Vec::new();
    let mut current_is_array = false;
    let lines: Vec<&str> = src.lines().collect();
    let mut idx = 0;
    while idx < lines.len() {
        let line_no = idx + 1;
        let mut joined;
        let mut line = strip_comment(lines[idx]).trim();
        // Multi-line array: a `key = [` value keeps consuming lines until
        // the bracket balance closes (strings cannot contain brackets that
        // matter — strip_comment already handled quoting per line).
        if line.contains('=') && array_still_open(line) {
            joined = line.to_string();
            while idx + 1 < lines.len() && array_still_open(&joined) {
                idx += 1;
                joined.push(' ');
                joined.push_str(strip_comment(lines[idx]).trim());
            }
            line = &joined;
        }
        idx += 1;
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let path = split_path(inner, line_no)?;
            push_table_array(&mut root, &path, line_no)?;
            current = path;
            current_is_array = true;
        } else if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let path = split_path(inner, line_no)?;
            ensure_table(&mut root, &path, line_no)?;
            current = path;
            current_is_array = false;
        } else if let Some(eq) = find_eq(line) {
            let key = line[..eq].trim();
            if key.is_empty() {
                return err(line_no, "empty key");
            }
            let val = parse_value(line[eq + 1..].trim(), line_no)?;
            let tbl = resolve_mut(&mut root, &current, current_is_array, line_no)?;
            if tbl.insert(key.to_string(), val).is_some() {
                return err(line_no, format!("duplicate key `{key}`"));
            }
        } else {
            return err(line_no, format!("unparseable line: `{line}`"));
        }
    }
    Ok(root)
}

/// Does `s` contain an unbalanced `[` outside strings (a multi-line
/// array value that has not closed yet)?
fn array_still_open(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut seen = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => {
                depth += 1;
                seen = true;
            }
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    seen && depth > 0
}

/// `=` at top level (not inside a string).
fn find_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_path(s: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let parts: Vec<String> = s.split('.').map(|p| p.trim().to_string()).collect();
    if parts.iter().any(String::is_empty) {
        return err(line, format!("bad table name `{s}`"));
    }
    Ok(parts)
}

fn ensure_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<(), ConfigError> {
    let mut tbl = root;
    for seg in path {
        let entry = tbl.entry(seg.clone()).or_insert_with(|| Value::Table(BTreeMap::new()));
        match entry {
            Value::Table(t) => tbl = t,
            _ => return err(line, format!("`{seg}` is not a table")),
        }
    }
    Ok(())
}

fn push_table_array(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<(), ConfigError> {
    let (last, prefix) = path.split_last().expect("split_path rejects empty");
    let mut tbl = root;
    for seg in prefix {
        let entry = tbl.entry(seg.clone()).or_insert_with(|| Value::Table(BTreeMap::new()));
        match entry {
            Value::Table(t) => tbl = t,
            _ => return err(line, format!("`{seg}` is not a table")),
        }
    }
    let entry = tbl.entry(last.clone()).or_insert_with(|| Value::TableArray(Vec::new()));
    match entry {
        Value::TableArray(v) => {
            v.push(BTreeMap::new());
            Ok(())
        }
        _ => err(line, format!("`{last}` is not an array of tables")),
    }
}

fn resolve_mut<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    is_array: bool,
    line: usize,
) -> Result<&'a mut BTreeMap<String, Value>, ConfigError> {
    if path.is_empty() {
        return Ok(root);
    }
    let (last, prefix) = path.split_last().expect("nonempty");
    let mut tbl = root;
    for seg in prefix {
        match tbl.get_mut(seg) {
            Some(Value::Table(t)) => tbl = t,
            _ => return err(line, format!("internal: missing table `{seg}`")),
        }
    }
    match tbl.get_mut(last) {
        Some(Value::Table(t)) if !is_array => Ok(t),
        Some(Value::TableArray(v)) if is_array => {
            Ok(v.last_mut().expect("array entry pushed on open"))
        }
        _ => err(line, format!("internal: missing table `{last}`")),
    }
}

fn parse_value(s: &str, line: usize) -> Result<Value, ConfigError> {
    if let Some(rest) = s.strip_prefix('"') {
        let Some(end) = rest.find('"') else {
            return err(line, "unterminated string");
        };
        if !rest[end + 1..].trim().is_empty() {
            return err(line, "trailing characters after string");
        }
        return Ok(Value::Str(rest[..end].to_string()));
    }
    if let Some(inner) = s.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return err(line, "arrays must be single-line and end with `]`");
        };
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_value(part, line)?);
        }
        return Ok(Value::Array(items));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    err(line, format!("unsupported value `{s}` (string/bool/int/array only)"))
}

/// Split on commas outside quotes.
fn split_array_items(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

// ---------------------------------------------------------------------
// Typed accessors used by lib.rs when building the checker config.
// ---------------------------------------------------------------------

pub fn get_str_list(tbl: &BTreeMap<String, Value>, key: &str) -> Vec<String> {
    match tbl.get(key) {
        Some(Value::Array(items)) => items
            .iter()
            .filter_map(|v| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        Some(Value::Str(s)) => vec![s.clone()],
        _ => Vec::new(),
    }
}

pub fn get_str(tbl: &BTreeMap<String, Value>, key: &str) -> Option<String> {
    match tbl.get(key) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

pub fn get_bool(tbl: &BTreeMap<String, Value>, key: &str, default: bool) -> bool {
    match tbl.get(key) {
        Some(Value::Bool(b)) => *b,
        _ => default,
    }
}

pub fn get_table_array<'a>(
    tbl: &'a BTreeMap<String, Value>,
    key: &str,
) -> Vec<&'a BTreeMap<String, Value>> {
    match tbl.get(key) {
        Some(Value::TableArray(v)) => v.iter().collect(),
        _ => Vec::new(),
    }
}

pub fn get_table<'a>(
    tbl: &'a BTreeMap<String, Value>,
    key: &str,
) -> Option<&'a BTreeMap<String, Value>> {
    match tbl.get(key) {
        Some(Value::Table(t)) => Some(t),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let src = r#"
# comment
[workspace]
roots = ["crates", "src"]
strict = true
cap = 42

[[lock-class]]
name = "node-state"
files = ["crates/core/src/node.rs"]

[[lock-class]]
name = "gcs-group"

[rules.lock-ordering]
edges = ["a < b"]
"#;
        let root = parse(src).unwrap();
        let ws = get_table(&root, "workspace").unwrap();
        assert_eq!(get_str_list(ws, "roots"), vec!["crates", "src"]);
        assert!(get_bool(ws, "strict", false));
        let classes = get_table_array(&root, "lock-class");
        assert_eq!(classes.len(), 2);
        assert_eq!(get_str(classes[0], "name").unwrap(), "node-state");
        let rules = get_table(&root, "rules").unwrap();
        let lo = get_table(rules, "lock-ordering").unwrap();
        assert_eq!(get_str_list(lo, "edges"), vec!["a < b"]);
    }

    #[test]
    fn typos_fail_loudly() {
        assert!(parse("key = unquoted").is_err());
        assert!(parse("[unclosed").is_err());
        assert!(parse("a = \"x\"\na = \"y\"").is_err(), "duplicate keys rejected");
        assert!(parse("= \"v\"").is_err());
    }

    #[test]
    fn comments_inside_strings_survive() {
        let root = parse("k = \"a # not a comment\"").unwrap();
        assert_eq!(get_str(&root, "k").unwrap(), "a # not a comment");
    }
}
