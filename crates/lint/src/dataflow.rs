//! Fixed-point guard-liveness dataflow over [`crate::cfg`] blocks.
//!
//! Two forward analyses run in one worklist pass over the same transfer
//! function:
//!
//! - **may-held** (union at joins): a guard is may-held at a point if
//!   *some* path reaches it with the guard live. Rules that *forbid* work
//!   under a lock (`no-io-under-lock`, `no-blocking-under-lock`,
//!   `lock-ordering`) use this set — one bad path is a real bad path.
//! - **must-held** (intersection at joins): a guard is must-held if
//!   *every* path holds it. Rules that *require* a lock
//!   (`multicast-under-lock`, `journal-gauge-under-lock`) use this set —
//!   a single lock-free path is the bug.
//!
//! A diverging path (early `return`, `?`, a branch ending in `break`)
//! contributes nothing to the join, which is what fixes the linear
//! walker's two classic mistakes: `if bad { drop(st); return; }` no
//! longer strips the guard from the fall-through, and a guard dropped in
//! one `match` arm is no longer assumed dropped in its siblings.
//!
//! The lattice is finite (sets of static acquire sites) and the transfer
//! is monotone (may only grows, must only shrinks), so the worklist
//! terminates; loops converge in at most |sites| passes.

use crate::cfg::{Cfg, Op};
use std::collections::BTreeSet;

/// Per-block input state. `None` = unreachable (never visited).
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    pub may: BTreeSet<usize>,
    pub must: BTreeSet<usize>,
}

impl State {
    fn empty() -> State {
        State { may: BTreeSet::new(), must: BTreeSet::new() }
    }

    /// Join `other` into `self`; true if anything changed.
    fn join(&mut self, other: &State) -> bool {
        let may_before = self.may.len();
        self.may.extend(other.may.iter().copied());
        let must_before = self.must.len();
        self.must.retain(|s| other.must.contains(s));
        self.may.len() != may_before || self.must.len() != must_before
    }
}

pub struct Flow {
    /// Input state per block; `None` for unreachable blocks.
    pub in_states: Vec<Option<State>>,
}

fn transfer(state: &mut State, op: &Op, cfg: &Cfg) {
    match op {
        Op::Acquire { site, .. } => {
            state.may.insert(*site);
            state.must.insert(*site);
        }
        Op::DropName { name } => {
            let dead: Vec<usize> = state
                .may
                .iter()
                .copied()
                .filter(|&s| cfg.sites[s].name.as_deref() == Some(name))
                .collect();
            for s in dead {
                state.may.remove(&s);
                state.must.remove(&s);
            }
        }
        Op::Kill { sites } => {
            for s in sites {
                state.may.remove(s);
                state.must.remove(s);
            }
        }
        Op::AcquireEvent { .. }
        | Op::Call { .. }
        | Op::Macro { .. }
        | Op::Index { .. }
        | Op::Try => {}
    }
}

/// Solve the liveness fixed point for one CFG.
pub fn solve(cfg: &Cfg) -> Flow {
    let mut in_states: Vec<Option<State>> = vec![None; cfg.blocks.len()];
    in_states[cfg.entry] = Some(State::empty());
    let mut work = vec![cfg.entry];
    while let Some(b) = work.pop() {
        let mut out = in_states[b].clone().expect("queued blocks have input state");
        for op in &cfg.blocks[b].ops {
            transfer(&mut out, op, cfg);
        }
        for &succ in &cfg.blocks[b].succ {
            let changed = match &mut in_states[succ] {
                Some(existing) => existing.join(&out),
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
            };
            if changed && !work.contains(&succ) {
                work.push(succ);
            }
        }
    }
    Flow { in_states }
}

/// What the analysis saw at one point, with both held-sets resolved to
/// lock-class names (ambient evidence included in both).
#[derive(Debug)]
pub enum Event {
    /// A lock acquisition (guard-producing expr or an acquire-fn call).
    Acquire {
        class: String,
        line: u32,
        held_may: BTreeSet<String>,
        held_must: BTreeSet<String>,
    },
    Call {
        path: Vec<String>,
        line: u32,
        held_may: BTreeSet<String>,
        held_must: BTreeSet<String>,
    },
    Macro {
        name: String,
        line: u32,
    },
    Index {
        line: u32,
    },
}

/// Replay every reachable block against its solved input state, emitting
/// [`Event`]s with class-level held sets. `ambient` classes (param-type /
/// impl evidence) are added to both sets at every event.
pub fn events(cfg: &Cfg, flow: &Flow, ambient: &BTreeSet<String>, mut emit: impl FnMut(Event)) {
    let classes = |sites: &BTreeSet<usize>| -> BTreeSet<String> {
        let mut out = ambient.clone();
        out.extend(sites.iter().map(|&s| cfg.sites[s].class.clone()));
        out
    };
    for (b, block) in cfg.blocks.iter().enumerate() {
        let Some(in_state) = &flow.in_states[b] else { continue };
        let mut state = in_state.clone();
        for op in &block.ops {
            match op {
                Op::Acquire { site, line } => {
                    emit(Event::Acquire {
                        class: cfg.sites[*site].class.clone(),
                        line: *line,
                        held_may: classes(&state.may),
                        held_must: classes(&state.must),
                    });
                }
                Op::AcquireEvent { class, line } => {
                    emit(Event::Acquire {
                        class: class.clone(),
                        line: *line,
                        held_may: classes(&state.may),
                        held_must: classes(&state.must),
                    });
                }
                Op::Call { path, line } => {
                    emit(Event::Call {
                        path: path.clone(),
                        line: *line,
                        held_may: classes(&state.may),
                        held_must: classes(&state.must),
                    });
                }
                Op::Macro { name, line } => emit(Event::Macro { name: name.clone(), line: *line }),
                Op::Index { line } => emit(Event::Index { line: *line }),
                Op::DropName { .. } | Op::Kill { .. } | Op::Try => {}
            }
            transfer(&mut state, op, cfg);
        }
    }
}
