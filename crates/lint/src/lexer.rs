//! A minimal Rust lexer: just enough fidelity for token-level invariant
//! checking. Comments and string/char literal *contents* never reach the
//! rules (so an `unwrap()` in a doc example cannot trip the panic rule),
//! but `// sirep-lint:` suppression directives are parsed out of comments
//! and surfaced separately with their line numbers.
//!
//! The workspace deliberately has no `syn`/`proc-macro2` dependency (the
//! build runs offline against vendored compat crates only), so the checker
//! works on token streams plus brace structure rather than a full AST. The
//! rules in [`crate::rules`] are written against that representation.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are unescaped: `r#fn` → `fn`).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Lifetime, without the leading quote (`'a` → `a`).
    Lifetime(String),
    /// Any literal: string, raw string, byte string, char, number. The
    /// raw source text is carried (the registry pass reads wire-tag
    /// integers out of `match` arms), but rules match on `Ident` tokens,
    /// so an `unwrap()` inside a string still cannot trip the panic rule.
    Literal(String),
}

impl Tok {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    pub fn is_literal(&self) -> bool {
        matches!(self.kind, TokKind::Literal(_))
    }

    /// Decimal integer value of a numeric literal (`42`, `7u8`, `1_000`),
    /// `None` for strings/chars/floats/hex.
    pub fn int_lit(&self) -> Option<u64> {
        let TokKind::Literal(text) = &self.kind else {
            return None;
        };
        let digits: String = text.chars().take_while(|c| c.is_ascii_digit() || *c == '_').collect();
        let rest = &text[digits.len()..];
        // Reject non-decimal forms (0x..), floats (1.5) and non-numeric
        // suffix junk that is not a plain int-type suffix.
        if digits.is_empty()
            || rest.starts_with('.')
            || rest.starts_with('x')
            || rest.starts_with('b')
        {
            return None;
        }
        if !(rest.is_empty()
            || ["u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize"]
                .contains(&rest))
        {
            return None;
        }
        digits.replace('_', "").parse().ok()
    }
}

/// A `// sirep-lint: allow(<rule>): <reason>` suppression directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Directive {
    pub line: u32,
    pub rule: String,
    /// The justification text after the rule name. Required: an empty
    /// reason is itself reported as a violation.
    pub reason: String,
    /// Set when the directive text could not be parsed (reported so typos
    /// fail loudly instead of silently not suppressing).
    pub malformed: Option<String>,
}

pub const DIRECTIVE_PREFIX: &str = "sirep-lint:";

/// Lex `src`, returning tokens and any suppression directives found in
/// comments. Never fails: unexpected bytes become `Punct` tokens so the
/// analysis degrades gracefully on exotic input.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Directive>) {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut directives = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                if let Some(d) = parse_directive(text, line) {
                    directives.push(d);
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start = i;
                i = skip_string(b, i, &mut line);
                toks.push(Tok { kind: TokKind::Literal(src[start..i].to_string()), line });
            }
            'r' | 'b' if starts_raw_or_byte_string(b, i) => {
                let start = i;
                i = skip_raw_or_byte_string(b, i, &mut line);
                toks.push(Tok { kind: TokKind::Literal(src[start..i].to_string()), line });
            }
            '\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                let mut j = i + 1;
                while j < b.len() && (b[j] == b'_' || (b[j] as char).is_alphanumeric()) {
                    j += 1;
                }
                if j > i + 1 && (j >= b.len() || b[j] != b'\'') {
                    toks.push(Tok { kind: TokKind::Lifetime(src[i + 1..j].to_string()), line });
                    i = j;
                } else {
                    let start = i;
                    i = skip_char_literal(b, i, &mut line);
                    toks.push(Tok { kind: TokKind::Literal(src[start..i].to_string()), line });
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() && (b[j] == b'_' || (b[j] as char).is_ascii_alphanumeric()) {
                    j += 1;
                }
                // Fractional part only when `.` is followed by a digit, so
                // `0..n` stays Num, Dot, Dot, Ident.
                if j + 1 < b.len() && b[j] == b'.' && (b[j + 1] as char).is_ascii_digit() {
                    j += 2;
                    while j < b.len() && (b[j] == b'_' || (b[j] as char).is_ascii_alphanumeric()) {
                        j += 1;
                    }
                }
                toks.push(Tok { kind: TokKind::Literal(src[i..j].to_string()), line });
                i = j;
            }
            c if c == '_' || c.is_alphabetic() => {
                let start = i;
                let mut j = i + 1;
                while j < b.len() && (b[j] == b'_' || (b[j] as char).is_alphanumeric()) {
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Ident(src[start..j].to_string()), line });
                i = j;
            }
            '#' if i + 1 < b.len() && b[i + 1] == b'!' && i + 2 < b.len() && b[i + 2] == b'[' => {
                // `#![...]` inner attribute: emit as punct tokens.
                toks.push(Tok { kind: TokKind::Punct('#'), line });
                i += 1;
            }
            _ => {
                // Raw identifier `r#name` is handled under 'r' above only
                // for strings; catch it here when 'r' fell through.
                toks.push(Tok { kind: TokKind::Punct(c), line });
                i += 1;
            }
        }
    }
    (toks, directives)
}

fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // r"..", r#".."#, b"..", br"..", b'..' byte char is NOT handled here
    // (plain char path covers it once we report false).
    let n = b.len();
    match b[i] {
        b'r' => {
            // Distinguish r#raw_ident from r#"raw string".
            if i + 1 < n && b[i + 1] == b'"' {
                return true;
            }
            if i + 1 < n && b[i + 1] == b'#' {
                let mut j = i + 1;
                while j < n && b[j] == b'#' {
                    j += 1;
                }
                return j < n && b[j] == b'"';
            }
            false
        }
        b'b' => {
            if i + 1 < n && b[i + 1] == b'"' {
                return true;
            }
            if i + 1 < n && b[i + 1] == b'r' {
                let mut j = i + 2;
                while j < n && b[j] == b'#' {
                    j += 1;
                }
                return j < n && b[j] == b'"';
            }
            false
        }
        _ => false,
    }
}

fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_or_byte_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    // Skip the `r`/`b`/`br` prefix and count `#`s.
    let mut raw = false;
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        raw |= b[i] == b'r';
        i += 1;
    }
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
        if hashes == 0 {
            return skip_plain_after_quote(b, i, line, raw);
        }
        // Raw string: ends at `"` followed by `hashes` hashes.
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
            }
            if b[i] == b'"' {
                let mut j = i + 1;
                let mut seen = 0;
                while j < b.len() && b[j] == b'#' && seen < hashes {
                    j += 1;
                    seen += 1;
                }
                if seen == hashes {
                    return j;
                }
            }
            i += 1;
        }
    }
    i
}

fn skip_plain_after_quote(b: &[u8], mut i: usize, line: &mut u32, raw: bool) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' if !raw => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_char_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(b[i], b'\'');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Parse a suppression directive out of one line-comment body.
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let t = comment.trim();
    let rest = t.strip_prefix(DIRECTIVE_PREFIX)?.trim();
    let malformed = |msg: &str| {
        Some(Directive {
            line,
            rule: String::new(),
            reason: String::new(),
            malformed: Some(msg.to_string()),
        })
    };
    let Some(inner) = rest.strip_prefix("allow(") else {
        return malformed("expected `allow(<rule>): <reason>`");
    };
    let Some(close) = inner.find(')') else {
        return malformed("unclosed `allow(`");
    };
    let rule = inner[..close].trim().to_string();
    if rule.is_empty() {
        return malformed("empty rule name in `allow()`");
    }
    let after = inner[close + 1..].trim();
    let reason = after.strip_prefix(':').map_or("", str::trim).to_string();
    Some(Directive { line, rule, reason, malformed: None })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).0.iter().filter_map(|t| t.ident().map(String::from)).collect()
    }

    #[test]
    fn comments_and_literal_contents_are_invisible() {
        let src = r###"
            // a.unwrap() in a comment
            /* nested /* unwrap() */ still comment */
            let s = "unwrap() inside a string";
            let r = r#"raw "unwrap()" string"#;
            let c = 'u';
            real_ident();
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Lifetime(l) => Some(l.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a".to_string(), "a".to_string()]);
    }

    #[test]
    fn directives_parse_with_reason() {
        let (_, ds) = lex("// sirep-lint: allow(lock-ordering): registry is a leaf\nx();");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "lock-ordering");
        assert_eq!(ds[0].reason, "registry is a leaf");
        assert!(ds[0].malformed.is_none());
    }

    #[test]
    fn malformed_directives_are_flagged_not_dropped() {
        let (_, ds) = lex("// sirep-lint: allowed(nope)\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].malformed.is_some());
        let (_, ds) = lex("// sirep-lint: allow(rule-with-no-reason)\n");
        assert_eq!(ds.len(), 1);
        assert!(ds[0].malformed.is_none());
        assert!(ds[0].reason.is_empty(), "missing reason surfaces as empty string");
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let (toks, _) = lex("0..n");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn int_literals_carry_their_value() {
        let (toks, _) = lex("out.push(3u8); 1_000; \"7\"; 1.5; 0x10");
        let ints: Vec<u64> = toks.iter().filter_map(Tok::int_lit).collect();
        assert_eq!(ints, vec![3, 1000], "strings, floats and hex are not wire tags");
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let (toks, _) = lex("a\n\"x\ny\"\nb");
        let b = toks.iter().find(|t| t.ident() == Some("b")).unwrap();
        assert_eq!(b.line, 4);
    }
}
