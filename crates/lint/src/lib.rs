//! sirep-lint: workspace invariant checker for SI-Rep.
//!
//! Enforces the lock-discipline, determinism, and registry invariants the
//! SRCA-Rep protocol depends on (DESIGN.md §13, §18). Eleven named rules,
//! each individually suppressable per-site with a written justification:
//!
//! - an inline directive on or directly above the offending line:
//!   `// sirep-lint: allow(<rule>): <why this site is safe>`
//! - or a `[[suppress]]` entry in `lint.toml` with `rule`, `file`,
//!   an optional `contains` message matcher, and a mandatory `reason`.
//!
//! A suppression with no justification, a malformed directive, or an
//! unknown rule name is itself a violation — the suppression mechanism
//! must not rot silently. `--deny-stale` (CI) escalates stale
//! suppressions from warnings to a failing exit.
//!
//! Guard-sensitive rules run over a per-function control-flow graph
//! ([`cfg`]) with fixed-point may/must guard liveness ([`dataflow`]);
//! cross-artifact registries (wire tags, journal consumers, chaos
//! points) are checked by [`registry`].

pub mod cfg;
pub mod config;
pub mod dataflow;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod scopes;

use rules::{
    CallUnderLockRule, CheckerConfig, JournalGaugeRule, LockClass, LockCoverageRule, LockOrderRule,
    NoBlockingRule, NoIoRule, NoUnwrapRule, NondetRule, Violation, ALL_RULES, RULE_DIRECTIVE,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One `[[suppress]]` entry from lint.toml.
#[derive(Debug, Clone)]
pub struct TomlSuppress {
    pub rule: String,
    pub file: String,
    /// Substring the violation message must contain (site selector).
    pub contains: Option<String>,
    pub reason: String,
}

/// Fully loaded lint configuration.
#[derive(Debug)]
pub struct LintConfig {
    pub checker: CheckerConfig,
    pub registry: registry::RegistryRules,
    pub roots: Vec<String>,
    pub exclude: Vec<String>,
    pub suppress: Vec<TomlSuppress>,
}

/// A violation that was suppressed, and how (`"inline"` / `"lint.toml"`).
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub violation: Violation,
    pub via: String,
}

/// Result of linting one file (pre-workspace aggregation).
#[derive(Debug, Default)]
pub struct FileResult {
    pub violations: Vec<Violation>,
    pub suppressed: Vec<Suppressed>,
    /// Non-fatal notices (unused suppressions).
    pub warnings: Vec<String>,
}

#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    /// Every suppressed finding, for the JSON report: each one is a
    /// justified debt the reviewer can audit.
    pub suppressed: Vec<Suppressed>,
    pub warnings: Vec<String>,
    pub files_scanned: usize,
}

fn cfg_err<T>(msg: impl Into<String>) -> Result<T, String> {
    Err(msg.into())
}

/// Load and validate a lint.toml source string.
pub fn load_config_str(src: &str) -> Result<LintConfig, String> {
    let root = config::parse(src).map_err(|e| e.to_string())?;

    const TOP_KEYS: [&str; 5] = ["workspace", "lock-class", "lock-order", "rules", "suppress"];
    for key in root.keys() {
        if !TOP_KEYS.contains(&key.as_str()) {
            return cfg_err(format!("lint.toml: unknown section `{key}`"));
        }
    }

    let mut cfg = LintConfig {
        checker: CheckerConfig::default(),
        registry: registry::RegistryRules::default(),
        roots: vec!["crates".into(), "src".into()],
        exclude: Vec::new(),
        suppress: Vec::new(),
    };

    if let Some(ws) = config::get_table(&root, "workspace") {
        let roots = config::get_str_list(ws, "roots");
        if !roots.is_empty() {
            cfg.roots = roots;
        }
        cfg.exclude = config::get_str_list(ws, "exclude");
    }

    for tbl in config::get_table_array(&root, "lock-class") {
        let Some(name) = config::get_str(tbl, "name") else {
            return cfg_err("lint.toml: [[lock-class]] entry missing `name`");
        };
        let class = LockClass {
            name: name.clone(),
            lock_exprs: config::get_str_list(tbl, "lock-exprs"),
            files: config::get_str_list(tbl, "files"),
            acquire_fns: config::get_str_list(tbl, "acquire-fns"),
            param_types: config::get_str_list(tbl, "param-types"),
            held_in_impls: config::get_str_list(tbl, "held-in-impls"),
            condvars: config::get_str_list(tbl, "condvars"),
            fields: config::get_str_list(tbl, "fields"),
        };
        if (!class.condvars.is_empty() || !class.fields.is_empty()) && class.files.is_empty() {
            return cfg_err(format!(
                "lint.toml: lock-class `{name}` has condvars/fields but no `files` scope — \
                 declaration names are ambiguous across crates, scope them"
            ));
        }
        if !class.lock_exprs.is_empty() && class.files.is_empty() {
            return cfg_err(format!(
                "lint.toml: lock-class `{name}` has lock-exprs but no `files` scope — \
                 field-name suffixes are ambiguous across crates, scope them"
            ));
        }
        if cfg.checker.classes.iter().any(|c| c.name == name) {
            return cfg_err(format!("lint.toml: duplicate lock-class `{name}`"));
        }
        cfg.checker.classes.push(class);
    }

    if let Some(lo) = config::get_table(&root, "lock-order") {
        for edge in config::get_str_list(lo, "edges") {
            let Some((a, b)) = edge.split_once('<') else {
                return cfg_err(format!(
                    "lint.toml: lock-order edge `{edge}` must be `outer < inner`"
                ));
            };
            let (a, b) = (a.trim().to_string(), b.trim().to_string());
            for side in [&a, &b] {
                if !cfg.checker.classes.iter().any(|c| &c.name == side) {
                    return cfg_err(format!(
                        "lint.toml: lock-order edge references unknown class `{side}`"
                    ));
                }
            }
            cfg.checker.order_edges.push((a, b));
        }
    }
    // Cycles are a config error, caught at load time.
    cfg.checker.order_closure()?;

    if let Some(rules_tbl) = config::get_table(&root, "rules") {
        for key in rules_tbl.keys() {
            if !ALL_RULES.contains(&key.as_str()) {
                return cfg_err(format!(
                    "lint.toml: unknown rule `{key}` (known: {})",
                    ALL_RULES.join(", ")
                ));
            }
        }
        if let Some(t) = config::get_table(rules_tbl, rules::RULE_MULTICAST) {
            let requires = config::get_str(t, "requires")
                .ok_or("lint.toml: multicast-under-lock needs `requires`")?;
            require_class(&cfg.checker, &requires)?;
            cfg.checker.multicast = Some(CallUnderLockRule {
                files: config::get_str_list(t, "files"),
                calls: config::get_str_list(t, "calls"),
                requires,
            });
        }
        // `[[rules.journal-gauge-under-lock]]` repeats per scope: different
        // files require different locks (node events under node-state,
        // fault events under gcs-group).
        let jg_scopes: Vec<&BTreeMap<String, config::Value>> =
            match rules_tbl.get(rules::RULE_JOURNAL_GAUGE) {
                Some(config::Value::Table(t)) => vec![t],
                Some(config::Value::TableArray(_)) => {
                    config::get_table_array(rules_tbl, rules::RULE_JOURNAL_GAUGE)
                }
                _ => Vec::new(),
            };
        for t in jg_scopes {
            let requires = config::get_str(t, "requires")
                .ok_or("lint.toml: journal-gauge-under-lock needs `requires`")?;
            require_class(&cfg.checker, &requires)?;
            cfg.checker.journal_gauge.push(JournalGaugeRule {
                files: config::get_str_list(t, "files"),
                calls: config::get_str_list(t, "calls"),
                gauge_owners: config::get_str_list(t, "gauge-owners"),
                gauge_methods: config::get_str_list(t, "gauge-methods"),
                requires,
            });
        }
        if let Some(t) = config::get_table(rules_tbl, rules::RULE_NONDET) {
            cfg.checker.nondet = Some(NondetRule {
                files: config::get_str_list(t, "files"),
                banned: config::get_str_list(t, "banned"),
            });
        }
        if let Some(t) = config::get_table(rules_tbl, rules::RULE_NO_UNWRAP) {
            cfg.checker.no_unwrap = Some(NoUnwrapRule {
                files: config::get_str_list(t, "files"),
                methods: config::get_str_list(t, "methods"),
                macros: config::get_str_list(t, "macros"),
                ban_indexing: config::get_bool(t, "ban-indexing", false),
            });
        }
        if let Some(t) = config::get_table(rules_tbl, rules::RULE_LOCK_ORDER) {
            cfg.checker.lock_order =
                Some(LockOrderRule { files: config::get_str_list(t, "files") });
        }
        if let Some(t) = config::get_table(rules_tbl, rules::RULE_NO_IO) {
            let allow_under = config::get_str_list(t, "allow-under");
            for class in &allow_under {
                require_class(&cfg.checker, class)?;
            }
            cfg.checker.no_io = Some(NoIoRule {
                files: config::get_str_list(t, "files"),
                calls: config::get_str_list(t, "calls"),
                allow_under,
            });
        }
        if let Some(t) = config::get_table(rules_tbl, rules::RULE_NO_BLOCKING) {
            cfg.checker.no_blocking = Some(NoBlockingRule {
                files: config::get_str_list(t, "files"),
                calls: config::get_str_list(t, "calls"),
                condvar_waits: config::get_str_list(t, "condvar-waits"),
            });
        }
        if let Some(t) = config::get_table(rules_tbl, rules::RULE_LOCK_COVERAGE) {
            let mut rule = LockCoverageRule::default();
            let types = config::get_str_list(t, "types");
            if !types.is_empty() {
                rule.types = types;
            }
            cfg.checker.lock_coverage = Some(rule);
        }
        if let Some(t) = config::get_table(rules_tbl, rules::RULE_WIRE_TAGS) {
            cfg.registry.wire_tags =
                Some(registry::WireTagRule { files: config::get_str_list(t, "files") });
        }
        if let Some(t) = config::get_table(rules_tbl, rules::RULE_JOURNAL_CONSUMERS) {
            let enum_file = config::get_str(t, "enum-file")
                .ok_or("lint.toml: journal-consumer-registry needs `enum-file`")?;
            let enum_name = config::get_str(t, "enum-name")
                .ok_or("lint.toml: journal-consumer-registry needs `enum-name`")?;
            let consumers = config::get_str_list(t, "consumers");
            if consumers.is_empty() {
                return cfg_err("lint.toml: journal-consumer-registry needs `consumers`");
            }
            let mut ignore = Vec::new();
            for entry in config::get_str_list(t, "ignore") {
                // "consumer-file: Variant: why this consumer skips it"
                let parts: Vec<&str> = entry.splitn(3, ':').map(str::trim).collect();
                let [file, variant, reason] = parts[..] else {
                    return cfg_err(format!(
                        "lint.toml: journal-consumer-registry ignore entry `{entry}` must be \
                         `<consumer-file>: <Variant>: <reason>`"
                    ));
                };
                if reason.is_empty() {
                    return cfg_err(format!(
                        "lint.toml: ignore entry for `{variant}` in `{file}` has no reason — \
                         every deliberate skip must carry a written justification"
                    ));
                }
                ignore.push(registry::ConsumerIgnore {
                    file: file.to_string(),
                    variant: variant.to_string(),
                    reason: reason.to_string(),
                });
            }
            cfg.registry.journal_consumers =
                Some(registry::JournalConsumerRule { enum_file, enum_name, consumers, ignore });
        }
        if let Some(t) = config::get_table(rules_tbl, rules::RULE_CHAOS_POINTS) {
            let mut enums = Vec::new();
            for entry in config::get_str_list(t, "enums") {
                let Some((file, name)) = entry.split_once(':') else {
                    return cfg_err(format!(
                        "lint.toml: chaos-point-registry enum entry `{entry}` must be \
                         `<file>: <EnumName>`"
                    ));
                };
                enums.push((file.trim().to_string(), name.trim().to_string()));
            }
            let hook_files = config::get_str_list(t, "hook-files");
            if enums.is_empty() || hook_files.is_empty() {
                return cfg_err("lint.toml: chaos-point-registry needs `enums` and `hook-files`");
            }
            cfg.registry.chaos_points = Some(registry::ChaosPointRule { enums, hook_files });
        }
    }

    for tbl in config::get_table_array(&root, "suppress") {
        let rule =
            config::get_str(tbl, "rule").ok_or("lint.toml: [[suppress]] entry missing `rule`")?;
        if !ALL_RULES.contains(&rule.as_str()) {
            return cfg_err(format!("lint.toml: [[suppress]] names unknown rule `{rule}`"));
        }
        let file =
            config::get_str(tbl, "file").ok_or("lint.toml: [[suppress]] entry missing `file`")?;
        let reason = config::get_str(tbl, "reason").unwrap_or_default();
        if reason.trim().is_empty() {
            return cfg_err(format!(
                "lint.toml: [[suppress]] for `{rule}` in `{file}` has no `reason` — every \
                 suppression must carry a written justification"
            ));
        }
        cfg.suppress.push(TomlSuppress {
            rule,
            file,
            contains: config::get_str(tbl, "contains"),
            reason,
        });
    }

    Ok(cfg)
}

fn require_class(checker: &CheckerConfig, name: &str) -> Result<(), String> {
    if checker.classes.iter().any(|c| c.name == name) {
        Ok(())
    } else {
        cfg_err(format!("lint.toml: `requires = \"{name}\"` names an undeclared lock-class"))
    }
}

pub fn load_config_file(path: &Path) -> Result<LintConfig, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    load_config_str(&src)
}

/// Lint one file's source. `file` is the workspace-relative path used for
/// rule scoping and reporting. `used_toml` collects indices of matched
/// [[suppress]] entries so `run` can warn about stale ones.
pub fn check_file(
    file: &str,
    src: &str,
    cfg: &LintConfig,
    used_toml: &mut BTreeSet<usize>,
) -> FileResult {
    let mut res = FileResult::default();
    let (toks, directives) = lexer::lex(src);
    let funcs = scopes::extract_funcs(&toks);

    let mut raw: Vec<Violation> = Vec::new();
    for f in &funcs {
        rules::check_func(f, file, &cfg.checker, &mut raw);
    }
    rules::check_nondet(&toks, &funcs, file, &cfg.checker, &mut raw);
    rules::check_lock_coverage(&toks, &funcs, file, &cfg.checker, &mut raw);
    if let Some(rule) = &cfg.registry.wire_tags {
        registry::check_wire_tags(&funcs, file, rule, &mut raw);
    }

    // Directive hygiene first: malformed, unknown-rule, or reason-less
    // directives are violations in their own right and never suppress.
    let mut valid: BTreeMap<u32, Vec<&lexer::Directive>> = BTreeMap::new();
    for d in &directives {
        if let Some(what) = &d.malformed {
            res.violations.push(Violation {
                rule: RULE_DIRECTIVE.into(),
                file: file.into(),
                line: d.line,
                msg: format!("malformed suppression directive: {what}"),
            });
        } else if !ALL_RULES.contains(&d.rule.as_str()) {
            res.violations.push(Violation {
                rule: RULE_DIRECTIVE.into(),
                file: file.into(),
                line: d.line,
                msg: format!("suppression names unknown rule `{}`", d.rule),
            });
        } else if d.reason.is_empty() {
            res.violations.push(Violation {
                rule: RULE_DIRECTIVE.into(),
                file: file.into(),
                line: d.line,
                msg: format!(
                    "suppression of `{}` has no justification — write \
                     `// sirep-lint: allow({}): <why this site is safe>`",
                    d.rule, d.rule
                ),
            });
        } else {
            valid.entry(d.line).or_default().push(d);
        }
    }

    // Apply suppressions.
    let mut used_inline: BTreeSet<u32> = BTreeSet::new();
    'viol: for v in raw {
        // Inline: same line, or the contiguous directive run directly above.
        let mut lines = vec![v.line];
        let mut l = v.line;
        while l > 1 && valid.contains_key(&(l - 1)) {
            l -= 1;
            lines.push(l);
        }
        for l in lines {
            if let Some(ds) = valid.get(&l) {
                if ds.iter().any(|d| d.rule == v.rule) {
                    used_inline.insert(l);
                    res.suppressed.push(Suppressed { violation: v, via: "inline".into() });
                    continue 'viol;
                }
            }
        }
        // lint.toml [[suppress]].
        for (idx, s) in cfg.suppress.iter().enumerate() {
            if s.rule == v.rule
                && rules::file_matches(&v.file, &s.file)
                && s.contains.as_deref().is_none_or(|c| v.msg.contains(c))
            {
                used_toml.insert(idx);
                res.suppressed.push(Suppressed { violation: v, via: "lint.toml".into() });
                continue 'viol;
            }
        }
        res.violations.push(v);
    }

    for (line, ds) in &valid {
        if !used_inline.contains(line) {
            for d in ds {
                res.warnings.push(format!(
                    "{file}:{line}: suppression of `{}` matched no violation (stale?)",
                    d.rule
                ));
            }
        }
    }
    res
}

/// Walk the workspace and lint every in-scope `.rs` file.
pub fn run(workspace_root: &Path, cfg: &LintConfig) -> Result<Report, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for root in &cfg.roots {
        let dir = workspace_root.join(root);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    let mut used_toml: BTreeSet<usize> = BTreeSet::new();
    let mut scan = registry::Scan::default();
    for path in files {
        let rel =
            path.strip_prefix(workspace_root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        if cfg.exclude.iter().any(|e| rel.starts_with(e.as_str())) {
            continue;
        }
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        report.files_scanned += 1;
        let res = check_file(&rel, &src, cfg, &mut used_toml);
        report.violations.extend(res.violations);
        report.suppressed.extend(res.suppressed);
        report.warnings.extend(res.warnings);
        let (toks, _) = lexer::lex(&src);
        scan.scan_file(&rel, &toks, &scopes::extract_funcs(&toks), &cfg.registry);
    }
    // Cross-file registry findings; suppressible via lint.toml only (there
    // is no single source line to hang an inline directive on).
    let mut registry_raw = Vec::new();
    scan.finish(&cfg.registry, &mut registry_raw);
    'reg: for v in registry_raw {
        for (idx, s) in cfg.suppress.iter().enumerate() {
            if s.rule == v.rule
                && rules::file_matches(&v.file, &s.file)
                && s.contains.as_deref().is_none_or(|c| v.msg.contains(c))
            {
                used_toml.insert(idx);
                report.suppressed.push(Suppressed { violation: v, via: "lint.toml".into() });
                continue 'reg;
            }
        }
        report.violations.push(v);
    }
    for (idx, s) in cfg.suppress.iter().enumerate() {
        if !used_toml.contains(&idx) {
            report.warnings.push(format!(
                "lint.toml: [[suppress]] for `{}` in `{}` matched no violation (stale?)",
                s.rule, s.file
            ));
        }
    }
    report.violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Render a [`Report`] as the `results/LINT.json` machine-readable form.
/// Hand-rolled (the lint crate is dependency-free); strings are escaped
/// per JSON's required set.
pub fn report_to_json(report: &Report) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn viol(v: &Violation, suppressed: Option<&str>) -> String {
        let mut s = format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"msg\":\"{}\"",
            esc(&v.rule),
            esc(&v.file),
            v.line,
            esc(&v.msg)
        );
        match suppressed {
            Some(via) => s.push_str(&format!(",\"suppressed\":true,\"via\":\"{}\"}}", esc(via))),
            None => s.push_str(",\"suppressed\":false}"),
        }
        s
    }
    let violations: Vec<String> = report.violations.iter().map(|v| viol(v, None)).collect();
    let suppressed: Vec<String> =
        report.suppressed.iter().map(|s| viol(&s.violation, Some(&s.via))).collect();
    let warnings: Vec<String> = report.warnings.iter().map(|w| format!("\"{}\"", esc(w))).collect();
    format!(
        "{{\n\"files_scanned\":{},\n\"violations\":[{}],\n\"suppressed\":[{}],\n\"warnings\":[{}]\n}}\n",
        report.files_scanned,
        violations.join(","),
        suppressed.join(","),
        warnings.join(",")
    )
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI_CFG: &str = r#"
[[lock-class]]
name = "node-state"
lock-exprs = ["state.lock"]
files = ["node.rs"]

[[lock-class]]
name = "gcs-group"
acquire-fns = ["multicast_total"]

[lock-order]
edges = ["node-state < gcs-group"]

[rules.multicast-under-lock]
files = ["node.rs"]
calls = ["multicast_total"]
requires = "node-state"
"#;

    fn lint_one(cfg: &LintConfig, src: &str) -> FileResult {
        let mut used = BTreeSet::new();
        check_file("node.rs", src, cfg, &mut used)
    }

    #[test]
    fn end_to_end_violation_and_suppression() {
        let cfg = load_config_str(MINI_CFG).unwrap();
        let bad = "impl N { fn f(&self) { self.gcs.multicast_total(m); } }";
        assert_eq!(lint_one(&cfg, bad).violations.len(), 1);

        let ok = "impl N { fn f(&self) { let st = self.state.lock(); \
                  self.gcs.multicast_total(m); } }";
        assert!(lint_one(&cfg, ok).violations.is_empty());

        let suppressed = "impl N { fn f(&self) {\n\
             // sirep-lint: allow(multicast-under-lock): progress gossip, ordering irrelevant\n\
             self.gcs.multicast_total(m); } }";
        let res = lint_one(&cfg, suppressed);
        assert!(res.violations.is_empty(), "{:?}", res.violations);
    }

    #[test]
    fn suppression_without_reason_is_a_violation() {
        let cfg = load_config_str(MINI_CFG).unwrap();
        let src = "impl N { fn f(&self) {\n\
             // sirep-lint: allow(multicast-under-lock)\n\
             self.gcs.multicast_total(m); } }";
        let res = lint_one(&cfg, src);
        // Both the original violation (unsuppressed) and the bad directive.
        assert_eq!(res.violations.len(), 2, "{:?}", res.violations);
        assert!(res.violations.iter().any(|v| v.rule == RULE_DIRECTIVE));
    }

    #[test]
    fn toml_suppression_requires_reason() {
        let bad = format!(
            "{MINI_CFG}\n[[suppress]]\nrule = \"multicast-under-lock\"\nfile = \"node.rs\"\n"
        );
        assert!(load_config_str(&bad).is_err());
    }

    #[test]
    fn order_cycle_rejected_at_load() {
        let src = r#"
[[lock-class]]
name = "a"
acquire-fns = ["fa"]

[[lock-class]]
name = "b"
acquire-fns = ["fb"]

[lock-order]
edges = ["a < b", "b < a"]
"#;
        let err = load_config_str(src).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn unknown_sections_and_rules_rejected() {
        assert!(load_config_str("[typo]\nx = 1\n").is_err());
        assert!(load_config_str("[rules.not-a-rule]\nfiles = []\n").is_err());
    }
}
